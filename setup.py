"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 editable-wheel support; offline
environments lacking `wheel` can instead run `python setup.py develop`.
"""

from setuptools import setup

setup()
