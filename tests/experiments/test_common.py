"""Tests for the experiment-scale presets and dataset cache."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale, get_dataset


class TestExperimentScale:
    def test_paper_preset_matches_paper_counts(self):
        scale = ExperimentScale.paper()
        assert scale.n_train == 4000
        assert scale.n_test == 2000
        assert scale.column_mc_trials == 1000

    def test_quick_preset_is_smaller(self):
        quick = ExperimentScale.quick()
        paper = ExperimentScale.paper()
        assert quick.n_train < paper.n_train
        assert quick.mc_trials < paper.mc_trials
        assert quick.epochs < paper.epochs

    def test_gdt_uses_scale_epochs(self):
        scale = ExperimentScale(epochs=123)
        assert scale.gdt().epochs == 123

    def test_frozen(self):
        scale = ExperimentScale.quick()
        with pytest.raises(dataclasses.FrozenInstanceError):
            scale.n_train = 1


class TestGetDataset:
    def test_returns_requested_resolution(self):
        scale = ExperimentScale(n_train=40, n_test=20, seed=55)
        ds = get_dataset(scale, 14)
        assert ds.image_size == 14
        assert ds.x_train.shape == (40, 196)

    def test_caches_identical_requests(self):
        scale = ExperimentScale(n_train=40, n_test=20, seed=56)
        a = get_dataset(scale, 7)
        b = get_dataset(scale, 7)
        assert a is b

    def test_different_sizes_are_distinct(self):
        scale = ExperimentScale(n_train=40, n_test=20, seed=57)
        a = get_dataset(scale, 7)
        b = get_dataset(scale, 14)
        assert a is not b
        assert a.image_size != b.image_size

    def test_seed_changes_data(self):
        a = get_dataset(ExperimentScale(n_train=30, n_test=10, seed=58), 7)
        b = get_dataset(ExperimentScale(n_train=30, n_test=10, seed=59), 7)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_full_resolution_passthrough(self):
        scale = ExperimentScale(n_train=20, n_test=10, seed=60)
        ds = get_dataset(scale, 28)
        assert ds.image_size == 28
        assert ds.x_train.shape == (20, 784)
