"""Smoke + shape tests for the per-figure experiment drivers.

Each driver runs at a deliberately tiny scale and the paper's headline
*trend* is asserted -- not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)


def tiny_scale(**kwargs):
    defaults = dict(
        n_train=300,
        n_test=150,
        mc_trials=2,
        column_mc_trials=50,
        epochs=50,
        gammas=(0.0, 0.3, 0.7),
        n_injections=3,
        seed=11,
    )
    defaults.update(kwargs)
    return ExperimentScale(**defaults)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(tiny_scale(), sigmas=(0.0, 0.3, 0.6))

    def test_old_error_grows_with_sigma(self, result):
        assert result.old_discrepancy[-1] > result.old_discrepancy[0]
        assert result.old_discrepancy[-1] > 0.1

    def test_cld_error_stays_flat_and_small(self, result):
        assert np.all(result.cld_discrepancy < 0.05)

    def test_rows_format(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert all(len(r) == 3 for r in rows)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(heights=(16, 32, 64))

    def test_skew_grows_with_height(self, result):
        assert np.all(np.diff(result.d_skew) > 0)

    def test_update_ratio_shrinks_with_height(self, result):
        assert np.all(np.diff(result.update_ratio) < 0)

    def test_maps_present_for_largest_height(self, result):
        assert result.maps["vertical"].shape == (64, 10)
        assert result.maps["horizontal"].shape == (64, 10)
        assert result.maps["combined"].shape == (64, 10)

    def test_ladder_agrees_with_nodal(self, result):
        assert result.ladder_vs_nodal_error < 0.02

    def test_beta_below_one(self, result):
        assert np.all(result.beta < 1.0)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(tiny_scale(), sigma=0.8, image_size=7)

    def test_clean_rate_suffers_at_large_gamma(self, result):
        assert result.test_rate_clean[-1] <= result.test_rate_clean[0] + 0.02

    def test_injected_rate_below_clean(self, result):
        assert np.all(
            result.test_rate_injected <= result.test_rate_clean + 0.05
        )

    def test_best_gamma_recorded(self, result):
        assert result.best_gamma in result.gammas


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(tiny_scale(), sigma=0.8, image_size=7)

    def test_amp_lifts_the_curve(self, result):
        assert np.mean(result.test_after_amp) > np.mean(
            result.test_before_amp
        )

    def test_rows_format(self, result):
        assert len(result.rows()) == 3


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(
            tiny_scale(), bits=(3, 6, 9), sigmas=(0.6,), image_size=7
        )

    def test_rate_improves_with_resolution(self, result):
        rates = result.test_rate[0]
        assert rates[1] > rates[0]

    def test_saturation_detection(self, result):
        bits = result.saturation_bits(tolerance=0.05)
        assert len(bits) == 1
        assert bits[0] in (3, 6, 9)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(
            tiny_scale(),
            redundancy=(0, 16),
            sigmas=(0.8,),
            image_size=7,
            r_wire=0.0,
        )

    def test_vortex_beats_old(self, result):
        assert result.vortex_rate[0, 0] > result.old_rate[0]

    def test_gains_recorded(self, result):
        assert result.vortex_gain_over_old == pytest.approx(
            100 * (result.vortex_rate[0, 0] - result.old_rate[0])
        )

    def test_grid_shape(self, result):
        assert result.vortex_rate.shape == (1, 2)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(
            tiny_scale(mc_trials=1),
            image_sizes=(14, 7),
            redundancy=16,
        )

    def test_rows_match_sizes(self, result):
        assert result.rows.tolist() == [196, 49]

    def test_all_schemes_reported(self, result):
        for key in ("cld_ir", "vortex_ir", "cld_no_ir"):
            assert result.test_rate[key].shape == (2,)
            assert np.all(result.test_rate[key] >= 0)
            assert np.all(result.test_rate[key] <= 1)

    def test_cld_without_ir_beats_cld_with_ir_on_large_crossbar(
        self, result
    ):
        assert (
            result.test_rate["cld_no_ir"][0]
            >= result.test_rate["cld_ir"][0] - 0.05
        )

    def test_table_renders(self, result):
        text = result.table()
        assert "CLD w/ IR-drop" in text
        assert "Vortex" in text
