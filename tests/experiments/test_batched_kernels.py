"""Bit-identity property tests for the trial-batched kernels.

The batched Monte-Carlo kernels promise *exact* equality with the
looped scalar trials -- not closeness -- at any jobs/chunk-size
combination, because they consume identical per-trial generator
streams and evaluate with fixed-accumulation array math.  These tests
enforce that contract with ``np.array_equal`` for every ported
experiment kernel and the self-tuning injection scores.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec
from repro.core.old import OLDConfig
from repro.core.self_tuning import injected_rate, injected_rate_looped
from repro.core.sensitivity import mapping_order
from repro.data.datasets import N_CLASSES
from repro.experiments.common import ExperimentScale, get_dataset
from repro.experiments.fig2_column import (
    ColumnTrialConfig,
    _column_trial,
    _column_trial_batch,
)
from repro.experiments.fig7_amp import _fig7_trial, _fig7_trial_batch
from repro.experiments.fig9_redundancy import _fig9_trial, _fig9_trial_batch
from repro.runtime import map_trials, map_trials_batched
from repro.xbar.mapping import WeightScaler


def assert_batched_bit_identical(
    trial, batch_trial, trials, seed, combos=((1, 1), (1, 3), (4, 2))
):
    """Batched values must equal looped values at every (jobs, chunk)."""
    looped = map_trials(trial, trials, seed=seed, jobs=1)
    for jobs, chunk_size in combos:
        batched = map_trials_batched(
            batch_trial, trials, seed=seed, jobs=jobs,
            chunk_size=chunk_size,
        )
        assert np.array_equal(looped, batched), (
            f"batched != looped at jobs={jobs} chunk_size={chunk_size}"
        )


@pytest.fixture(scope="module")
def tiny_dataset():
    scale = ExperimentScale(n_train=120, n_test=80, seed=11)
    return get_dataset(scale, image_size=7)


class TestFig2Kernel:
    @pytest.mark.parametrize("sigma", [0.0, 0.5])
    def test_bit_identical(self, sigma):
        cfg = ColumnTrialConfig(
            sigma=sigma, n_devices=20, target_current=1e-3, v_read=1.0,
            adc_bits=6, cld_iterations=30,
        )
        assert_batched_bit_identical(
            functools.partial(_column_trial, cfg=cfg),
            functools.partial(_column_trial_batch, cfg=cfg),
            trials=12, seed=21,
            combos=((1, 1), (1, 5), (1, None), (4, 3)),
        )


class TestFig7Kernel:
    def test_bit_identical(self, tiny_dataset):
        ds = tiny_dataset
        n = ds.n_features
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.8),
            crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=0.0),
        )
        gen = np.random.default_rng(3)
        weights_per_gamma = [
            np.clip(gen.normal(scale=0.3, size=(n, N_CLASSES)), -0.9, 0.9)
            for _ in range(2)
        ]
        kwargs = dict(
            spec=spec, scaler=WeightScaler(1.0),
            weights_per_gamma=weights_per_gamma,
            x_test=ds.x_test, y_test=ds.y_test,
            x_mean=ds.x_train.mean(axis=0),
        )
        assert_batched_bit_identical(
            functools.partial(_fig7_trial, **kwargs),
            functools.partial(_fig7_trial_batch, **kwargs),
            trials=6, seed=77,
        )


class TestFig9Kernel:
    def test_bit_identical(self, tiny_dataset):
        ds = tiny_dataset
        n = ds.n_features
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.8),
            crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=0.0),
            ir_mode="ideal",
        )
        gen = np.random.default_rng(5)
        old_weights = np.clip(
            gen.normal(scale=0.3, size=(n, N_CLASSES)), -0.9, 0.9
        )
        vortex_weights = np.clip(
            gen.normal(scale=0.3, size=(n, N_CLASSES)), -0.9, 0.9
        )
        x_mean = ds.x_train.mean(axis=0)
        kwargs = dict(
            spec=spec, scaler=WeightScaler(1.0),
            old_weights=old_weights, vortex_weights=vortex_weights,
            order=mapping_order(vortex_weights, x_mean),
            paper_programming=OLDConfig(
                compensate_ir_drop=False, digital_calibration=False
            ),
            redundancy=(0, 6),
            x_train=ds.x_train, y_train=ds.y_train,
            x_test=ds.x_test, y_test=ds.y_test, x_mean=x_mean,
        )
        assert_batched_bit_identical(
            functools.partial(_fig9_trial, **kwargs),
            functools.partial(_fig9_trial_batch, **kwargs),
            trials=4, seed=99,
            combos=((1, 1), (1, 3), (4, 2)),
        )


class TestFig7NonIdealFallback:
    def test_falls_back_to_scalar_loop(self, tiny_dataset):
        # A non-ideal read path cannot be stacked; the kernel must
        # degrade to looping the scalar trial -- still bit-identical.
        ds = tiny_dataset
        n = ds.n_features
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.6),
            crossbar=CrossbarConfig(rows=n, cols=N_CLASSES, r_wire=2.5),
            ir_mode="reference",
        )
        gen = np.random.default_rng(9)
        kwargs = dict(
            spec=spec, scaler=WeightScaler(1.0),
            weights_per_gamma=[
                np.clip(gen.normal(scale=0.3, size=(n, N_CLASSES)),
                        -0.9, 0.9)
            ],
            x_test=ds.x_test, y_test=ds.y_test,
            x_mean=ds.x_train.mean(axis=0),
        )
        assert_batched_bit_identical(
            functools.partial(_fig7_trial, **kwargs),
            functools.partial(_fig7_trial_batch, **kwargs),
            trials=2, seed=42, combos=((1, 2),),
        )


class TestInjectedRateKernel:
    """Fig. 4's hot loop: vectorised injection vs the per-draw oracle."""

    def test_bit_identical_with_rng(self):
        gen = np.random.default_rng(1)
        weights = gen.normal(size=(20, N_CLASSES))
        x = gen.random((40, 20))
        labels = gen.integers(0, N_CLASSES, size=40)
        batched = injected_rate(
            weights, x, labels, sigma=0.5, n_injections=5,
            rng=np.random.default_rng(33),
        )
        looped = injected_rate_looped(
            weights, x, labels, sigma=0.5, n_injections=5,
            rng=np.random.default_rng(33),
        )
        assert batched == looped

    def test_bit_identical_with_explicit_thetas(self):
        gen = np.random.default_rng(2)
        weights = gen.normal(size=(15, N_CLASSES))
        x = gen.random((30, 15))
        labels = gen.integers(0, N_CLASSES, size=30)
        thetas = gen.standard_normal((4,) + weights.shape)
        assert injected_rate(
            weights, x, labels, sigma=0.7, n_injections=4, thetas=thetas
        ) == injected_rate_looped(
            weights, x, labels, sigma=0.7, n_injections=4, thetas=thetas
        )

    def test_sigma_zero_matches(self):
        gen = np.random.default_rng(4)
        weights = gen.normal(size=(12, N_CLASSES))
        x = gen.random((25, 12))
        labels = gen.integers(0, N_CLASSES, size=25)
        assert injected_rate(
            weights, x, labels, sigma=0.0, n_injections=3,
            rng=np.random.default_rng(8),
        ) == injected_rate_looped(
            weights, x, labels, sigma=0.0, n_injections=3,
            rng=np.random.default_rng(8),
        )
