"""Tests for the shared hardware spec and evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.base import (
    HardwareSpec,
    build_pair,
    hardware_test_rate,
    software_rates,
)
from repro.xbar.mapping import WeightScaler


class TestHardwareSpec:
    def test_with_rows(self):
        spec = HardwareSpec().with_rows(123)
        assert spec.crossbar.rows == 123

    def test_diff_adc_sizing(self):
        spec = HardwareSpec(
            crossbar=CrossbarConfig(rows=100, cols=10, r_wire=0.0),
            sensing=SensingConfig(adc_bits=6),
            score_headroom=0.02,
        )
        adc = spec.diff_adc()
        assert adc is not None
        assert adc.bipolar
        expected_fs = 1.0 * spec.device.g_range * 100 * 0.02
        assert adc.full_scale == pytest.approx(expected_fs)

    def test_diff_adc_disabled(self):
        spec = HardwareSpec(quantize_read=False)
        assert spec.diff_adc() is None

    def test_pretest_adc_covers_one_device(self):
        spec = HardwareSpec()
        adc = spec.pretest_adc()
        assert adc.full_scale == pytest.approx(
            spec.crossbar.v_read * spec.device.g_on
        )


class TestBuildPair:
    def test_row_override(self, rng):
        spec = HardwareSpec(
            crossbar=CrossbarConfig(rows=10, cols=4, r_wire=0.0)
        )
        pair = build_pair(spec, WeightScaler(1.0), rng, rows=17)
        assert pair.shape == (17, 4)

    def test_seed_reproducibility(self):
        spec = HardwareSpec(variation=VariationConfig(sigma=0.5))
        a = build_pair(spec, WeightScaler(1.0), np.random.default_rng(1))
        b = build_pair(spec, WeightScaler(1.0), np.random.default_rng(1))
        assert np.array_equal(a.positive.array.theta,
                              b.positive.array.theta)
        assert np.array_equal(a.negative.array.theta,
                              b.negative.array.theta)


class TestHardwareTestRate:
    def test_perfect_hardware_matches_software(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=6, cols=3, r_wire=0.0),
            quantize_read=False,
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        w = rng.uniform(-1, 1, (6, 3))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random((40, 6))
        labels = np.argmax(x @ w, axis=1)
        assert hardware_test_rate(pair, x, labels, "ideal") == 1.0

    def test_input_map_applied(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=6, cols=3, r_wire=0.0),
            quantize_read=False,
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        w = rng.uniform(-1, 1, (6, 3))
        perm = rng.permutation(6)
        w_phys = np.zeros_like(w)
        w_phys[perm] = w
        pair.program_weights(w_phys, with_cycle_noise=False)
        x = rng.random((40, 6))
        labels = np.argmax(x @ w, axis=1)

        def route(batch):
            out = np.zeros_like(batch)
            out[:, perm] = batch
            return out

        assert hardware_test_rate(pair, x, labels, "ideal", route) == 1.0


class TestSoftwareRates:
    def test_rates(self, rng):
        w = np.eye(3)
        x = np.eye(3)
        labels = np.arange(3)
        tr, te = software_rates(w, x, labels, x, labels)
        assert tr == 1.0 and te == 1.0
