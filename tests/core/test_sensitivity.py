"""Tests for the Eq. 11 sensitivity analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sensitivity import (
    cell_sensitivity,
    mapping_order,
    row_sensitivity,
)


class TestCellSensitivity:
    def test_formula(self):
        w = np.array([[2.0, -3.0], [0.5, 1.0]])
        x = np.array([0.5, 1.0])
        s = cell_sensitivity(w, x)
        assert np.allclose(s, [[1.0, 1.5], [0.5, 1.0]])

    def test_zero_input_zero_sensitivity(self):
        w = np.ones((3, 2))
        x = np.array([0.0, 1.0, 0.0])
        s = cell_sensitivity(w, x)
        assert np.all(s[0] == 0) and np.all(s[2] == 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cell_sensitivity(np.ones((3, 2)), np.ones(4))

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            cell_sensitivity(np.ones((2, 2)), np.array([-0.1, 0.5]))


class TestRowSensitivity:
    def test_sums_over_columns(self):
        w = np.array([[1.0, -1.0], [2.0, 2.0]])
        x = np.array([1.0, 0.5])
        assert np.allclose(row_sensitivity(w, x), [2.0, 2.0])


class TestMappingOrder:
    def test_most_sensitive_first(self):
        w = np.array([[0.1], [5.0], [1.0]])
        x = np.ones(3)
        assert mapping_order(w, x).tolist() == [1, 2, 0]

    def test_input_weighting_matters(self):
        w = np.array([[1.0], [1.0]])
        x = np.array([0.1, 0.9])
        assert mapping_order(w, x).tolist() == [1, 0]

    def test_ties_stable(self):
        w = np.ones((4, 1))
        x = np.ones(4)
        assert mapping_order(w, x).tolist() == [0, 1, 2, 3]
