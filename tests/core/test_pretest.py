"""Tests for AMP pre-testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.adc import ADC
from repro.config import (
    CrossbarConfig,
    DeviceConfig,
    SensingConfig,
    VariationConfig,
)
from repro.core.pretest import (
    pretest_array,
    pretest_pair,
    robust_sigma,
)
from repro.devices.memristor import MemristorArray
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar


def make_array(sigma, shape=(32, 8), seed=0, sigma_cycle=0.0,
               defect_rate=0.0):
    return MemristorArray(
        shape,
        variation=VariationConfig(sigma=sigma, sigma_cycle=sigma_cycle,
                                  defect_rate=defect_rate),
        rng=np.random.default_rng(seed),
    )


def fine_adc():
    device = DeviceConfig()
    return ADC(12, device.g_on * 1.0)


class TestRobustSigma:
    def test_recovers_normal_sigma(self, rng):
        theta = rng.normal(0, 0.5, 20000)
        assert robust_sigma(theta) == pytest.approx(0.5, rel=0.05)

    def test_resists_outliers(self, rng):
        theta = rng.normal(0, 0.5, 5000)
        theta[:100] = 10.0  # stuck-at-style outliers
        assert robust_sigma(theta) == pytest.approx(0.5, rel=0.1)

    def test_requires_samples(self):
        with pytest.raises(ValueError, match="samples"):
            robust_sigma(np.array([1.0]))


class TestPretestArray:
    def test_recovers_theta_with_fine_adc(self):
        array = make_array(sigma=0.4, seed=1)
        theta_hat = pretest_array(array, fine_adc(), repeats=4)
        # Clipping at the rails limits recovery for extreme devices;
        # compare on the unclipped bulk.
        bulk = np.abs(array.theta) < 1.0
        assert np.corrcoef(
            theta_hat[bulk].ravel(), array.theta[bulk].ravel()
        )[0, 1] > 0.98

    def test_leaves_array_reset(self):
        array = make_array(sigma=0.4)
        pretest_array(array, fine_adc())
        assert np.allclose(array.conductance, array.device.g_off)

    def test_coarse_adc_degrades_estimates(self):
        errors = {}
        for bits in (3, 10):
            array = make_array(sigma=0.4, seed=2)
            adc = ADC(bits, array.device.g_on)
            theta_hat = pretest_array(array, adc, repeats=4)
            bulk = np.abs(array.theta) < 1.0
            errors[bits] = float(
                np.mean(np.abs(theta_hat[bulk] - array.theta[bulk]))
            )
        assert errors[3] > errors[10]

    def test_repeats_average_cycle_noise(self):
        errors = {}
        for repeats in (1, 16):
            array = make_array(sigma=0.4, seed=3, sigma_cycle=0.15)
            theta_hat = pretest_array(array, fine_adc(), repeats=repeats)
            bulk = np.abs(array.theta) < 1.0
            errors[repeats] = float(
                np.mean(np.abs(theta_hat[bulk] - array.theta[bulk]))
            )
        assert errors[16] < errors[1]

    def test_detects_stuck_cells_as_extreme(self):
        array = make_array(sigma=0.2, seed=4, defect_rate=0.2)
        theta_hat = pretest_array(array, fine_adc())
        stuck_lrs = array.defects == 1
        healthy = array.defects == 0
        assert np.all(
            theta_hat[stuck_lrs] > np.abs(theta_hat[healthy]).mean() + 1.0
        )

    def test_invalid_args(self):
        array = make_array(sigma=0.2)
        with pytest.raises(ValueError, match="repeats"):
            pretest_array(array, fine_adc(), repeats=0)
        with pytest.raises(ValueError, match="target_fraction"):
            pretest_array(array, fine_adc(), target_fraction=0.0)


class TestPretestPair:
    def test_sigma_estimate_close_to_truth(self):
        pair = DifferentialCrossbar(
            WeightScaler(1.0),
            config=CrossbarConfig(rows=48, cols=10, r_wire=0.0),
            variation=VariationConfig(sigma=0.5, sigma_cycle=0.02),
            rng=np.random.default_rng(5),
        )
        result = pretest_pair(pair, SensingConfig(adc_bits=10))
        assert result.sigma_estimate == pytest.approx(0.5, rel=0.2)
        assert result.theta_pos.shape == (48, 10)
        assert result.theta_neg.shape == (48, 10)

    def test_estimates_track_true_theta(self):
        pair = DifferentialCrossbar(
            WeightScaler(1.0),
            config=CrossbarConfig(rows=32, cols=8, r_wire=0.0),
            variation=VariationConfig(sigma=0.4, sigma_cycle=0.0),
            rng=np.random.default_rng(6),
        )
        true_pos, true_neg = pair.theta_maps()
        result = pretest_pair(pair, SensingConfig(adc_bits=10))
        bulk = np.abs(true_pos) < 1.0
        assert np.corrcoef(
            result.theta_pos[bulk], true_pos[bulk]
        )[0, 1] > 0.9
