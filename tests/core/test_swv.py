"""Tests for summed weighted variations (Eq. 12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.swv import swv_pair, swv_single
from repro.xbar.mapping import WeightScaler


class TestSWVSingle:
    def test_paper_formula(self):
        w = np.array([[1.0, -2.0]])
        theta = np.array([[0.1, -0.2], [0.0, 0.0]])
        swv = swv_single(w, theta)
        expected_00 = (
            1.0 * abs(1 - np.exp(0.1)) + 2.0 * abs(1 - np.exp(-0.2))
        )
        assert swv.shape == (1, 2)
        assert swv[0, 0] == pytest.approx(expected_00)
        assert swv[0, 1] == pytest.approx(0.0)

    def test_zero_variation_zero_cost(self):
        swv = swv_single(np.ones((3, 4)), np.zeros((5, 4)))
        assert np.all(swv == 0.0)

    def test_cost_monotone_in_variation(self):
        w = np.ones((1, 3))
        small = swv_single(w, np.full((2, 3), 0.1))
        large = swv_single(w, np.full((2, 3), 0.5))
        assert np.all(large > small)

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError, match="column"):
            swv_single(np.ones((2, 3)), np.zeros((4, 5)))


class TestSWVPair:
    def test_shape(self):
        scaler = WeightScaler(1.0)
        swv = swv_pair(
            np.ones((4, 3)), np.zeros((6, 3)), np.zeros((6, 3)), scaler
        )
        assert swv.shape == (4, 6)

    def test_positive_weight_uses_positive_array_theta(self):
        scaler = WeightScaler(1.0)
        w = np.array([[0.5]])
        t_hot = np.array([[1.0]])
        t_cold = np.array([[0.0]])
        cost_hot_pos = swv_pair(w, t_hot, t_cold, scaler)[0, 0]
        cost_cold_pos = swv_pair(w, t_cold, t_hot, scaler)[0, 0]
        # The weight is positive: variation on the positive array
        # dominates the cost.
        assert cost_hot_pos > cost_cold_pos

    def test_negative_weight_uses_negative_array_theta(self):
        scaler = WeightScaler(1.0)
        w = np.array([[-0.5]])
        t_hot = np.array([[1.0]])
        t_cold = np.array([[0.0]])
        cost_hot_neg = swv_pair(w, t_cold, t_hot, scaler)[0, 0]
        cost_cold_neg = swv_pair(w, t_hot, t_cold, scaler)[0, 0]
        assert cost_hot_neg > cost_cold_neg

    def test_baseline_term_present_for_zero_weights(self):
        # Even a zero weight row pays for variation on its g_off
        # baselines.
        scaler = WeightScaler(1.0)
        w = np.zeros((1, 2))
        swv = swv_pair(w, np.full((1, 2), 0.5), np.full((1, 2), 0.5),
                       scaler)
        assert swv[0, 0] > 0

    def test_mismatched_thetas_rejected(self):
        scaler = WeightScaler(1.0)
        with pytest.raises(ValueError, match="theta"):
            swv_pair(np.ones((2, 3)), np.zeros((4, 3)), np.zeros((5, 3)),
                     scaler)

    def test_predicts_actual_weight_error(self, rng):
        # SWV should rank placements consistently with the realised
        # absolute weight error of the actual (normalised) programming
        # flow -- including the conductance-rail clipping.
        scaler = WeightScaler(1.0)
        w = rng.uniform(-0.3, 0.3, (1, 8))
        thetas_pos = rng.normal(0, 0.5, (20, 8))
        thetas_neg = rng.normal(0, 0.5, (20, 8))
        swv = swv_pair(w, thetas_pos, thetas_neg, scaler,
                       magnitude_bins=32)[0]

        # Mirror program_pair_open_loop: normalise to the full range.
        w_norm = w * (scaler.w_max / np.abs(w).max())
        g_pos, g_neg = scaler.weights_to_pair(w_norm)
        actual = []
        for q in range(20):
            gp = np.clip(g_pos * np.exp(thetas_pos[q]),
                         scaler.device.g_off, scaler.device.g_on)
            gn = np.clip(g_neg * np.exp(thetas_neg[q]),
                         scaler.device.g_off, scaler.device.g_on)
            w_eff = scaler.pair_to_weights(gp, gn)
            actual.append(np.sum(np.abs(w_eff - w_norm)))
        corr = np.corrcoef(swv, actual)[0, 1]
        assert corr > 0.8

    def test_clip_aware_prefers_clipping_side(self):
        # A +1.2-theta device on a near-full-scale weight clips at the
        # rail (small realised error); a -1.2-theta device shrinks the
        # weight freely (large error).  The plain Eq. 12 form gets this
        # backwards; the clip-aware form must not.
        scaler = WeightScaler(1.0)
        w = np.array([[0.95]])
        t_plus = np.array([[1.2]])
        t_minus = np.array([[-1.2]])
        zeros = np.array([[0.0]])
        cost_plus = swv_pair(w, t_plus, zeros, scaler)[0, 0]
        cost_minus = swv_pair(w, t_minus, zeros, scaler)[0, 0]
        assert cost_plus < cost_minus
        # The paper-exact form ranks the other way (documented).
        plain_plus = swv_pair(w, t_plus, zeros, scaler,
                              clip_aware=False)[0, 0]
        plain_minus = swv_pair(w, t_minus, zeros, scaler,
                               clip_aware=False)[0, 0]
        assert plain_plus > plain_minus
