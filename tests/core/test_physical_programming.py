"""Tests for the physical pulse-level open-loop programming path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import (
    OLDConfig,
    program_pair_open_loop,
    program_pair_physical,
    train_old,
)
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def make_pair(rows, sigma=0.0, r_wire=0.0, seed=0):
    spec = HardwareSpec(
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=r_wire),
        quantize_read=False,
    )
    return build_pair(spec, WeightScaler(1.0), np.random.default_rng(seed))


@pytest.fixture(scope="module")
def trained_weights(tiny_dataset):
    ds = tiny_dataset
    return train_old(
        ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
    ).weights


class TestPhysicalPath:
    def test_matches_abstract_path_without_variation(
        self, tiny_dataset, trained_weights
    ):
        ds = tiny_dataset
        pair_a = make_pair(ds.n_features)
        program_pair_open_loop(pair_a, trained_weights)
        pair_p = make_pair(ds.n_features)
        program_pair_physical(pair_p, trained_weights)
        rate_a = hardware_test_rate(pair_a, ds.x_test, ds.y_test, "ideal")
        rate_p = hardware_test_rate(pair_p, ds.x_test, ds.y_test, "ideal")
        assert rate_p == pytest.approx(rate_a, abs=0.02)
        assert np.allclose(
            pair_p.effective_weights(),
            pair_a.effective_weights(),
            atol=1e-3,
        )

    def test_landing_errors_correlate_across_paths(
        self, tiny_dataset, trained_weights
    ):
        # Same fabricated thetas -> the pulse-dynamics path and the
        # paper's abstract lognormal model identify the same bad cells.
        ds = tiny_dataset
        pair_a = make_pair(ds.n_features, sigma=0.4, seed=5)
        program_pair_open_loop(pair_a, trained_weights)
        pair_p = make_pair(ds.n_features, sigma=0.4, seed=5)
        program_pair_physical(pair_p, trained_weights)
        la = np.log(pair_a.positive.conductance).ravel()
        lp = np.log(pair_p.positive.conductance).ravel()
        assert np.corrcoef(la, lp)[0, 1] > 0.9

    def test_variation_degrades_physical_path_too(
        self, tiny_dataset, trained_weights
    ):
        ds = tiny_dataset
        rates = {}
        for sigma in (0.0, 1.0):
            trial = []
            for seed in range(3):
                pair = make_pair(ds.n_features, sigma=sigma, seed=seed)
                program_pair_physical(pair, trained_weights)
                trial.append(hardware_test_rate(
                    pair, ds.x_test, ds.y_test, "ideal"
                ))
            rates[sigma] = float(np.mean(trial))
        assert rates[1.0] < rates[0.0] - 0.05

    def test_ir_compensation_improves_physical_programming(
        self, tiny_dataset, trained_weights
    ):
        # Pulse stretching against the predicted delivered voltage is
        # the paper's [10] pre-calculation compensation.
        ds = tiny_dataset
        errors = {}
        for compensate in (True, False):
            pair = make_pair(ds.n_features, r_wire=8.0, seed=1)
            program_pair_physical(
                pair, trained_weights, compensate_program_ir=compensate
            )
            w_peak = np.abs(trained_weights).max()
            intended = trained_weights / w_peak
            realised = pair.effective_weights()
            errors[compensate] = float(
                np.mean(np.abs(realised - intended))
            )
        assert errors[True] < errors[False]

    def test_rail_targets_are_programmable(self):
        # Normalisation maps the peak weight exactly to w_max (the
        # conductance rail); the planner must handle it.
        pair = make_pair(8)
        w = np.zeros((8, 10))
        w[0, 0] = 1.0
        w[1, 1] = -1.0
        program_pair_physical(pair, w)
        realised = pair.effective_weights()
        assert realised[0, 0] == pytest.approx(1.0, abs=1e-3)
        assert realised[1, 1] == pytest.approx(-1.0, abs=1e-3)
