"""Tests for open-loop off-device training and programming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def ideal_spec(rows, r_wire=0.0):
    return HardwareSpec(
        variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=r_wire),
        quantize_read=False,
    )


class TestTrainOLD:
    def test_trains_reasonable_classifier(self, tiny_dataset):
        ds = tiny_dataset
        outcome = train_old(ds.x_train, ds.y_train, 10,
                            OLDConfig(gdt=GDTConfig(epochs=80)))
        assert outcome.training_rate > 0.6
        assert outcome.diagnostics["scheme"] == "OLD"


class TestProgramming:
    def test_normalisation_preserves_argmax(self, tiny_dataset, rng):
        ds = tiny_dataset
        outcome = train_old(ds.x_train, ds.y_train, 10,
                            OLDConfig(gdt=GDTConfig(epochs=80)))
        spec = ideal_spec(ds.n_features)
        pair = build_pair(spec, WeightScaler(1.0), rng)
        program_pair_open_loop(pair, outcome.weights)
        hw_rate = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        sw_rate = float(np.mean(
            np.argmax(ds.x_test @ outcome.weights, axis=1) == ds.y_test
        ))
        assert hw_rate == pytest.approx(sw_rate, abs=0.02)

    def test_unnormalised_large_weights_clip(self, tiny_dataset, rng):
        ds = tiny_dataset
        outcome = train_old(ds.x_train, ds.y_train, 10,
                            OLDConfig(gdt=GDTConfig(epochs=80)))
        assert np.abs(outcome.weights).max() > 1.0  # would clip at w_max=1
        spec = ideal_spec(ds.n_features)
        pair = build_pair(spec, WeightScaler(1.0), rng)
        program_pair_open_loop(
            pair, outcome.weights, OLDConfig(normalize_weights=False)
        )
        clipped = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        pair2 = build_pair(spec, WeightScaler(1.0), rng)
        program_pair_open_loop(pair2, outcome.weights)
        normalised = hardware_test_rate(pair2, ds.x_test, ds.y_test, "ideal")
        assert normalised > clipped

    def test_variation_degrades_hardware_rate(self, tiny_dataset):
        ds = tiny_dataset
        outcome = train_old(ds.x_train, ds.y_train, 10,
                            OLDConfig(gdt=GDTConfig(epochs=80)))
        rates = []
        for sigma in (0.0, 1.0):
            spec = HardwareSpec(
                variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
                crossbar=CrossbarConfig(rows=ds.n_features, cols=10,
                                        r_wire=0.0),
                quantize_read=False,
            )
            trial = []
            for seed in range(4):
                pair = build_pair(spec, WeightScaler(1.0),
                                  np.random.default_rng(seed))
                program_pair_open_loop(pair, outcome.weights)
                trial.append(
                    hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
                )
            rates.append(np.mean(trial))
        assert rates[1] < rates[0] - 0.05

    def test_ir_compensation_improves_fidelity(self, small_dataset, rng):
        ds = small_dataset
        outcome = train_old(ds.x_train, ds.y_train, 10,
                            OLDConfig(gdt=GDTConfig(epochs=80)))
        x_mean = ds.x_train.mean(axis=0)
        sw = np.argmax(ds.x_test @ outcome.weights, axis=1)

        def fidelity(compensate):
            spec = ideal_spec(ds.n_features, r_wire=2.5)
            pair = build_pair(spec, WeightScaler(1.0),
                              np.random.default_rng(0))
            program_pair_open_loop(
                pair, outcome.weights,
                OLDConfig(compensate_ir_drop=compensate),
                x_reference=x_mean,
            )
            scores = pair.matvec(ds.x_test, "fixed_point")
            return float(np.mean(np.argmax(scores, axis=1) == sw))

        assert fidelity(True) >= fidelity(False)
