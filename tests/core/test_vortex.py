"""End-to-end tests for the integrated Vortex pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.self_tuning import SelfTuningConfig
from repro.core.vortex import VortexConfig, run_vortex
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def make_spec(rows, sigma):
    return HardwareSpec(
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.02),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=0.0),
    )


def quick_vortex_cfg(integrate=False):
    return VortexConfig(
        self_tuning=SelfTuningConfig(
            gammas=(0.0, 0.3, 0.6),
            n_injections=4,
            gdt=GDTConfig(epochs=60),
        ),
        integrate=integrate,
    )


class TestRunVortex:
    @pytest.fixture(scope="class")
    def pipeline(self, tiny_dataset):
        ds = tiny_dataset
        spec = make_spec(ds.n_features + 8, sigma=0.6)
        rng = np.random.default_rng(21)
        pair = build_pair(spec, WeightScaler(1.0), rng)
        result = run_vortex(
            pair, ds.x_train, ds.y_train, 10, quick_vortex_cfg(), rng
        )
        return pair, result

    def test_result_fields(self, pipeline, tiny_dataset):
        _, result = pipeline
        ds = tiny_dataset
        assert result.weights.shape == (ds.n_features, 10)
        assert result.gamma in (0.0, 0.3, 0.6)
        assert result.sigma_pretest > 0.3
        assert 0.0 < result.sigma_effective <= result.sigma_pretest + 0.05
        assert result.amp is not None
        assert 0.0 <= result.training_rate <= 1.0

    def test_pair_left_programmed(self, pipeline, tiny_dataset):
        pair, result = pipeline
        ds = tiny_dataset
        rate = result.test_rate(pair, ds.x_test, ds.y_test)
        assert rate > 0.4

    def test_mapping_consistency(self, pipeline):
        _, result = pipeline
        assignment = result.mapping.assignment
        assert len(set(assignment.tolist())) == assignment.size

    def test_amp_reduces_effective_sigma(self, pipeline):
        _, result = pipeline
        assert result.sigma_effective < result.sigma_pretest

    def test_too_many_features_rejected(self, tiny_dataset):
        ds = tiny_dataset
        spec = make_spec(ds.n_features - 1, sigma=0.3)
        rng = np.random.default_rng(0)
        pair = build_pair(spec, WeightScaler(1.0), rng)
        with pytest.raises(ValueError, match="exceed"):
            run_vortex(pair, ds.x_train, ds.y_train, 10,
                       quick_vortex_cfg(), rng)


class TestVortexWithoutAMP:
    def test_identity_mapping_used(self, tiny_dataset):
        ds = tiny_dataset
        spec = make_spec(ds.n_features, sigma=0.4)
        rng = np.random.default_rng(3)
        pair = build_pair(spec, WeightScaler(1.0), rng)
        cfg = VortexConfig(
            self_tuning=SelfTuningConfig(
                gammas=(0.0, 0.4), n_injections=3, gdt=GDTConfig(epochs=40)
            ),
            use_amp=False,
        )
        result = run_vortex(pair, ds.x_train, ds.y_train, 10, cfg, rng)
        assert result.amp is None
        assert np.array_equal(
            result.mapping.assignment, np.arange(ds.n_features)
        )
        assert result.sigma_effective == result.sigma_pretest


class TestVortexBeatsOLD:
    def test_headline_comparison(self, tiny_dataset):
        # The paper's central claim at high variation: Vortex's test
        # rate exceeds conventional OLD's.
        ds = tiny_dataset
        sigma = 0.8
        old_weights = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
        ).weights
        vortex_rates, old_rates = [], []
        for seed in range(3):
            rng = np.random.default_rng(100 + seed)
            spec = make_spec(ds.n_features + 8, sigma)
            pair = build_pair(spec, WeightScaler(1.0), rng)
            result = run_vortex(
                pair, ds.x_train, ds.y_train, 10, quick_vortex_cfg(), rng
            )
            vortex_rates.append(
                result.test_rate(pair, ds.x_test, ds.y_test)
            )
            spec0 = make_spec(ds.n_features, sigma)
            pair0 = build_pair(spec0, WeightScaler(1.0), rng)
            program_pair_open_loop(pair0, old_weights)
            old_rates.append(
                hardware_test_rate(pair0, ds.x_test, ds.y_test, "ideal")
            )
        assert np.mean(vortex_rates) > np.mean(old_rates)
