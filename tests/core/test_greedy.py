"""Tests for the greedy and optimal mapping algorithms."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.greedy import (
    greedy_mapping,
    identity_mapping,
    optimal_mapping,
)


def brute_force_cost(swv):
    """Minimum assignment cost by exhaustive search."""
    n, m = swv.shape
    best = np.inf
    for perm in itertools.permutations(range(m), n):
        cost = sum(swv[i, q] for i, q in enumerate(perm))
        best = min(best, cost)
    return best


class TestGreedy:
    def test_injective_assignment(self, rng):
        swv = rng.random((6, 6))
        a = greedy_mapping(swv)
        assert len(set(a.tolist())) == 6

    def test_picks_cheapest_for_first_row(self):
        swv = np.array([[3.0, 1.0, 2.0], [1.0, 1.0, 1.0]])
        a = greedy_mapping(swv, order=np.array([0, 1]))
        assert a[0] == 1

    def test_order_changes_result(self):
        swv = np.array([[1.0, 5.0], [1.0, 5.0]])
        a01 = greedy_mapping(swv, order=np.array([0, 1]))
        a10 = greedy_mapping(swv, order=np.array([1, 0]))
        assert a01[0] == 0 and a01[1] == 1
        assert a10[1] == 0 and a10[0] == 1

    def test_redundant_columns_used(self):
        swv = np.array([[5.0, 5.0, 0.1]])
        assert greedy_mapping(swv)[0] == 2

    def test_insufficient_rows_rejected(self):
        with pytest.raises(ValueError, match="physical rows"):
            greedy_mapping(np.ones((4, 3)))

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            greedy_mapping(np.ones((3, 3)), order=np.array([0, 0, 2]))

    @given(
        arrays(
            float, (4, 6),
            elements=st.floats(min_value=0, max_value=10),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_always_injective(self, swv):
        a = greedy_mapping(swv)
        assert len(set(a.tolist())) == 4
        assert np.all(a >= 0) and np.all(a < 6)


class TestOptimal:
    def test_matches_brute_force(self, rng):
        for _ in range(5):
            swv = rng.random((4, 5))
            a = optimal_mapping(swv)
            cost = swv[np.arange(4), a].sum()
            assert cost == pytest.approx(brute_force_cost(swv))

    @given(
        arrays(
            float, (4, 5),
            elements=st.floats(min_value=0, max_value=10),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_optimal_never_worse_than_greedy(self, swv):
        greedy_cost = swv[np.arange(4), greedy_mapping(swv)].sum()
        optimal_cost = swv[np.arange(4), optimal_mapping(swv)].sum()
        assert optimal_cost <= greedy_cost + 1e-9


class TestIdentity:
    def test_identity(self):
        assert identity_mapping(4).tolist() == [0, 1, 2, 3]
