"""Tests for the alternative variation-distribution support.

Section 4.1.3: "our proposed techniques are not restricted to any
particular variation models."  These tests exercise the uniform and
heavy-tailed theta families end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.pretest import pretest_pair
from repro.core.self_tuning import SelfTuningConfig
from repro.core.vortex import VortexConfig, run_vortex
from repro.devices.variation import (
    THETA_DISTRIBUTIONS,
    VariationModel,
    sample_standard_thetas,
)
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


class TestSampleStandardThetas:
    @pytest.mark.parametrize("distribution", THETA_DISTRIBUTIONS)
    def test_unit_std(self, distribution):
        rng = np.random.default_rng(0)
        draws = sample_standard_thetas(rng, distribution, (100000,))
        assert np.std(draws) == pytest.approx(1.0, rel=0.05)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.03)

    def test_uniform_is_bounded(self):
        rng = np.random.default_rng(1)
        draws = sample_standard_thetas(rng, "uniform", (10000,))
        assert np.max(np.abs(draws)) <= np.sqrt(3.0) + 1e-12

    def test_heavy_tailed_has_outliers(self):
        rng = np.random.default_rng(2)
        heavy = sample_standard_thetas(rng, "heavy_tailed", (100000,))
        normal = sample_standard_thetas(rng, "lognormal", (100000,))
        # Kurtosis: far more 4-sigma events than the normal family.
        assert np.mean(np.abs(heavy) > 4) > 5 * np.mean(np.abs(normal) > 4)

    def test_unknown_distribution_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="distribution"):
            sample_standard_thetas(rng, "cauchy", (10,))


class TestVariationModelDispatch:
    @pytest.mark.parametrize("distribution", THETA_DISTRIBUTIONS)
    def test_parametric_std_matches_sigma(self, distribution):
        model = VariationModel(
            VariationConfig(sigma=0.5, distribution=distribution),
            np.random.default_rng(3),
        )
        theta = model.sample_parametric_theta((200, 200))
        assert np.std(theta) == pytest.approx(0.5, rel=0.1)


class TestPipelineUnderAlternativeModels:
    @pytest.mark.parametrize("distribution", ("uniform", "heavy_tailed"))
    def test_pretest_sigma_estimate_still_works(self, distribution):
        spec = HardwareSpec(
            variation=VariationConfig(
                sigma=0.5, distribution=distribution
            ),
            crossbar=CrossbarConfig(rows=48, cols=10, r_wire=0.0),
        )
        pair = build_pair(spec, WeightScaler(1.0),
                          np.random.default_rng(4))
        result = pretest_pair(pair, SensingConfig(adc_bits=10))
        # The MAD estimator is calibrated for normal theta; for the
        # matched-std alternatives it stays in the right ballpark.
        assert 0.3 < result.sigma_estimate < 0.75

    @pytest.mark.parametrize("distribution", ("uniform", "heavy_tailed"))
    def test_amp_beats_blind_placement(self, tiny_dataset, distribution):
        # The paper's claim exercised: AMP's measured-theta mapping
        # keeps paying off when the variation distribution changes.
        from repro.core.amp import RowMapping, run_amp

        ds = tiny_dataset
        weights = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
        ).weights
        x_mean = ds.x_train.mean(axis=0)
        n = ds.n_features
        spec = HardwareSpec(
            variation=VariationConfig(
                sigma=0.8, distribution=distribution
            ),
            crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        )
        mapped, blind = [], []
        for seed in range(5):
            rng = np.random.default_rng(1000 + seed)
            pair = build_pair(spec, WeightScaler(1.0), rng, rows=n + 8)
            amp = run_amp(pair, weights, x_mean,
                          SensingConfig(adc_bits=8), rng=rng)
            program_pair_open_loop(
                pair, amp.mapping.weights_to_physical(weights)
            )
            mapped.append(hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=amp.mapping.inputs_to_physical,
            ))
            identity = RowMapping(
                assignment=np.arange(n), n_physical=n + 8
            )
            program_pair_open_loop(
                pair, identity.weights_to_physical(weights)
            )
            blind.append(hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=identity.inputs_to_physical,
            ))
        assert np.mean(mapped) > np.mean(blind)

    def test_self_tuning_runs_under_uniform_model(self, tiny_dataset):
        # The Fig. 5 loop accepts the alternative injection model and
        # still returns a coherent result end-to-end.
        ds = tiny_dataset
        cfg = VortexConfig(
            self_tuning=SelfTuningConfig(
                gammas=(0.0, 0.3),
                n_injections=3,
                distribution="uniform",
                gdt=GDTConfig(epochs=40),
            ),
            integrate=False,
        )
        rng = np.random.default_rng(7)
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.6, distribution="uniform"),
            crossbar=CrossbarConfig(rows=ds.n_features, cols=10,
                                    r_wire=0.0),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng,
                          rows=ds.n_features + 8)
        result = run_vortex(pair, ds.x_train, ds.y_train, 10, cfg, rng)
        assert 0.0 < result.test_rate(pair, ds.x_test, ds.y_test) <= 1.0
        assert result.sigma_effective <= result.sigma_pretest + 0.05
