"""Tests for close-loop on-device training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.cld import CLDConfig, train_cld
from repro.xbar.mapping import WeightScaler


def make_spec(rows, sigma=0.0, r_wire=0.0):
    return HardwareSpec(
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=r_wire),
    )


def quick_cfg(**kwargs):
    defaults = dict(epochs=25, ir_drop_in_programming=False,
                    ir_mode_read="ideal")
    defaults.update(kwargs)
    return CLDConfig(**defaults)


class TestBasicTraining:
    def test_learns_tiny_benchmark(self, tiny_dataset, rng):
        ds = tiny_dataset
        pair = build_pair(make_spec(ds.n_features), WeightScaler(1.0), rng)
        outcome = train_cld(pair, ds.x_train, ds.y_train, 10,
                            quick_cfg(), rng)
        assert outcome.training_rate > 0.55
        assert outcome.diagnostics["scheme"] == "CLD"

    def test_error_history_decreases(self, tiny_dataset, rng):
        ds = tiny_dataset
        pair = build_pair(make_spec(ds.n_features), WeightScaler(1.0), rng)
        outcome = train_cld(pair, ds.x_train, ds.y_train, 10,
                            quick_cfg(), rng)
        history = outcome.diagnostics["error_history"]
        assert history[-1] < history[0]

    def test_effective_weights_returned(self, tiny_dataset, rng):
        ds = tiny_dataset
        pair = build_pair(make_spec(ds.n_features), WeightScaler(1.0), rng)
        outcome = train_cld(pair, ds.x_train, ds.y_train, 10,
                            quick_cfg(epochs=5), rng)
        assert outcome.weights.shape == (ds.n_features, 10)
        assert np.allclose(outcome.weights, pair.effective_weights())

    def test_input_width_validated(self, tiny_dataset, rng):
        ds = tiny_dataset
        pair = build_pair(make_spec(ds.n_features + 1), WeightScaler(1.0),
                          rng)
        with pytest.raises(ValueError, match="must be"):
            train_cld(pair, ds.x_train, ds.y_train, 10, quick_cfg(), rng)


class TestVariationTolerance:
    def test_feedback_tolerates_parametric_variation(self, tiny_dataset):
        # The paper's Section 3.1 claim: CLD's rate is nearly flat in
        # sigma while the open loop degrades.
        ds = tiny_dataset
        rates = {}
        for sigma in (0.0, 0.8):
            trial = []
            for seed in range(2):
                rng = np.random.default_rng(seed)
                pair = build_pair(
                    make_spec(ds.n_features, sigma=sigma),
                    WeightScaler(1.0), rng,
                )
                train_cld(pair, ds.x_train, ds.y_train, 10,
                          quick_cfg(), rng)
                trial.append(
                    hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
                )
            rates[sigma] = np.mean(trial)
        assert rates[0.8] > rates[0.0] - 0.1


class TestIRDropImpact:
    def test_ir_drop_skews_training_on_tall_crossbar(self, small_dataset):
        # Section 3.2/Table 1: the vertical degradation freezes rows
        # and hurts training quality as the crossbar grows.
        ds = small_dataset
        results = {}
        for r_wire, skew in ((0.0, False), (12.0, True)):
            rng = np.random.default_rng(3)
            pair = build_pair(
                make_spec(ds.n_features, r_wire=r_wire),
                WeightScaler(1.0), rng,
            )
            cfg = CLDConfig(
                epochs=20,
                ir_drop_in_programming=skew,
                ir_mode_read="reference" if skew else "ideal",
            )
            outcome = train_cld(pair, ds.x_train, ds.y_train, 10, cfg, rng)
            results[skew] = outcome.training_rate
        assert results[True] < results[False]
