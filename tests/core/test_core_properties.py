"""Property-based tests of core-algorithm invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.greedy import greedy_mapping, optimal_mapping
from repro.core.self_tuning import injected_rate
from repro.core.sensitivity import mapping_order, row_sensitivity
from repro.core.swv import clipped_weight_error, swv_pair, swv_single
from repro.nn.objectives import robust_hinge_loss
from repro.xbar.mapping import WeightScaler


class TestSWVProperties:
    @given(
        w=arrays(float, (4, 3),
                 elements=st.floats(min_value=-1, max_value=1)),
        scale=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_paper_swv_scales_linearly_in_weights(self, w, scale):
        theta = np.full((6, 3), 0.3)
        base = swv_single(w, theta)
        scaled = swv_single(scale * w, theta)
        assert np.allclose(scaled, scale * base, rtol=1e-9, atol=1e-9)

    @given(
        w=arrays(float, (4, 3),
                 elements=st.floats(min_value=-1, max_value=1)),
        scale=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_clip_aware_swv_is_scale_invariant(self, w, scale):
        # The clip-aware form normalises internally (mirroring the
        # programming stage), so a global weight rescaling changes
        # nothing.  Subnormal maxima make 1/|w|max overflow to inf --
        # a float-range artifact outside the property's scope.
        assume(not w.any() or np.abs(w).max() >= 1e-6)
        rng = np.random.default_rng(0)
        theta = rng.normal(0, 0.5, (6, 3))
        scaler = WeightScaler(1.0)
        a = swv_pair(w, theta, theta, scaler)
        b = swv_pair(scale * w, theta, theta, scaler)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-12)

    @given(u=st.floats(min_value=0.0, max_value=1.0),
           theta=st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_clipped_error_bounded_by_range(self, u, theta):
        scaler = WeightScaler(1.0)
        err = float(
            clipped_weight_error(u, np.array([[theta]]), scaler)[0, 0]
        )
        # The realised conductance stays inside [g_off, g_on], so the
        # weight error can never exceed the full representable span.
        assert 0.0 <= err <= scaler.w_max + 1e-12

    def test_zero_theta_zero_error(self):
        scaler = WeightScaler(1.0)
        err = clipped_weight_error(
            np.linspace(0, 1, 5), np.zeros((5,)), scaler
        )
        assert np.allclose(err, 0.0)


class TestMappingProperties:
    @given(
        swv=arrays(float, (5, 7),
                   elements=st.integers(min_value=0, max_value=100).map(
                       float
                   )),
        shift=st.integers(min_value=0, max_value=50).map(float),
    )
    @settings(max_examples=20, deadline=None)
    def test_greedy_invariant_to_constant_cost_shift(self, swv, shift):
        # Integer-valued costs keep the comparison exact: a constant
        # shift cannot reorder preferences (only float rounding could).
        a = greedy_mapping(swv)
        b = greedy_mapping(swv + shift)
        assert np.array_equal(a, b)

    @given(
        swv=arrays(float, (5, 7),
                   elements=st.floats(min_value=0, max_value=10)),
    )
    @settings(max_examples=20, deadline=None)
    def test_optimal_invariant_to_positive_scaling(self, swv):
        a = optimal_mapping(swv)
        cost_a = swv[np.arange(5), a].sum()
        b = optimal_mapping(3.0 * swv)
        cost_b = swv[np.arange(5), b].sum()
        assert cost_a == pytest.approx(cost_b)


class TestSensitivityProperties:
    @given(
        w=arrays(float, (5, 3),
                 elements=st.floats(min_value=-1, max_value=1)),
        gain=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_order_invariant_to_uniform_gains(self, w, gain):
        x = np.linspace(0.1, 1.0, 5)
        a = mapping_order(w, x)
        b = mapping_order(gain * w, x)
        c = mapping_order(w, np.clip(gain * x, 0, None))
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_row_sensitivity_additive_over_columns(self, rng):
        w = rng.uniform(-1, 1, (6, 4))
        x = rng.random(6)
        total = row_sensitivity(w, x)
        parts = sum(
            row_sensitivity(w[:, [j]], x) for j in range(4)
        )
        assert np.allclose(total, parts)


class TestObjectiveProperties:
    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_feasibility_is_scale_invariant(self, scale):
        # If weights satisfy the robust constraints with slack, any
        # up-scaling keeps them feasible (loss 0): margin and penalty
        # are both 1-homogeneous in W.
        rng = np.random.default_rng(1)
        x = rng.random((12, 5))
        w = rng.uniform(-1, 1, (5, 2))
        y = np.sign(x @ w)
        y[y == 0] = 1.0
        big = 10.0 * w  # comfortably feasible at penalty 0.1
        if robust_hinge_loss(x, big, y, 0.1) == 0.0:
            assert robust_hinge_loss(x, scale * big, y, 0.1) <= (
                robust_hinge_loss(x, big, y, 0.1) + 1e-12
            ) or scale >= 1.0


class TestInjectedRateProperties:
    def test_monotone_degradation_in_sigma_on_average(self, tiny_dataset):
        from repro.core.vat import VATConfig, train_vat
        from repro.nn.gdt import GDTConfig

        ds = tiny_dataset
        w = train_vat(
            ds.x_train, ds.y_train, 10,
            VATConfig(gamma=0.0, gdt=GDTConfig(epochs=40)),
        ).weights
        rng = np.random.default_rng(3)
        thetas = rng.standard_normal((10,) + w.shape)
        rates = [
            injected_rate(w, ds.x_test, ds.y_test, s, 10,
                          rng, thetas=thetas)
            for s in (0.0, 0.5, 1.0, 2.0)
        ]
        assert rates[0] >= rates[1] >= rates[2] >= rates[3]
