"""Tests for the position-aware AMP extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import row_read_factors, run_amp
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.swv import position_cost
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


class TestPositionCost:
    def test_outer_product_form(self):
        cost = position_cost(np.array([2.0, 1.0]),
                             np.array([0.5, 1.0, 0.8]))
        assert cost.shape == (2, 3)
        assert cost[0, 0] == pytest.approx(1.0)
        assert cost[0, 1] == pytest.approx(0.0)
        assert cost[1, 2] == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            position_cost(np.ones((2, 2)), np.ones(3))
        with pytest.raises(ValueError, match="factors"):
            position_cost(np.ones(2), np.array([0.0, 0.5]))


class TestRowReadFactors:
    def test_no_wire_gives_ones(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=16, cols=4, r_wire=0.0),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        factors = row_read_factors(pair, np.ones((16, 4)), np.full(16, 0.5))
        assert np.all(factors == 1.0)

    def test_far_rows_attenuate_more(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=64, cols=4, r_wire=2.5),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        factors = row_read_factors(
            pair, 0.3 * np.ones((64, 4)), np.full(64, 0.5)
        )
        # Bit lines are driven from the bottom (last row).
        assert factors[-1] > factors[0]
        assert np.all(factors > 0) and np.all(factors <= 1)


class TestPositionAwareMapping:
    def test_negative_weight_rejected(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.2, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=8, cols=10, r_wire=0.0),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        with pytest.raises(ValueError, match="position_weight"):
            run_amp(pair, np.ones((8, 10)), np.ones(8),
                    position_weight=-1.0)

    def test_zero_weight_reproduces_plain_algorithm(self, rng):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.5, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=24, cols=10, r_wire=2.5),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        w = rng.uniform(-1, 1, (20, 10))
        x_mean = rng.random(20)
        plain = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8))
        aware = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8),
                        pretest=plain.pretest, position_weight=0.0)
        assert np.array_equal(plain.mapping.assignment,
                              aware.mapping.assignment)

    def test_awareness_prefers_near_driver_rows(self, rng):
        # With negligible variation the plain algorithm is indifferent
        # to position; the aware variant must place the (only)
        # sensitive row near the bit-line driver.
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.01, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=32, cols=10, r_wire=5.0),
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        w = np.full((8, 10), 0.05)
        w[3] = 1.0  # one dominant row
        x_mean = np.full(8, 0.5)
        aware = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8),
                        position_weight=1.0)
        # The dominant row lands in the near-driver (high-index) half.
        assert aware.mapping.assignment[3] >= 16

    def test_improves_hardware_rate_under_read_ir(self, small_dataset):
        ds = small_dataset
        n = ds.n_features
        weights = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=80))
        ).weights
        x_mean = ds.x_train.mean(axis=0)
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.3),
            crossbar=CrossbarConfig(rows=n, cols=10, r_wire=4.0),
        )
        gains = []
        for seed in range(3):
            rng = np.random.default_rng(300 + seed)
            pair = build_pair(spec, WeightScaler(1.0), rng, rows=n + 32)
            plain = run_amp(pair, weights, x_mean,
                            SensingConfig(adc_bits=8), rng=rng)
            aware = run_amp(pair, weights, x_mean,
                            SensingConfig(adc_bits=8),
                            pretest=plain.pretest, position_weight=1.0)
            rates = {}
            for name, amp in (("plain", plain), ("aware", aware)):
                program_pair_open_loop(
                    pair, amp.mapping.weights_to_physical(weights),
                    x_reference=amp.mapping.inputs_to_physical(x_mean),
                )
                rates[name] = hardware_test_rate(
                    pair, ds.x_test, ds.y_test, "fixed_point",
                    input_map=amp.mapping.inputs_to_physical,
                )
            gains.append(rates["aware"] - rates["plain"])
        assert np.mean(gains) > -0.01  # never substantially worse
