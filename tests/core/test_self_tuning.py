"""Tests for the gamma self-tuning loop (Fig. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.self_tuning import (
    SelfTuningConfig,
    injected_rate,
    tune_gamma,
)
from repro.nn.gdt import GDTConfig


class TestInjectedRate:
    def test_sigma_zero_equals_clean_rate(self, tiny_dataset, rng):
        ds = tiny_dataset
        w = rng.uniform(-1, 1, (ds.n_features, 10))
        clean = float(np.mean(
            np.argmax(ds.x_test @ w, axis=1) == ds.y_test
        ))
        injected = injected_rate(w, ds.x_test, ds.y_test, 0.0, 3, rng)
        assert injected == pytest.approx(clean)

    def test_injection_degrades_rate(self, tiny_dataset, rng):
        from repro.core.vat import VATConfig, train_vat

        ds = tiny_dataset
        outcome = train_vat(ds.x_train, ds.y_train, 10,
                            VATConfig(gamma=0.0, gdt=GDTConfig(epochs=60)))
        clean = injected_rate(outcome.weights, ds.x_test, ds.y_test,
                              0.0, 1, rng)
        noisy = injected_rate(outcome.weights, ds.x_test, ds.y_test,
                              1.2, 10, rng)
        assert noisy < clean

    def test_shared_thetas_are_deterministic(self, tiny_dataset, rng):
        ds = tiny_dataset
        w = rng.uniform(-1, 1, (ds.n_features, 10))
        thetas = rng.standard_normal((4,) + w.shape)
        r1 = injected_rate(w, ds.x_test, ds.y_test, 0.5, 4,
                           np.random.default_rng(0), thetas=thetas)
        r2 = injected_rate(w, ds.x_test, ds.y_test, 0.5, 4,
                           np.random.default_rng(99), thetas=thetas)
        assert r1 == r2

    def test_invalid_injection_count(self, tiny_dataset, rng):
        ds = tiny_dataset
        w = np.zeros((ds.n_features, 10))
        with pytest.raises(ValueError, match="n_injections"):
            injected_rate(w, ds.x_test, ds.y_test, 0.5, 0, rng)

    def test_theta_shape_validated(self, tiny_dataset, rng):
        ds = tiny_dataset
        w = np.zeros((ds.n_features, 10))
        with pytest.raises(ValueError, match="thetas"):
            injected_rate(w, ds.x_test, ds.y_test, 0.5, 3, rng,
                          thetas=np.zeros((2, 3, 3)))


class TestTuneGamma:
    @pytest.fixture(scope="class")
    def tuned(self, tiny_dataset):
        ds = tiny_dataset
        cfg = SelfTuningConfig(
            gammas=(0.0, 0.3, 0.7),
            n_injections=4,
            gdt=GDTConfig(epochs=60),
        )
        return tune_gamma(
            ds.x_train, ds.y_train, 10, sigma=0.8, config=cfg,
            rng=np.random.default_rng(5),
        )

    def test_scan_covers_all_candidates(self, tuned):
        assert [p.gamma for p in tuned.scan] == [0.0, 0.3, 0.7]

    def test_best_gamma_maximises_injected_rate(self, tuned):
        rates = {p.gamma: p.validation_rate_injected for p in tuned.scan}
        assert tuned.best_gamma == max(rates, key=rates.get)

    def test_rates_are_probabilities(self, tuned):
        for p in tuned.scan:
            assert 0.0 <= p.training_rate <= 1.0
            assert 0.0 <= p.validation_rate_clean <= 1.0
            assert 0.0 <= p.validation_rate_injected <= 1.0

    def test_final_weights_shape(self, tuned, tiny_dataset):
        assert tuned.weights.shape == (tiny_dataset.n_features, 10)

    def test_empty_gammas_rejected(self, tiny_dataset):
        ds = tiny_dataset
        with pytest.raises(ValueError, match="candidate"):
            tune_gamma(
                ds.x_train, ds.y_train, 10, sigma=0.5,
                config=SelfTuningConfig(gammas=()),
            )
