"""Tests for the AMP flow and row mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import RowMapping, effective_sigma, run_amp
from repro.core.base import HardwareSpec, build_pair
from repro.core.old import program_pair_open_loop
from repro.xbar.mapping import WeightScaler


def make_pair(rows, sigma=0.6, seed=0, cols=10):
    spec = HardwareSpec(
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.01),
        crossbar=CrossbarConfig(rows=rows, cols=cols, r_wire=0.0),
        quantize_read=False,
    )
    return build_pair(spec, WeightScaler(1.0), np.random.default_rng(seed))


class TestRowMapping:
    def test_rejects_duplicate_targets(self):
        with pytest.raises(ValueError, match="injective"):
            RowMapping(assignment=np.array([0, 0]), n_physical=3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="physical"):
            RowMapping(assignment=np.array([0, 3]), n_physical=3)

    def test_weights_scatter(self):
        mapping = RowMapping(assignment=np.array([2, 0]), n_physical=3)
        w = np.array([[1.0], [2.0]])
        physical = mapping.weights_to_physical(w)
        assert physical.tolist() == [[2.0], [0.0], [1.0]]

    def test_inputs_route(self):
        mapping = RowMapping(assignment=np.array([2, 0]), n_physical=3)
        x = np.array([0.5, 0.7])
        routed = mapping.inputs_to_physical(x)
        assert routed.tolist() == [0.7, 0.0, 0.5]

    def test_matvec_invariance(self, rng):
        # The defining property (Fig. 6): permuting rows together with
        # their inputs leaves x @ W unchanged.
        n, m, extra = 8, 3, 4
        w = rng.uniform(-1, 1, (n, m))
        x = rng.random((5, n))
        perm = rng.permutation(n + extra)[:n]
        mapping = RowMapping(assignment=perm, n_physical=n + extra)
        out = mapping.inputs_to_physical(x) @ mapping.weights_to_physical(w)
        assert np.allclose(out, x @ w)

    def test_weight_row_count_validated(self):
        mapping = RowMapping(assignment=np.array([0, 1]), n_physical=2)
        with pytest.raises(ValueError, match="rows"):
            mapping.weights_to_physical(np.ones((3, 1)))

    def test_input_width_validated(self):
        mapping = RowMapping(assignment=np.array([0, 1]), n_physical=2)
        with pytest.raises(ValueError, match="width"):
            mapping.inputs_to_physical(np.ones((2, 3)))


class TestEffectiveSigma:
    def test_zero_variation_gives_zero(self):
        mapping = RowMapping(assignment=np.arange(3), n_physical=3)
        w = np.ones((3, 2))
        assert effective_sigma(
            mapping, w, np.zeros((3, 2)), np.zeros((3, 2))
        ) == 0.0

    def test_weights_emphasise_their_rows(self):
        mapping = RowMapping(assignment=np.arange(2), n_physical=2)
        w = np.array([[1.0], [0.0]])
        theta_hot_row0 = np.array([[1.0], [0.0]])
        theta_hot_row1 = np.array([[0.0], [1.0]])
        zeros = np.zeros((2, 1))
        s0 = effective_sigma(mapping, w, theta_hot_row0, zeros)
        s1 = effective_sigma(mapping, w, theta_hot_row1, zeros)
        assert s0 > s1


class TestRunAMP:
    def test_mapping_reduces_effective_sigma(self, rng):
        pair = make_pair(rows=40, sigma=0.6, seed=1)
        w = rng.uniform(-1, 1, (32, 10))
        x_mean = rng.random(32)
        result = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8))
        identity = RowMapping(assignment=np.arange(32), n_physical=40)
        true_pos, true_neg = pair.theta_maps()
        s_amp = effective_sigma(result.mapping, w, true_pos, true_neg)
        s_id = effective_sigma(identity, w, true_pos, true_neg)
        assert s_amp < s_id

    def test_redundancy_improves_mapping(self, rng):
        w = rng.uniform(-1, 1, (32, 10))
        x_mean = rng.random(32)
        sigmas = {}
        for extra in (0, 16):
            pair = make_pair(rows=32 + extra, sigma=0.6, seed=2)
            result = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8))
            true_pos, true_neg = pair.theta_maps()
            sigmas[extra] = effective_sigma(
                result.mapping, w, true_pos, true_neg
            )
        assert sigmas[16] < sigmas[0]

    def test_optimal_method_not_worse_on_swv(self, rng):
        pair = make_pair(rows=24, sigma=0.5, seed=3)
        w = rng.uniform(-1, 1, (20, 10))
        x_mean = rng.random(20)
        greedy = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8),
                         method="greedy")
        optimal = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8),
                          method="optimal", pretest=greedy.pretest)
        greedy_cost = greedy.swv[
            np.arange(20), greedy.mapping.assignment
        ].sum()
        optimal_cost = optimal.swv[
            np.arange(20), optimal.mapping.assignment
        ].sum()
        assert optimal_cost <= greedy_cost + 1e-9

    def test_unknown_method_rejected(self, rng):
        pair = make_pair(rows=8, cols=2)
        with pytest.raises(ValueError, match="method"):
            run_amp(pair, np.ones((8, 2)), np.ones(8), method="magic")

    def test_too_many_weight_rows_rejected(self, rng):
        pair = make_pair(rows=4, cols=2)
        with pytest.raises(ValueError, match="exceed"):
            run_amp(pair, np.ones((6, 2)), np.ones(6))

    def test_column_mismatch_rejected(self, rng):
        pair = make_pair(rows=8, cols=2)
        with pytest.raises(ValueError, match="columns"):
            run_amp(pair, np.ones((8, 3)), np.ones(8))

    def test_amp_improves_hardware_accuracy(self, tiny_dataset, rng):
        # End to end: AMP-mapped programming beats identity placement.
        from repro.core.base import hardware_test_rate
        from repro.core.vat import VATConfig, train_vat
        from repro.nn.gdt import GDTConfig

        ds = tiny_dataset
        outcome = train_vat(
            ds.x_train, ds.y_train, 10,
            VATConfig(gamma=0.0, sigma=0.0, gdt=GDTConfig(epochs=60)),
        )
        w = outcome.weights
        x_mean = ds.x_train.mean(axis=0)
        gains = []
        for seed in range(3):
            pair = make_pair(rows=ds.n_features + 10, sigma=0.7,
                             seed=seed)
            amp = run_amp(pair, w, x_mean, SensingConfig(adc_bits=8))
            program_pair_open_loop(
                pair, amp.mapping.weights_to_physical(w)
            )
            with_amp = hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=amp.mapping.inputs_to_physical,
            )
            identity = RowMapping(
                assignment=np.arange(ds.n_features),
                n_physical=ds.n_features + 10,
            )
            program_pair_open_loop(
                pair, identity.weights_to_physical(w)
            )
            without = hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=identity.inputs_to_physical,
            )
            gains.append(with_amp - without)
        assert np.mean(gains) > 0.0
