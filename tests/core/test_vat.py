"""Tests for the VAT robust trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.self_tuning import injected_rate
from repro.core.vat import VATConfig, train_vat
from repro.nn.gdt import GDTConfig
from repro.nn.objectives import variation_penalty


class TestPenaltyScale:
    def test_gamma_zero_gives_zero(self):
        cfg = VATConfig(gamma=0.0, sigma=0.6)
        assert cfg.penalty_scale(100) == 0.0

    def test_sigma_zero_gives_zero(self):
        cfg = VATConfig(gamma=0.5, sigma=0.0)
        assert cfg.penalty_scale(100) == 0.0

    def test_gaussian_bound_independent_of_n(self):
        cfg = VATConfig(gamma=0.5, sigma=0.6, bound="gaussian")
        assert cfg.penalty_scale(100) == pytest.approx(
            cfg.penalty_scale(1000)
        )

    def test_chi2_bound_grows_with_n(self):
        cfg = VATConfig(gamma=0.5, sigma=0.6, bound="chi2")
        assert cfg.penalty_scale(400) > cfg.penalty_scale(100)

    def test_chi2_exceeds_gaussian(self):
        chi2 = VATConfig(gamma=0.5, sigma=0.6, bound="chi2")
        gauss = VATConfig(gamma=0.5, sigma=0.6, bound="gaussian")
        assert chi2.penalty_scale(100) > gauss.penalty_scale(100)

    def test_unknown_bound_rejected(self):
        cfg = VATConfig(bound="bogus")
        with pytest.raises(ValueError, match="bound"):
            cfg.penalty_scale(10)

    def test_negative_gamma_rejected(self):
        cfg = VATConfig(gamma=-0.1)
        with pytest.raises(ValueError, match="gamma"):
            cfg.penalty_scale(10)

    def test_linear_in_gamma_and_alpha1(self):
        base = VATConfig(gamma=0.2, sigma=0.5).penalty_scale(50)
        doubled = VATConfig(gamma=0.4, sigma=0.5).penalty_scale(50)
        alpha = VATConfig(gamma=0.2, sigma=0.5, alpha1=2.0).penalty_scale(50)
        assert doubled == pytest.approx(2 * base)
        assert alpha == pytest.approx(2 * base)


class TestTrainVAT:
    def test_gamma_zero_matches_plain_gdt(self, tiny_dataset):
        ds = tiny_dataset
        gdt = GDTConfig(epochs=60)
        a = train_vat(ds.x_train, ds.y_train, 10,
                      VATConfig(gamma=0.0, sigma=0.6, gdt=gdt))
        b = train_vat(ds.x_train, ds.y_train, 10,
                      VATConfig(gamma=0.0, sigma=0.0, gdt=gdt))
        assert np.allclose(a.weights, b.weights)

    def test_outcome_fields(self, tiny_dataset):
        ds = tiny_dataset
        outcome = train_vat(
            ds.x_train, ds.y_train, 10,
            VATConfig(gamma=0.3, sigma=0.6, gdt=GDTConfig(epochs=40)),
        )
        assert outcome.weights.shape == (ds.n_features, 10)
        assert 0.0 <= outcome.training_rate <= 1.0
        assert outcome.diagnostics["gamma"] == 0.3
        assert outcome.diagnostics["penalty_scale"] > 0

    def test_penalty_reduces_coherence(self, tiny_dataset):
        # VAT's whole point: lower ||x (.) w||_2 relative to margin.
        ds = tiny_dataset
        gdt = GDTConfig(epochs=100)
        plain = train_vat(ds.x_train, ds.y_train, 10,
                          VATConfig(gamma=0.0, sigma=0.6, gdt=gdt))
        robust = train_vat(ds.x_train, ds.y_train, 10,
                           VATConfig(gamma=0.8, sigma=0.6, gdt=gdt))

        def coherence(w):
            pen = variation_penalty(ds.x_train, w)
            margin = np.abs(ds.x_train @ w)
            return float(np.mean(pen / (margin + 1e-9)))

        assert coherence(robust.weights) < coherence(plain.weights)

    def test_robust_weights_tolerate_injection_better(self, tiny_dataset):
        ds = tiny_dataset
        gdt = GDTConfig(epochs=100)
        sigma = 0.8
        plain = train_vat(ds.x_train, ds.y_train, 10,
                          VATConfig(gamma=0.0, sigma=sigma, gdt=gdt))
        robust = train_vat(ds.x_train, ds.y_train, 10,
                           VATConfig(gamma=0.5, sigma=sigma, gdt=gdt))
        rng = np.random.default_rng(0)
        thetas = rng.standard_normal((12,) + plain.weights.shape)
        r_plain = injected_rate(plain.weights, ds.x_test, ds.y_test,
                                sigma, 12, rng, thetas=thetas)
        r_robust = injected_rate(robust.weights, ds.x_test, ds.y_test,
                                 sigma, 12, rng, thetas=thetas)
        # Injected rate must not degrade; typically it improves.
        assert r_robust >= r_plain - 0.01
