"""Tests for write-verify programming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.write_verify import (
    WriteVerifyConfig,
    program_pair_write_verify,
)
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def make_pair(rows, sigma, seed=0, defect_rate=0.0):
    spec = HardwareSpec(
        variation=VariationConfig(
            sigma=sigma, sigma_cycle=0.01, defect_rate=defect_rate
        ),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=0.0),
        quantize_read=False,
    )
    return build_pair(spec, WeightScaler(1.0), np.random.default_rng(seed))


class TestWriteVerify:
    def test_converges_on_ideal_devices(self, rng):
        pair = make_pair(16, sigma=0.0)
        w = rng.uniform(-1, 1, (16, 10))
        stats = program_pair_write_verify(pair, w)
        assert stats.unconverged == 0
        assert np.allclose(pair.effective_weights(), w, atol=0.05)

    def test_corrects_parametric_variation(self, rng):
        pair = make_pair(16, sigma=0.6, seed=3)
        w = rng.uniform(-1, 1, (16, 10))
        stats = program_pair_write_verify(pair, w)
        realised = pair.effective_weights()
        # The verify loop trims most of the lognormal error away.
        assert np.mean(np.abs(realised - w)) < 0.05
        assert stats.total_pulses > 2 * 16 * 10  # needed extra trims

    def test_open_loop_needs_fewer_pulses_but_lands_worse(self, rng):
        w = rng.uniform(-1, 1, (16, 10))
        pair_wv = make_pair(16, sigma=0.6, seed=4)
        stats = program_pair_write_verify(pair_wv, w)
        pair_ol = make_pair(16, sigma=0.6, seed=4)
        program_pair_open_loop(pair_ol, w)
        err_wv = np.mean(np.abs(pair_wv.effective_weights() - w))
        err_ol = np.mean(np.abs(pair_ol.effective_weights() - w))
        assert err_wv < err_ol / 3
        assert stats.total_pulses > 2 * 16 * 10

    def test_tolerance_bounds_pulse_count(self, rng):
        w = rng.uniform(-1, 1, (16, 10))
        tight = program_pair_write_verify(
            make_pair(16, sigma=0.6, seed=5), w,
            WriteVerifyConfig(tolerance=0.005),
        )
        loose = program_pair_write_verify(
            make_pair(16, sigma=0.6, seed=5), w,
            WriteVerifyConfig(tolerance=0.05),
        )
        assert tight.total_pulses >= loose.total_pulses

    def test_stuck_cells_reported_not_retried_forever(self, rng):
        pair = make_pair(16, sigma=0.2, seed=6, defect_rate=0.2)
        w = rng.uniform(-1, 1, (16, 10))
        stats = program_pair_write_verify(pair, w)
        # Stuck cells are excluded from the pending set, so the pulse
        # budget is not exhausted on them.
        assert stats.max_pulses <= WriteVerifyConfig().max_iterations + 1

    def test_invalid_config_rejected(self, rng):
        pair = make_pair(4, sigma=0.0)
        w = rng.uniform(-1, 1, (4, 10))
        with pytest.raises(ValueError, match="tolerance"):
            program_pair_write_verify(
                pair, w, WriteVerifyConfig(tolerance=0.0)
            )

    def test_shape_mismatch_rejected(self, rng):
        pair = make_pair(4, sigma=0.0)
        with pytest.raises(ValueError, match="shape"):
            program_pair_write_verify(pair, np.ones((5, 10)))


class TestWriteVerifyAccuracy:
    def test_recovers_classifier_accuracy(self, tiny_dataset):
        ds = tiny_dataset
        w = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
        ).weights
        sigma = 0.8
        wv_rates, ol_rates = [], []
        for seed in range(3):
            pair = make_pair(ds.n_features, sigma, seed=seed)
            program_pair_write_verify(pair, w)
            wv_rates.append(
                hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
            )
            pair = make_pair(ds.n_features, sigma, seed=seed)
            program_pair_open_loop(pair, w)
            ol_rates.append(
                hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
            )
        assert np.mean(wv_rates) > np.mean(ol_rates) + 0.03
