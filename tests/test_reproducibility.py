"""End-to-end determinism: identical seeds give identical results.

Every stochastic element of the library (rendering, fabrication,
pre-test noise, tuning splits, injections) flows from explicit
generators, so whole pipelines must reproduce bit-for-bit -- the
property every number in EXPERIMENTS.md relies on.
"""

from __future__ import annotations

import numpy as np

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair
from repro.core.self_tuning import SelfTuningConfig
from repro.core.vortex import VortexConfig, run_vortex
from repro.experiments import ExperimentScale, run_fig2, run_fig4
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def nano_scale(seed=21):
    return ExperimentScale(
        n_train=200, n_test=100, mc_trials=1, column_mc_trials=25,
        epochs=20, gammas=(0.0, 0.4), n_injections=2, seed=seed,
    )


class TestPipelineDeterminism:
    def test_vortex_bitwise_reproducible(self, tiny_dataset):
        ds = tiny_dataset
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.5),
            crossbar=CrossbarConfig(rows=ds.n_features, cols=10,
                                    r_wire=0.0),
        )
        cfg = VortexConfig(
            self_tuning=SelfTuningConfig(
                gammas=(0.0, 0.3), n_injections=2,
                gdt=GDTConfig(epochs=20),
            ),
            integrate=False,
        )

        def once():
            rng = np.random.default_rng(99)
            pair = build_pair(spec, WeightScaler(1.0), rng,
                              rows=ds.n_features + 4)
            result = run_vortex(pair, ds.x_train, ds.y_train, 10, cfg,
                                rng)
            return (
                result.weights,
                result.mapping.assignment,
                result.gamma,
                result.test_rate(pair, ds.x_test, ds.y_test),
            )

        w1, a1, g1, r1 = once()
        w2, a2, g2, r2 = once()
        assert np.array_equal(w1, w2)
        assert np.array_equal(a1, a2)
        assert g1 == g2
        assert r1 == r2

    def test_fig2_driver_reproducible(self):
        a = run_fig2(nano_scale(), sigmas=(0.0, 0.5))
        b = run_fig2(nano_scale(), sigmas=(0.0, 0.5))
        assert np.array_equal(a.old_discrepancy, b.old_discrepancy)
        assert np.array_equal(a.cld_discrepancy, b.cld_discrepancy)

    def test_fig4_driver_reproducible(self):
        a = run_fig4(nano_scale(), sigma=0.6, image_size=7)
        b = run_fig4(nano_scale(), sigma=0.6, image_size=7)
        assert np.array_equal(a.training_rate, b.training_rate)
        assert np.array_equal(a.test_rate_injected, b.test_rate_injected)

    def test_different_seeds_change_results(self):
        a = run_fig2(nano_scale(seed=21), sigmas=(0.5,))
        b = run_fig2(nano_scale(seed=22), sigmas=(0.5,))
        assert not np.array_equal(a.old_discrepancy, b.old_discrepancy)

    def test_fabrication_independent_of_later_draws(self):
        # Consuming extra randomness after fabrication must not change
        # the fabricated thetas (generator order discipline).
        spec = HardwareSpec(variation=VariationConfig(sigma=0.5),
                            crossbar=CrossbarConfig(rows=8, cols=4,
                                                    r_wire=0.0))
        rng1 = np.random.default_rng(5)
        pair1 = build_pair(spec, WeightScaler(1.0), rng1)
        rng2 = np.random.default_rng(5)
        pair2 = build_pair(spec, WeightScaler(1.0), rng2)
        rng2.random(1000)  # later consumption
        assert np.array_equal(
            pair1.positive.array.theta, pair2.positive.array.theta
        )
