"""Tests for the command-line interface and report generation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import build_parser, main
from repro.experiments.common import ExperimentScale
from repro.experiments.report import EXPERIMENT_RUNNERS, generate_report


def nano_scale() -> ExperimentScale:
    return ExperimentScale(
        n_train=200,
        n_test=100,
        mc_trials=1,
        column_mc_trials=20,
        epochs=30,
        gammas=(0.0, 0.4),
        n_injections=2,
        seed=13,
    )


class TestParser:
    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.command == "report"
        assert args.experiments is None
        assert args.image_size == 14
        assert not args.paper_scale
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert args.run_log is None

    def test_report_runtime_flags(self):
        args = build_parser().parse_args([
            "report", "--jobs", "4", "--cache-dir", "/tmp/c",
            "--no-cache", "--run-log", "log.json",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache
        assert args.run_log == "log.json"

    def test_report_experiment_subset(self):
        args = build_parser().parse_args(
            ["report", "--experiments", "fig2", "fig3"]
        )
        assert args.experiments == ["fig2", "fig3"]

    def test_report_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["report", "--experiments", "fig99"]
            )

    def test_quickstart_options(self):
        args = build_parser().parse_args(
            ["quickstart", "--sigma", "0.4", "--image-size", "7"]
        )
        assert args.command == "quickstart"
        assert args.sigma == 0.4
        assert args.image_size == 7

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == ["src"]
        assert args.format == "text"

    def test_lint_options(self):
        args = build_parser().parse_args([
            "lint", "src", "tests", "--format", "json",
            "--select", "REP001,REP004",
            "--allow-unseeded", "examples/demo.py",
        ])
        assert args.paths == ["src", "tests"]
        assert args.format == "json"
        assert args.select == "REP001,REP004"
        assert args.allow_unseeded == ["examples/demo.py"]


class TestGenerateReport:
    def test_runs_selected_cheap_sections(self):
        text = generate_report(
            nano_scale(), image_size=7, experiments=("fig2", "fig3")
        )
        assert "Fig. 2" in text
        assert "Fig. 3" in text
        assert "Fig. 4" not in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(nano_scale(), experiments=("nope",))

    def test_all_runners_registered(self):
        assert set(EXPERIMENT_RUNNERS) == {
            "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "table1"
        }


class TestMain:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick scale so the CLI test stays fast.
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        out = tmp_path / "report.txt"
        code = main([
            "report", "--experiments", "fig3", "--output", str(out),
        ])
        assert code == 0
        assert "Fig. 3" in out.read_text()
        assert "written to" in capsys.readouterr().out

    def test_report_to_stdout(self, capsys, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        code = main(["report", "--experiments", "fig2"])
        assert code == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_output_creates_parent_dirs_utf8(self, tmp_path, capsys,
                                             monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        out = tmp_path / "deeply" / "nested" / "report.txt"
        code = main([
            "report", "--experiments", "fig3", "--output", str(out),
        ])
        assert code == 0
        assert "Fig. 3" in out.read_text(encoding="utf-8")

    def test_jobs_produce_identical_report(self, tmp_path, capsys,
                                           monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        out1 = tmp_path / "r1.txt"
        out2 = tmp_path / "r2.txt"
        main(["report", "--experiments", "fig2", "--jobs", "1",
              "--output", str(out1)])
        main(["report", "--experiments", "fig2", "--jobs", "2",
              "--output", str(out2)])
        assert out1.read_bytes() == out2.read_bytes()

    def test_cache_dir_skips_recompute(self, tmp_path, capsys,
                                       monkeypatch):
        import json

        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        cache = tmp_path / "cache"
        log1 = tmp_path / "log1.json"
        log2 = tmp_path / "log2.json"
        common = ["report", "--experiments", "fig2", "fig3",
                  "--cache-dir", str(cache)]
        main(common + ["--run-log", str(log1),
                       "--output", str(tmp_path / "a.txt")])
        main(common + ["--run-log", str(log2),
                       "--output", str(tmp_path / "b.txt")])
        first = json.loads(log1.read_text(encoding="utf-8"))
        second = json.loads(log2.read_text(encoding="utf-8"))
        assert first["recomputed_experiments"] == 2
        assert second["recomputed_experiments"] == 0
        assert second["cached_experiments"] == 2

    def test_report_embeds_run_log_section(self, capsys, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        main(["report", "--experiments", "fig3"])
        out = capsys.readouterr().out
        assert "=== run log ===" in out
        assert "fig3     computed" in out

    def test_lint_subcommand_on_clean_package(self, capsys):
        from pathlib import Path

        import repro

        src_root = str(Path(repro.__file__).parent)
        assert main(["lint", src_root]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seed_override(self, monkeypatch, capsys):
        import repro.cli as cli_module

        captured = {}
        real = cli_module.generate_report

        def spy(scale, image_size, experiments):
            captured["seed"] = scale.seed
            return real(scale, image_size, experiments)

        monkeypatch.setattr(
            cli_module.ExperimentScale, "quick",
            classmethod(lambda cls: nano_scale()),
        )
        monkeypatch.setattr(cli_module, "generate_report", spy)
        main(["report", "--experiments", "fig3", "--seed", "99"])
        assert captured["seed"] == 99


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestServeParser:
    def test_program_defaults(self):
        args = build_parser().parse_args(
            ["program", "--cache-dir", "/tmp/c"]
        )
        assert args.command == "program"
        assert args.scheme == "vortex"
        assert args.image_size == 7
        assert args.ir_mode == "ideal"

    def test_serve_requires_io_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--cache-dir", "/tmp/c", "--artifact", "k"]
            )

    def test_serve_stdin_and_port_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "serve", "--cache-dir", "/tmp/c", "--artifact", "k",
                "--stdin", "--port", "8080",
            ])

    def test_cache_prune_requires_size(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cache", "prune", "--cache-dir", "/tmp/c"]
            )


class TestFleetParser:
    def test_program_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "program", "--cache-dir", "/tmp/c"]
        )
        assert args.command == "fleet"
        assert args.fleet_command == "program"
        assert args.image_size == 14
        assert args.tile_rows == 49
        assert args.ir_mode == "ideal"

    def test_serve_requires_io_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "serve", "--cache-dir", "/tmp/c",
                 "--fleet", "k"]
            )

    def test_serve_options(self):
        args = build_parser().parse_args([
            "fleet", "serve", "--cache-dir", "/tmp/c", "--fleet", "k",
            "--stdin", "--replicas", "3", "--drift-threshold", "0.1",
        ])
        assert args.replicas == 3
        assert args.drift_threshold == 0.1

    def test_status_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "status", "--cache-dir", "/tmp/c", "--fleet", "k"]
        )
        assert args.fleet_command == "status"
        assert args.replicas == 2


class TestFleetProgramAndStatus:
    def test_program_then_status(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        argv = [
            "fleet", "program", "--cache-dir", cache_dir,
            "--image-size", "7", "--n-train", "120",
            "--tile-rows", "16", "--seed", "4",
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "programmed"
        assert summary["n_shards"] == 4  # 49 rows in 16-row tiles

        # Identical settings are a pure cache read.
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "cached"

        assert main([
            "fleet", "status", "--cache-dir", cache_dir,
            "--fleet", summary["key"],
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["n_shards"] == 4
        shard = status["shards"][0]
        assert shard["live"] == 2
        assert all(lane["alive"] for lane in shard["replicas"])


class TestPipelineParser:
    def test_program_defaults(self):
        args = build_parser().parse_args(
            ["pipeline", "program", "--cache-dir", "/tmp/c"]
        )
        assert args.command == "pipeline"
        assert args.pipeline_command == "program"
        assert args.kind == "mlp"
        assert args.image_size == 7
        assert args.hidden == 32
        assert args.tile_rows == 32

    def test_serve_requires_io_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["pipeline", "serve", "--cache-dir", "/tmp/c",
                 "--pipeline", "k"]
            )

    def test_eval_defaults(self):
        args = build_parser().parse_args([
            "pipeline", "eval", "--cache-dir", "/tmp/c",
            "--pipeline", "k",
        ])
        assert args.pipeline_command == "eval"
        assert args.replicas == 1
        assert args.n_test == 200
        assert args.flip_fraction == 0.1


class TestPipelineCommands:
    def test_program_eval_and_serve_stdin(
        self, tmp_path, capsys, monkeypatch
    ):
        import io
        import json

        cache_dir = str(tmp_path / "cache")
        argv = [
            "pipeline", "program", "--cache-dir", cache_dir,
            "--image-size", "7", "--n-train", "120", "--hidden", "10",
            "--epochs", "30", "--tile-rows", "20", "--seed", "4",
            "--n-probes", "8",
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "programmed"
        assert summary["kind"] == "mlp"
        assert summary["n_layers"] == 2
        assert summary["shapes"] == [[49, 10], [10, 10]]

        # Identical settings are a pure cache read.
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "cached"

        assert main([
            "pipeline", "eval", "--cache-dir", cache_dir,
            "--pipeline", summary["key"], "--n-test", "24",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "mlp"
        assert report["bit_identical"] is True
        assert report["deadline_misses"] == 0
        assert 0.0 <= report["accuracy"] <= 1.0

        line = ",".join(["0.2"] * 49)
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n\n"))
        assert main([
            "pipeline", "serve", "--cache-dir", cache_dir,
            "--pipeline", summary["key"], "--stdin",
        ]) == 0
        captured = capsys.readouterr()
        answers = [
            json.loads(text)
            for text in captured.out.splitlines() if text
        ]
        assert len(answers) == 1
        assert len(answers[0]["scores"]) == 10

    def test_bsb_eval_reports_recall(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main([
            "pipeline", "program", "--cache-dir", cache_dir,
            "--kind", "bsb", "--image-size", "7", "--n-train", "120",
            "--n-prototypes", "3", "--tile-rows", "25", "--seed", "5",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kind"] == "bsb"
        assert summary["n_layers"] == 1

        assert main([
            "pipeline", "eval", "--cache-dir", cache_dir,
            "--pipeline", summary["key"],
            "--probes-per-prototype", "2",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "bsb"
        assert report["bit_identical"] is True
        assert report["recall"]["recalls"] == 6
        assert 0.0 <= report["recall_success_rate"] <= 1.0


class TestCacheCommands:
    def test_stats_on_empty_cache(self, tmp_path, capsys):
        import json

        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["files"] == 0
        assert stats["total_bytes"] == 0

    def test_stats_and_prune_round_trip(self, tmp_path, capsys):
        import json

        from repro.runtime.cache import ArtifactCache, stable_key

        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put_json(stable_key("t", {"i": i}), {"i": i})
        main(["cache", "stats", "--cache-dir", str(tmp_path)])
        stats = json.loads(capsys.readouterr().out)
        assert stats["keys"] == 3
        main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-size-mb", "0",
        ])
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["removed_keys"] == 3
        assert pruned["total_bytes"] == 0


class TestProgramAndServe:
    def test_program_then_serve_stdin(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        from repro.runtime.cache import ArtifactCache
        from repro.serve import ProgrammedArray

        cache_dir = str(tmp_path / "cache")
        argv = [
            "program", "--cache-dir", cache_dir, "--scheme", "old",
            "--image-size", "7", "--n-train", "120", "--seed", "4",
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "programmed"
        assert summary["scheme"] == "old"

        # Second run with identical settings is a pure cache read.
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "cached"

        artifact = ProgrammedArray.load(
            ArtifactCache(cache_dir), summary["key"]
        )
        lines = "\n".join(
            ",".join(f"{v:.5f}" for v in row)
            for row in artifact.probes[:3]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n\n"))
        assert main([
            "serve", "--cache-dir", cache_dir,
            "--artifact", summary["key"], "--stdin",
        ]) == 0
        captured = capsys.readouterr()
        answers = [
            json.loads(line) for line in captured.out.splitlines() if line
        ]
        assert len(answers) == 3
        assert all(0 <= a["prediction"] <= 9 for a in answers)
        assert all(len(a["scores"]) == 10 for a in answers)
        stats = json.loads(captured.err.strip().splitlines()[-1])
        assert stats["answered"] == 3
        assert stats["dropped"] == 0
