"""Tests for the digit glyph prototypes."""

from __future__ import annotations

import numpy as np

from repro.data.glyphs import GLYPH_COLS, GLYPH_ROWS, GLYPHS, glyph_bitmaps


class TestGlyphs:
    def test_all_ten_digits_present(self):
        assert set(GLYPHS.keys()) == set(range(10))

    def test_every_digit_has_multiple_variants(self):
        bitmaps = glyph_bitmaps()
        for digit, variants in bitmaps.items():
            assert len(variants) >= 2, f"digit {digit}"

    def test_shapes(self):
        for variants in glyph_bitmaps().values():
            for bitmap in variants:
                assert bitmap.shape == (GLYPH_ROWS, GLYPH_COLS)

    def test_binary_values(self):
        for variants in glyph_bitmaps().values():
            for bitmap in variants:
                assert set(np.unique(bitmap)) <= {0.0, 1.0}

    def test_reasonable_ink_coverage(self):
        for digit, variants in glyph_bitmaps().items():
            for bitmap in variants:
                coverage = bitmap.mean()
                assert 0.05 < coverage < 0.6, f"digit {digit}"

    def test_prototypes_pairwise_distinct(self):
        bitmaps = glyph_bitmaps()
        flat = {
            (d, i): b.ravel()
            for d, variants in bitmaps.items()
            for i, b in enumerate(variants)
        }
        keys = list(flat)
        for a in range(len(keys)):
            for b in range(a + 1, len(keys)):
                diff = np.mean(flat[keys[a]] != flat[keys[b]])
                assert diff > 0.02, f"{keys[a]} vs {keys[b]}"

    def test_different_digits_differ_substantially(self):
        bitmaps = glyph_bitmaps()
        for d1 in range(10):
            for d2 in range(d1 + 1, 10):
                diff = np.mean(bitmaps[d1][0] != bitmaps[d2][0])
                assert diff > 0.08, f"{d1} vs {d2}"
