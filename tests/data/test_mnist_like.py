"""Tests for the synthetic digit renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.mnist_like import IMAGE_SIZE, DigitRenderer, RenderParams


class TestRenderer:
    def test_image_shape_and_range(self):
        renderer = DigitRenderer(rng=np.random.default_rng(0))
        img = renderer.render(5)
        assert img.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_images_have_ink(self):
        renderer = DigitRenderer(rng=np.random.default_rng(1))
        for digit in range(10):
            assert renderer.render(digit).sum() > 5.0

    def test_invalid_digit_rejected(self):
        renderer = DigitRenderer(rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="digit"):
            renderer.render(10)

    def test_deterministic_given_seed(self):
        a = DigitRenderer(rng=np.random.default_rng(7)).render(3)
        b = DigitRenderer(rng=np.random.default_rng(7)).render(3)
        assert np.array_equal(a, b)

    def test_variation_between_samples(self):
        renderer = DigitRenderer(rng=np.random.default_rng(2))
        a = renderer.render(3)
        b = renderer.render(3)
        assert not np.array_equal(a, b)

    def test_batch_flattened(self):
        renderer = DigitRenderer(rng=np.random.default_rng(3))
        batch = renderer.render_batch(np.array([0, 1, 2]))
        assert batch.shape == (3, IMAGE_SIZE * IMAGE_SIZE)

    def test_batch_unflattened(self):
        renderer = DigitRenderer(rng=np.random.default_rng(3))
        batch = renderer.render_batch(np.array([0, 1]), flatten=False)
        assert batch.shape == (2, IMAGE_SIZE, IMAGE_SIZE)

    def test_no_noise_params_give_clean_images(self):
        params = RenderParams(noise_std=0.0, occlusion_prob=0.0,
                              blur_sigma=0.0)
        renderer = DigitRenderer(params, np.random.default_rng(4))
        img = renderer.render(1)
        # Without blur/noise the background stays exactly zero.
        assert np.sum(img == 0.0) > img.size / 2

    def test_same_digit_correlates_more_than_different(self):
        renderer = DigitRenderer(rng=np.random.default_rng(5))
        same = [renderer.render(0).ravel() for _ in range(6)]
        other = [renderer.render(1).ravel() for _ in range(6)]
        within = np.mean(
            [np.corrcoef(same[i], same[j])[0, 1]
             for i in range(6) for j in range(i + 1, 6)]
        )
        across = np.mean(
            [np.corrcoef(s, o)[0, 1] for s in same for o in other]
        )
        assert within > across
