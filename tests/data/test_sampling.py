"""Tests for image under-sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sampling import undersample, undersample_flat, valid_sizes


class TestUndersample:
    def test_block_average_exact(self):
        img = np.array([[1.0, 1.0, 0.0, 0.0],
                        [1.0, 1.0, 0.0, 0.0],
                        [0.0, 0.0, 2.0, 2.0],
                        [0.0, 0.0, 2.0, 2.0]])
        out = undersample(img, 2)
        assert np.array_equal(out, [[1.0, 0.0], [0.0, 2.0]])

    def test_batch_shape(self, rng):
        imgs = rng.random((5, 28, 28))
        assert undersample(imgs, 14).shape == (5, 14, 14)

    def test_identity_when_target_equals_size(self, rng):
        imgs = rng.random((2, 8, 8))
        assert np.allclose(undersample(imgs, 8), imgs)

    def test_indivisible_target_rejected(self, rng):
        with pytest.raises(ValueError, match="divide"):
            undersample(rng.random((2, 28, 28)), 13)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            undersample(rng.random((2, 28, 14)), 7)

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_mean_preserved(self, factor):
        rng = np.random.default_rng(0)
        size = 4 * factor
        imgs = rng.random((3, size, size))
        out = undersample(imgs, 4)
        assert np.mean(out) == pytest.approx(np.mean(imgs), rel=1e-9)


class TestUndersampleFlat:
    def test_matches_2d_path(self, rng):
        imgs = rng.random((4, 28, 28))
        flat = imgs.reshape(4, -1)
        out = undersample_flat(flat, 28, 7)
        expected = undersample(imgs, 7).reshape(4, -1)
        assert np.allclose(out, expected)

    def test_single_vector(self, rng):
        img = rng.random(28 * 28)
        out = undersample_flat(img, 28, 14)
        assert out.shape == (196,)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError, match="width"):
            undersample_flat(rng.random((2, 100)), 28, 14)


class TestValidSizes:
    def test_default(self):
        assert valid_sizes() == (28, 14, 7)
