"""Tests for benchmark dataset assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import make_dataset


class TestMakeDataset:
    def test_shapes(self, tiny_dataset):
        ds = tiny_dataset
        assert ds.x_train.shape == (300, 49)
        assert ds.x_test.shape == (150, 49)
        assert ds.y_train.shape == (300,)
        assert ds.image_size == 7

    def test_feature_range(self, tiny_dataset):
        assert tiny_dataset.x_train.min() >= 0.0
        assert tiny_dataset.x_train.max() <= 1.0

    def test_labels_balanced(self):
        ds = make_dataset(n_train=100, n_test=50, seed=3)
        counts = np.bincount(ds.y_train, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_deterministic_by_seed(self):
        a = make_dataset(n_train=30, n_test=10, seed=5)
        b = make_dataset(n_train=30, n_test=10, seed=5)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_dataset(n_train=30, n_test=10, seed=5)
        b = make_dataset(n_train=30, n_test=10, seed=6)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_bias_feature(self):
        ds = make_dataset(n_train=20, n_test=10, seed=1, with_bias=True)
        assert ds.x_train.shape[1] == 28 * 28 + 1
        assert np.all(ds.x_train[:, -1] == 1.0)

    def test_no_bias_matches_crossbar_rows(self):
        ds = make_dataset(n_train=20, n_test=10, seed=1)
        assert ds.x_train.shape[1] == 784

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_dataset(n_train=0, n_test=10)


class TestUndersampled:
    def test_feature_count(self):
        ds = make_dataset(n_train=20, n_test=10, seed=2)
        small = ds.undersampled(14)
        assert small.x_train.shape == (20, 196)
        assert small.image_size == 14

    def test_labels_preserved(self):
        ds = make_dataset(n_train=20, n_test=10, seed=2)
        small = ds.undersampled(7)
        assert np.array_equal(small.y_train, ds.y_train)

    def test_bias_preserved(self):
        ds = make_dataset(n_train=20, n_test=10, seed=2, with_bias=True)
        small = ds.undersampled(14)
        assert small.x_train.shape[1] == 197
        assert np.all(small.x_train[:, -1] == 1.0)

    def test_undersampling_keeps_classes_separable_enough(self, tiny_dataset):
        # Even at 7x7, nearest-centroid should beat chance by far.
        ds = tiny_dataset
        centroids = np.stack(
            [ds.x_train[ds.y_train == c].mean(axis=0) for c in range(10)]
        )
        d = ((ds.x_test[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = np.mean(np.argmin(d, axis=1) == ds.y_test)
        assert acc > 0.5
