"""Registry, resolution and RNG-bridge contracts of repro.backend."""

import pickle

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    get_namespace,
    resolve_backend,
    to_numpy,
)
from repro.backend.core import NumpyBackend


class TestRegistry:
    def test_numpy_is_always_available_and_first(self):
        assert available_backends()[0] == "numpy"

    def test_get_namespace_is_a_singleton_per_name(self):
        assert get_namespace("numpy") is get_namespace("numpy")

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_namespace("cupy")

    def test_torch_gated_not_silently_broken(self):
        # Whichever way the container is built, "torch" must either
        # construct or fail with the dedicated gating error -- never
        # with a raw ImportError.
        try:
            bk = get_namespace("torch")
        except BackendUnavailableError:
            assert "torch" not in available_backends()
        else:
            assert bk.name == "torch"
            assert not bk.is_reference
            assert "torch" in available_backends()

    def test_numpy_backend_is_the_reference(self):
        bk = get_namespace("numpy")
        assert bk.is_reference
        assert isinstance(bk, NumpyBackend)


class TestResolve:
    def test_none_resolves_to_numpy(self):
        assert resolve_backend(None) is get_namespace("numpy")

    def test_string_resolves_through_registry(self):
        assert resolve_backend("numpy") is get_namespace("numpy")

    def test_instance_passes_through(self):
        bk = get_namespace("numpy")
        assert resolve_backend(bk) is bk

    def test_other_types_raise(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestPickling:
    def test_backend_round_trips_to_the_singleton(self):
        # Backends ride into process-pool workers; pickling goes by
        # name so the worker reuses its own singleton.
        bk = get_namespace("numpy")
        assert pickle.loads(pickle.dumps(bk)) is bk


class TestConversion:
    def test_asarray_defaults_to_float(self):
        out = get_namespace("numpy").asarray([1, 2, 3])
        assert out.dtype == np.float64

    def test_asarray_dtype_none_preserves_integers(self):
        out = get_namespace("numpy").asarray(
            np.array([1, 2], dtype=np.int64), dtype=None
        )
        assert out.dtype == np.int64

    def test_to_numpy_module_function_handles_plain_data(self):
        assert to_numpy([1.0, 2.0]).tolist() == [1.0, 2.0]
        arr = np.arange(3)
        assert to_numpy(arr) is arr

    def test_take_range_matches_slicing(self):
        bk = get_namespace("numpy")
        x = np.arange(24.0).reshape(4, 6)
        np.testing.assert_array_equal(
            bk.take_range(x, 1, 4, axis=-1), x[:, 1:4]
        )
        np.testing.assert_array_equal(
            bk.take_range(x, 0, 2, axis=0), x[:2]
        )


class TestRngBridge:
    """Draws always come from the numpy Generator stream."""

    def test_standard_normal_matches_numpy_stream(self):
        bk = get_namespace("numpy")
        got = bk.standard_normal(np.random.default_rng(3), (4, 2))
        want = np.random.default_rng(3).standard_normal((4, 2))
        np.testing.assert_array_equal(to_numpy(got), want)

    def test_uniform_matches_numpy_stream(self):
        bk = get_namespace("numpy")
        got = bk.uniform(np.random.default_rng(5), -1.0, 2.0, (3,))
        want = np.random.default_rng(5).uniform(-1.0, 2.0, size=(3,))
        np.testing.assert_array_equal(to_numpy(got), want)

    def test_lognormal_is_exp_of_numpy_normal(self):
        bk = get_namespace("numpy")
        got = bk.lognormal(np.random.default_rng(7), 0.4, (5,))
        want = np.exp(np.random.default_rng(7).normal(0.0, 0.4, size=(5,)))
        np.testing.assert_array_equal(to_numpy(got), want)


class TestReferenceOpsAreNumpy:
    """The reference path is function-identical to plain numpy."""

    def test_ops_delegate_to_the_exact_numpy_functions(self):
        bk = get_namespace("numpy")
        x = np.random.default_rng(0).random((3, 4))
        g = np.random.default_rng(1).random((4, 5))
        np.testing.assert_array_equal(
            bk.einsum("sr,rc->sc", x, g), np.einsum("sr,rc->sc", x, g)
        )
        np.testing.assert_array_equal(
            bk.quantile(np.abs(x), 0.999, axis=(0, 1)),
            np.quantile(np.abs(x), 0.999, axis=(0, 1)),
        )
        np.testing.assert_array_equal(
            bk.clip(x, 0.2, 0.8), np.clip(x, 0.2, 0.8)
        )
        np.testing.assert_array_equal(bk.round(x * 10), np.round(x * 10))

    def test_custom_backend_subclass_registers(self):
        class Fake(ArrayBackend):
            name = "fake-units"

            def asarray(self, x, dtype=float):
                return np.asarray(x, dtype=dtype)

            def to_numpy(self, x):
                return np.asarray(x)

        fake = Fake()
        assert not fake.is_reference
        assert resolve_backend(fake) is fake
