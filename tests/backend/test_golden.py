"""Numpy-path bit-identity against captured pre-refactor outputs.

``golden_pre_refactor.npz`` was written by
``scripts/make_backend_golden.py`` *before* the kernels were ported to
the backend namespace.  Re-running the same capture on today's code
must reproduce every array byte-for-byte: the numpy reference path is
a refactor, not a numerics change.  If a future PR intentionally moves
reference numerics, it must regenerate the goldens and say so.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "golden_pre_refactor.npz"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "make_backend_golden",
        REPO_ROOT / "scripts" / "make_backend_golden.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def fresh():
    return _load_capture_module().capture()


@pytest.fixture(scope="module")
def golden():
    with np.load(GOLDEN) as data:
        return {name: data[name] for name in data.files}


def test_golden_file_has_the_full_capture_set(golden):
    assert set(golden) == {
        "pair_x", "pair_matvec_ideal", "pair_matvec_reference",
        "pair_read_pos_ideal", "tiled_x", "tiled_matvec",
        "rates_labels", "rates", "stacked_thetas", "mc_batched",
        "serve_x", "serve_scores",
    }


def test_numpy_path_is_bit_identical_to_pre_refactor(golden, fresh):
    assert set(fresh) == set(golden)
    mismatched = [
        name for name in sorted(golden)
        if not np.array_equal(golden[name], fresh[name])
    ]
    assert mismatched == [], (
        "numpy reference path drifted from pre-refactor capture: "
        f"{mismatched}; if intentional, regenerate with "
        "scripts/make_backend_golden.py and document the change"
    )
