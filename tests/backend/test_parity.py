"""Backend parity: every ported kernel agrees across namespaces.

The numpy path is the bit-identical reference (pinned separately in
``test_golden.py``); alternate backends are held to the documented
parity contract of ``docs/backends.md``: linear read paths agree to
floating-point accumulation noise, ADC-quantised paths agree up to
code-boundary flips.  All cases run under numpy too (where they must
be exact), and skip cleanly for backends the container lacks.
"""

import functools

import numpy as np
import pytest

from repro.analysis.lognormal import (
    stacked_cycle_multipliers,
    stacked_standard_thetas,
)
from repro.backend import (
    ArrayBackend,
    available_backends,
    get_namespace,
    register_backend,
    to_numpy,
)
from repro.backend.core import _INSTANCES, _REGISTRY
from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import (
    HardwareSpec,
    batched_hardware_test_rates,
    build_pair,
)
from repro.experiments.fig2_column import (
    ColumnTrialConfig,
    _column_trial_batch,
)
from repro.runtime import RuntimeConfig, use_runtime
from repro.runtime.executor import map_trials_batched, trial_rng
from repro.xbar.mapping import WeightScaler
from repro.xbar.tiling import TiledPair

BACKENDS = ("numpy", "torch")

# Linear paths: same float64 math, different BLAS accumulation order.
LINEAR_RTOL = 1e-7
LINEAR_ATOL = 1e-12


@pytest.fixture(params=BACKENDS)
def bk(request):
    if request.param not in available_backends():
        pytest.skip(f"backend {request.param!r} unavailable here")
    return get_namespace(request.param)


def _programmed_pair():
    spec = HardwareSpec(
        variation=VariationConfig(sigma=0.4),
        crossbar=CrossbarConfig(rows=24, cols=6, r_wire=0.0),
        ir_mode="ideal",
    )
    scaler = WeightScaler(1.0, spec.device)
    pair = build_pair(spec, scaler, np.random.default_rng(11))
    rng = np.random.default_rng(20260808)
    pair.program_weights(rng.normal(0.0, 0.4, size=(24, 6)))
    x = rng.random((9, 24))
    pair.calibrate_sense(x)
    return spec, scaler, pair, x


class TestForwardReads:
    def test_pair_matvec_ideal(self, bk):
        _, _, pair, x = _programmed_pair()
        want = pair.matvec(x, "ideal")
        got = to_numpy(pair.matvec(x, "ideal", backend=bk))
        if bk.is_reference:
            np.testing.assert_array_equal(got, want)
        else:
            np.testing.assert_allclose(
                got, want, rtol=LINEAR_RTOL, atol=LINEAR_ATOL
            )

    def test_pair_matvec_reference_mode(self, bk):
        _, _, pair, x = _programmed_pair()
        pair.set_reference_input(x.mean(axis=0))
        want = pair.matvec(x, "reference")
        got = to_numpy(pair.matvec(x, "reference", backend=bk))
        if bk.is_reference:
            np.testing.assert_array_equal(got, want)
        else:
            np.testing.assert_allclose(
                got, want, rtol=LINEAR_RTOL, atol=LINEAR_ATOL
            )

    def test_tiled_partial_reductions(self, bk):
        scaler = WeightScaler(1.0)
        tiled = TiledPair(
            scaler, n_rows=30, cols=5, tile_rows=8,
            variation=VariationConfig(sigma=0.3),
            rng=np.random.default_rng(5),
        )
        rng = np.random.default_rng(17)
        tiled.program_weights(rng.normal(0.0, 0.3, size=(30, 5)))
        x = rng.random((7, 30))
        want_partials = tiled.partial_matvec(x, "ideal")
        got_partials = tiled.partial_matvec(x, "ideal", backend=bk)
        assert len(got_partials) == len(want_partials)
        for got, want in zip(got_partials, want_partials):
            if bk.is_reference:
                np.testing.assert_array_equal(to_numpy(got), want)
            else:
                np.testing.assert_allclose(
                    to_numpy(got), want,
                    rtol=LINEAR_RTOL, atol=LINEAR_ATOL,
                )
        np.testing.assert_allclose(
            to_numpy(tiled.matvec(x, "ideal", backend=bk)),
            tiled.matvec(x, "ideal"),
            rtol=LINEAR_RTOL, atol=LINEAR_ATOL,
        )


class TestStackedDraws:
    """Draws come from numpy under every backend: exact equality."""

    def test_stacked_standard_thetas(self, bk):
        rngs = [trial_rng(777, i) for i in range(4)]
        want = stacked_standard_thetas(rngs, "lognormal", (6, 3))
        rngs = [trial_rng(777, i) for i in range(4)]
        got = stacked_standard_thetas(rngs, "lognormal", (6, 3), xp=bk)
        np.testing.assert_array_equal(to_numpy(got), want)

    def test_stacked_cycle_multipliers(self, bk):
        rngs = [trial_rng(13, i) for i in range(3)]
        want = stacked_cycle_multipliers(rngs, 0.2, (5, 2))
        rngs = [trial_rng(13, i) for i in range(3)]
        got = stacked_cycle_multipliers(rngs, 0.2, (5, 2), xp=bk)
        if bk.is_reference:
            np.testing.assert_array_equal(to_numpy(got), want)
        else:
            # exp() runs on the backend.
            np.testing.assert_allclose(
                to_numpy(got), want, rtol=LINEAR_RTOL, atol=0.0
            )

    def test_sigma_zero_shortcuts(self, bk):
        rngs = [trial_rng(1, i) for i in range(2)]
        ones = stacked_cycle_multipliers(rngs, 0.0, (3,), xp=bk)
        np.testing.assert_array_equal(to_numpy(ones), np.ones((2, 3)))


class TestBatchedRates:
    def test_rates_agree_up_to_adc_code_flips(self, bk):
        spec, scaler, _, _ = _programmed_pair()
        rng = np.random.default_rng(42)
        T, S = 6, 64
        g_lo, g_hi = spec.device.g_off, spec.device.g_on
        g_pos = rng.uniform(g_lo, g_hi, size=(T, 24, 6))
        g_neg = rng.uniform(g_lo, g_hi, size=(T, 24, 6))
        x = rng.random((S, 24))
        labels = rng.integers(0, 6, size=S)
        want = batched_hardware_test_rates(
            g_pos, g_neg, x, labels, spec, scaler, trial_block=4
        )
        got = batched_hardware_test_rates(
            g_pos, g_neg, x, labels, spec, scaler, trial_block=4,
            backend=bk,
        )
        assert isinstance(got, np.ndarray)
        if bk.is_reference:
            np.testing.assert_array_equal(got, want)
        else:
            # The read chain quantises through an ADC, so a sample
            # sitting exactly on a code boundary may flip its argmax
            # under a different accumulation order.  Allow at most two
            # flipped predictions per trial out of S samples.
            assert np.max(np.abs(got - want)) <= 2.0 / S + 1e-12


class TestMonteCarloKernel:
    def test_column_trial_batch_parity(self, bk):
        cfg = ColumnTrialConfig(
            sigma=0.5, n_devices=40, target_current=1e-3, v_read=1.0,
            adc_bits=6, cld_iterations=30,
        )
        kernel = functools.partial(_column_trial_batch, cfg=cfg)
        want = map_trials_batched(kernel, trials=12, seed=99, jobs=1)
        got = map_trials_batched(
            kernel, trials=12, seed=99, jobs=1, backend=bk
        )
        if bk.is_reference:
            np.testing.assert_array_equal(got, want)
            return
        # OLD column: one open-loop shot, no feedback -- accumulation
        # noise only.
        np.testing.assert_allclose(
            got[:, 0], want[:, 0], rtol=1e-6, atol=1e-12
        )
        # CLD column: the ADC-quantised feedback loop can exit an
        # iteration earlier/later when a sensed current lands on a
        # code boundary, shifting the final error by a few LSBs.
        np.testing.assert_allclose(got[:, 1], want[:, 1], atol=0.15)


def _plain_batch(rngs):
    return np.zeros((len(rngs), 1))


def _aware_batch(rngs, backend=None):
    flag = 0.0
    if backend is not None and not backend.is_reference:
        flag = 1.0
    return np.full((len(rngs), 1), flag)


class _InertBackend(ArrayBackend):
    """Registerable non-reference backend with no array library."""

    name = "inert-test"

    def asarray(self, x, dtype=float):
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x):
        return np.asarray(x)


class TestKernelOptIn:
    """Unported kernels stay safe under a non-reference backend."""

    @pytest.fixture()
    def inert(self):
        register_backend("inert-test", _InertBackend)
        try:
            yield get_namespace("inert-test")
        finally:
            _REGISTRY.pop("inert-test", None)
            _INSTANCES.pop("inert-test", None)

    def test_explicit_backend_on_unported_kernel_raises(self, inert):
        with pytest.raises(TypeError, match="backend"):
            map_trials_batched(
                _plain_batch, trials=2, seed=0, jobs=1, backend=inert
            )

    def test_ambient_backend_falls_back_to_reference(self, inert):
        with use_runtime(RuntimeConfig(backend="inert-test")):
            out = map_trials_batched(_plain_batch, trials=2, seed=0,
                                     jobs=1)
        np.testing.assert_array_equal(out, np.zeros((2, 1)))

    def test_ambient_backend_reaches_opted_in_kernels(self, inert):
        with use_runtime(RuntimeConfig(backend="inert-test")):
            out = map_trials_batched(_aware_batch, trials=2, seed=0,
                                     jobs=1)
        np.testing.assert_array_equal(out, np.ones((2, 1)))
