"""Tests for the global configuration dataclasses."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CrossbarConfig,
    DeviceConfig,
    SensingConfig,
    VariationConfig,
)


class TestDeviceConfig:
    def test_paper_nominals(self):
        d = DeviceConfig()
        assert d.r_on == pytest.approx(10e3)
        assert d.r_off == pytest.approx(1e6)

    def test_derived_conductances(self):
        d = DeviceConfig()
        assert d.g_on == pytest.approx(1e-4)
        assert d.g_off == pytest.approx(1e-6)
        assert d.g_range == pytest.approx(9.9e-5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DeviceConfig().r_on = 1.0

    def test_half_select_ratio(self):
        assert DeviceConfig().v_half_ratio == 0.5


class TestCrossbarConfig:
    def test_paper_defaults(self):
        c = CrossbarConfig()
        assert c.rows == 784
        assert c.cols == 10
        assert c.r_wire == pytest.approx(2.5)
        assert c.v_read == pytest.approx(1.0)


class TestVariationConfig:
    def test_paper_default_sigma(self):
        assert VariationConfig().sigma == pytest.approx(0.6)

    def test_default_distribution_is_papers(self):
        assert VariationConfig().distribution == "lognormal"

    def test_no_defects_by_default(self):
        assert VariationConfig().defect_rate == 0.0


class TestSensingConfig:
    def test_paper_adc_resolution(self):
        assert SensingConfig().adc_bits == 6

    def test_replace_produces_new_instance(self):
        base = SensingConfig()
        changed = dataclasses.replace(base, adc_bits=8)
        assert base.adc_bits == 6
        assert changed.adc_bits == 8
