"""Scatter-gather routing: exactness, load balance, failure retry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NODAL_SOLVERS
from repro.fleet import (
    FleetConfig,
    FleetService,
    NoLiveReplicaError,
    program_fleet,
)

N_ROWS = 20
COLS = 4


def make_service(tile_rows, replicas=2, ir_mode="ideal", r_wire=0.0,
                 **kwargs):
    config = FleetConfig(
        n_rows=N_ROWS, cols=COLS, tile_rows=tile_rows, sigma=0.2,
        r_wire=r_wire, seed=7, ir_mode=ir_mode, n_probes=4,
    )
    w = np.random.default_rng(1).uniform(-1, 1, (N_ROWS, COLS))
    fleet = program_fleet(config, w)
    return fleet, FleetService(fleet, replicas=replicas, **kwargs)


class TestExactness:
    @pytest.mark.parametrize("tile_rows", [20, 10, 4])
    def test_bit_identical_across_shard_counts(self, tile_rows):
        # tile_rows 20/10/4 -> 1/2/5 shards: the gathered, digitally
        # reduced result must equal the single TiledPair read exactly
        # at every shard count (fixed left-to-right accumulation).
        fleet, service = make_service(tile_rows)
        assert fleet.n_shards == -(-N_ROWS // tile_rows)
        x = np.random.default_rng(2).random((9, N_ROWS))
        reference = fleet.build_tiled().matvec(x)
        try:
            assert np.array_equal(service.forward(x), reference)
        finally:
            service.close()

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_bit_identical_across_replica_counts(self, replicas):
        fleet, service = make_service(10, replicas=replicas)
        x = np.random.default_rng(3).random((6, N_ROWS))
        reference = fleet.build_tiled().matvec(x)
        try:
            assert np.array_equal(service.forward(x), reference)
        finally:
            service.close()

    def test_bit_identical_under_nodal_ir(self):
        # The hard case: per-tile sparse nodal solves, multi-RHS
        # batches of router-dependent composition.
        fleet, service = make_service(10, ir_mode="nodal", r_wire=2.0)
        x = np.random.default_rng(4).random((8, N_ROWS))
        reference = fleet.build_tiled().matvec(x, "nodal")
        try:
            assert np.array_equal(service.forward(x), reference)
            assert np.array_equal(service.predict(x[0]), reference[0])
        finally:
            service.close()

    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_nodal_solver_knob_serves_every_solver(self, solver):
        # Serving in ir_mode="nodal" must work unchanged under every
        # nodal_solver=.  lu is the oracle (exact); schur/cg answer
        # within their documented bounds, far inside the ADC step.
        fleet, service = make_service(
            10, ir_mode="nodal", r_wire=2.0, nodal_solver=solver
        )
        x = np.random.default_rng(5).random((6, N_ROWS))
        reference = fleet.build_tiled().matvec(x, "nodal")
        try:
            out = service.forward(x)
            if solver == "lu":
                assert np.array_equal(out, reference)
            else:
                np.testing.assert_allclose(
                    out, reference, rtol=1e-6, atol=1e-8
                )
        finally:
            service.close()

    def test_input_width_validated(self):
        _, service = make_service(10)
        try:
            with pytest.raises(ValueError, match="width"):
                service.predict(np.ones(N_ROWS + 1))
        finally:
            service.close()


class TestRouting:
    def test_ties_break_to_lowest_replica_index(self):
        _, service = make_service(10)
        try:
            for group in service.groups:
                assert group.pick().replica_index == 0
        finally:
            service.close()

    def test_draining_replicas_are_skipped(self):
        _, service = make_service(10)
        try:
            group = service.groups[0]
            group.replicas[0].draining = True
            assert group.pick().replica_index == 1
            assert len(group.live_replicas) == 1
        finally:
            service.close()

    def test_exclusion_exhaustion_raises(self):
        _, service = make_service(10, replicas=1)
        try:
            group = service.groups[0]
            with pytest.raises(NoLiveReplicaError):
                group.pick(exclude=frozenset({"shard0/r0"}))
        finally:
            service.close()


class TestFailureRetry:
    def test_killing_one_replica_drops_zero_queries(self):
        fleet, service = make_service(10, replicas=2)
        x = np.random.default_rng(5).random((16, N_ROWS))
        reference = fleet.build_tiled().matvec(x)
        try:
            futures = [service.submit(row) for row in x]
            service.kill_replica(0, 0)
            gathered = np.stack([f.result(timeout=30.0) for f in futures])
            assert np.array_equal(gathered, reference)
            # Later traffic also survives on the sibling alone.
            assert np.array_equal(service.forward(x), reference)
            assert service.stats()["dropped"] == 0
        finally:
            service.close()
        kills = [
            e for e in service.log.fleet_events if e.action == "kill"
        ]
        assert len(kills) == 1
        assert (kills[0].shard, kills[0].replica) == (0, 0)

    def test_unreplicated_shard_death_fails_queries_loudly(self):
        _, service = make_service(10, replicas=1)
        try:
            service.kill_replica(1, 0)
            with pytest.raises(NoLiveReplicaError):
                service.predict(np.ones(N_ROWS), timeout=30.0)
        finally:
            service.close()

    def test_killed_replica_rejects_new_work(self):
        _, service = make_service(10, replicas=2)
        try:
            replica = service.groups[0].replicas[0]
            replica.kill()
            assert not replica.live
            from repro.fleet import ReplicaDeadError

            with pytest.raises(ReplicaDeadError):
                replica.submit(np.ones(10))
        finally:
            service.close()
