"""Rolling drift recovery: drain, reprogram, quorum, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.retention import RetentionConfig, age_pair
from repro.fleet import (
    FleetConfig,
    FleetService,
    RollingReprogrammer,
    program_fleet,
)
from repro.serve.health import DriftPolicy

N_ROWS = 24
COLS = 4


def make_service(replicas=2, **kwargs):
    config = FleetConfig(
        n_rows=N_ROWS, cols=COLS, tile_rows=8, sigma=0.2, seed=5,
        n_probes=4,
    )
    w = np.random.default_rng(2).uniform(-1, 1, (N_ROWS, COLS))
    fleet = program_fleet(config, w)
    kwargs.setdefault("policy", DriftPolicy(threshold=0.05))
    return fleet, FleetService(fleet, replicas=replicas, **kwargs)


def drift_replica(replica) -> None:
    """Heavy retention aging of one replica's restored pair."""
    age_pair(
        replica.engine.target, 3e5,
        RetentionConfig(nu_median=0.05, nu_sigma=0.5),
        np.random.default_rng(11),
    )


class TestRollingReprogram:
    def test_drifted_replica_recovers_while_sibling_serves(self):
        fleet, service = make_service()
        x = np.random.default_rng(6).random((8, N_ROWS))
        reference = fleet.build_tiled().matvec(x)
        try:
            victim = service.groups[1].replicas[0]
            drift_replica(victim)
            assert victim.monitor.discrepancy() > 0.05
            # Queries in flight across the recovery are all answered
            # (the sibling covers the drained replica); answers routed
            # through the drifted hardware are off until recovery --
            # that is what drift *is* -- but nothing is dropped, and
            # post-recovery traffic is exact again.
            before = [service.submit(row) for row in x]
            events = service.run_recovery_cycle()
            after = service.forward(x)
            assert all(
                f.result(timeout=30.0).shape == (COLS,) for f in before
            )
            assert np.array_equal(after, reference)
            assert [e.action for e in events] == ["reprogram"]
            event = events[0]
            assert (event.shard, event.replica) == (1, 0)
            assert event.discrepancy > 0.05
            assert event.recovered_discrepancy == 0.0
            assert event.seconds > 0.0
            # The recovered replica is back in rotation.
            assert victim.live
            assert victim.monitor.discrepancy() == 0.0
            assert service.stats()["dropped"] == 0
        finally:
            service.close()

    def test_healthy_fleet_has_nothing_to_recover(self):
        _, service = make_service()
        try:
            assert service.run_recovery_cycle() == []
            assert service.log.fleet_events == []
        finally:
            service.close()

    def test_recovery_defers_below_quorum(self):
        _, service = make_service(replicas=1)
        try:
            victim = service.groups[0].replicas[0]
            drift_replica(victim)
            events = service.run_recovery_cycle()
            assert [e.action for e in events] == ["defer"]
            assert events[0].discrepancy > 0.05
            # Deferred means untouched: still drifted, still serving.
            assert victim.live
            assert victim.monitor.discrepancy() > 0.05
        finally:
            service.close()

    def test_dead_sibling_blocks_recovery(self):
        _, service = make_service(replicas=2)
        try:
            service.kill_replica(2, 1)
            drift_replica(service.groups[2].replicas[0])
            events = service.run_recovery_cycle()
            assert [e.action for e in events] == ["defer"]
        finally:
            service.close()

    def test_custom_reprogram_fn_is_used(self):
        _, service = make_service()
        seen = []
        reprogrammer = RollingReprogrammer(
            service.groups,
            policy=DriftPolicy(threshold=0.05),
            reprogram_fn=seen.append,
            log=service.log,
        )
        try:
            victim = service.groups[0].replicas[1]
            drift_replica(victim)
            reprogrammer.run_cycle()
            assert seen == [victim]
        finally:
            service.close()

    def test_min_live_validated(self):
        _, service = make_service()
        try:
            with pytest.raises(ValueError, match="min_live"):
                RollingReprogrammer(service.groups, min_live=0)
        finally:
            service.close()


class TestFleetTelemetry:
    def test_summary_counts_fleet_events(self):
        _, service = make_service()
        try:
            drift_replica(service.groups[0].replicas[0])
            service.run_recovery_cycle()
            service.predict(np.ones(N_ROWS), timeout=30.0)
            summary = service.stats()
            assert summary["fleet_events"] == 1
            assert summary["reprograms"] == 1
            assert any(
                label.startswith("shard") for label in summary["lanes"]
            )
        finally:
            service.close()

    def test_fleet_events_serialise_to_json(self):
        import json

        _, service = make_service()
        try:
            drift_replica(service.groups[0].replicas[0])
            service.run_recovery_cycle()
        finally:
            service.close()
        doc = json.loads(service.log.to_json())
        events = doc["fleet_events"]
        assert len(events) == 1
        assert events[0]["action"] == "reprogram"
