"""Shard planning: programming, snapshots, persistence, reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FleetConfig,
    ProgrammedFleet,
    fleet_key,
    program_fleet,
)
from repro.runtime.cache import ArtifactCache
from repro.xbar.tiling import TiledPair


def make_fleet(n_rows=30, cols=5, tile_rows=12, **kwargs):
    config = FleetConfig(
        n_rows=n_rows, cols=cols, tile_rows=tile_rows,
        sigma=kwargs.pop("sigma", 0.2), seed=kwargs.pop("seed", 3),
        n_probes=kwargs.pop("n_probes", 6), **kwargs,
    )
    w = np.random.default_rng(0).uniform(
        -1, 1, (config.n_rows, config.cols)
    )
    return config, w, program_fleet(config, w)


class TestFleetConfig:
    def test_ranges_follow_split_rows(self):
        config = FleetConfig(n_rows=30, tile_rows=12)
        assert config.ranges == [(0, 12), (12, 24), (24, 30)]
        assert config.n_shards == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="n_rows"):
            FleetConfig(n_rows=0)
        with pytest.raises(ValueError, match="tile_rows"):
            FleetConfig(n_rows=10, tile_rows=0)
        with pytest.raises(ValueError, match="cols"):
            FleetConfig(n_rows=10, cols=0)
        with pytest.raises(ValueError, match="n_probes"):
            FleetConfig(n_rows=10, n_probes=0)
        with pytest.raises(ValueError, match="ir_mode"):
            FleetConfig(n_rows=10, ir_mode="magic")


class TestProgramFleet:
    def test_shard_shapes_cover_the_layer(self):
        config, _, fleet = make_fleet()
        assert fleet.n_shards == 3
        for shard, (start, stop) in zip(fleet.shards, config.ranges):
            assert shard.g_pos.shape == (stop - start, config.cols)
            assert shard.probes.shape == (config.n_probes, stop - start)
            assert shard.metadata["row_start"] == start
            assert shard.metadata["row_stop"] == stop

    def test_one_global_weight_normalisation(self):
        _, w, fleet = make_fleet()
        stacked = np.concatenate(
            [shard.weights for shard in fleet.shards], axis=0
        )
        assert np.allclose(stacked, w * (1.0 / np.abs(w).max()))

    def test_shard_baselines_are_tile_partials(self):
        # The fleet baseline is the left-to-right reduction of the
        # per-shard partial baselines -- and must equal a single tiled
        # read of the reassembled probes, bit for bit.
        config, _, fleet = make_fleet()
        tiled = fleet.build_tiled()
        probes = fleet.probes()
        assert np.array_equal(
            fleet.baseline(), tiled.matvec(probes, config.ir_mode)
        )
        partials = tiled.partial_matvec(probes, config.ir_mode)
        for shard, partial in zip(fleet.shards, partials):
            assert np.array_equal(shard.baseline, partial)

    def test_identical_inputs_produce_identical_fleets(self):
        _, _, first = make_fleet()
        _, _, second = make_fleet()
        for a, b in zip(first.shards, second.shards):
            assert np.array_equal(a.g_pos, b.g_pos)
            assert np.array_equal(a.theta_neg, b.theta_neg)
            assert np.array_equal(a.probes, b.probes)

    def test_weight_shape_validated(self):
        config = FleetConfig(n_rows=10, cols=4)
        with pytest.raises(ValueError, match="shape"):
            program_fleet(config, np.ones((10, 3)))

    def test_probe_shape_validated(self):
        config = FleetConfig(n_rows=10, cols=4)
        with pytest.raises(ValueError, match="probes"):
            program_fleet(
                config, np.ones((10, 4)), probes=np.ones((3, 7))
            )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        config, w, fleet = make_fleet()
        cache = ArtifactCache(tmp_path)
        key = fleet_key(config, w)
        fleet.save(cache, key)
        loaded = ProgrammedFleet.load(cache, key)
        assert loaded.config == config
        assert loaded.n_shards == fleet.n_shards
        for a, b in zip(fleet.shards, loaded.shards):
            assert np.array_equal(a.g_pos, b.g_pos)
            assert np.array_equal(a.g_neg, b.g_neg)
            assert np.array_equal(a.baseline, b.baseline)
            assert np.array_equal(a.defects_pos, b.defects_pos)

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="fleet"):
            ProgrammedFleet.load(ArtifactCache(tmp_path), "deadbeef")

    def test_key_depends_on_weights(self):
        config = FleetConfig(n_rows=10, cols=4)
        a = fleet_key(config, np.ones((10, 4)))
        b = fleet_key(config, np.zeros((10, 4)))
        assert a != b


class TestBuildTiled:
    def test_restored_tiled_reads_like_the_snapshots(self):
        # Restoring twice must give bit-identical hardware: the golden
        # reference the router equivalence tests compare against is
        # itself reproducible.
        config, _, fleet = make_fleet(sigma=0.3)
        x = np.random.default_rng(9).random((8, config.n_rows))
        first = fleet.build_tiled().matvec(x, config.ir_mode)
        second = fleet.build_tiled().matvec(x, config.ir_mode)
        assert np.array_equal(first, second)

    def test_partial_reduction_matches_matvec(self):
        config, _, fleet = make_fleet()
        tiled = fleet.build_tiled()
        x = np.random.default_rng(4).random((5, config.n_rows))
        parts = tiled.partial_matvec(x, config.ir_mode)
        assert len(parts) == fleet.n_shards
        assert np.array_equal(
            TiledPair.reduce_partials(parts),
            tiled.matvec(x, config.ir_mode),
        )
