"""Tests for the differential crossbar pair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, VariationConfig
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar


def make_pair(rows=12, cols=3, sigma=0.0, r_wire=0.0, seed=0,
              diff_sense=None):
    return DifferentialCrossbar(
        scaler=WeightScaler(1.0),
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=r_wire),
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
        diff_sense=diff_sense,
    )


class TestProgramAndRead:
    def test_matvec_matches_ideal_product(self, rng):
        pair = make_pair()
        w = rng.uniform(-1, 1, (12, 3))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random((5, 12))
        assert np.allclose(pair.matvec(x), x @ w, atol=1e-9)

    def test_effective_weights_roundtrip(self, rng):
        pair = make_pair()
        w = rng.uniform(-1, 1, (12, 3))
        pair.program_weights(w, with_cycle_noise=False)
        assert np.allclose(pair.effective_weights(), w, atol=1e-12)

    def test_variation_perturbs_effective_weights(self, rng):
        pair = make_pair(sigma=0.6, seed=4)
        w = rng.uniform(-1, 1, (12, 3))
        pair.program_weights(w, with_cycle_noise=False)
        realised = pair.effective_weights()
        assert not np.allclose(realised, w, atol=1e-3)

    def test_weight_shape_validated(self):
        pair = make_pair()
        with pytest.raises(ValueError, match="shape"):
            pair.program_weights(np.zeros((3, 3)))

    def test_theta_maps_are_independent(self):
        pair = make_pair(sigma=0.5, seed=1)
        t_pos, t_neg = pair.theta_maps()
        assert t_pos.shape == (12, 3)
        assert not np.allclose(t_pos, t_neg)

    def test_program_conductances_direct(self):
        pair = make_pair()
        g = np.full((12, 3), 3e-5)
        pair.program_conductances(g, g, with_cycle_noise=False)
        assert np.allclose(pair.positive.conductance, g)
        assert np.allclose(pair.negative.conductance, g)


class TestDifferentialSensing:
    def test_diff_adc_quantises_scores(self, rng):
        adc = ADC(4, 1e-4, bipolar=True)
        pair = make_pair(diff_sense=CurrentSense(adc=adc))
        w = rng.uniform(-1, 1, (12, 3))
        pair.program_weights(w, with_cycle_noise=False)
        out = pair.matvec(rng.random(12))
        # Outputs must be on the quantisation grid (in weight units).
        scale = pair.config.v_read * pair.scaler.device.g_range
        lsb_w = adc.lsb / scale
        steps = out / lsb_w
        assert np.allclose(steps, np.round(steps), atol=1e-6)

    def test_quantisation_error_bounded(self, rng):
        adc = ADC(8, 2e-4, bipolar=True)
        pair = make_pair(diff_sense=CurrentSense(adc=adc))
        w = rng.uniform(-0.5, 0.5, (12, 3))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random(12)
        ideal = x @ w
        out = pair.matvec(x)
        scale = pair.config.v_read * pair.scaler.device.g_range
        assert np.all(np.abs(out - ideal) <= adc.lsb / scale + 1e-9)


class TestIRDropPath:
    def test_wire_resistance_shrinks_array_currents(self, rng):
        # Each array's column currents are attenuated; the differential
        # score can move either way, so the invariant lives at the
        # single-array level.
        pair_ideal = make_pair(rows=48, r_wire=0.0, seed=2)
        pair_ir = make_pair(rows=48, r_wire=2.5, seed=2)
        w = rng.uniform(-1, 1, (48, 3))
        pair_ideal.program_weights(w, with_cycle_noise=False)
        pair_ir.program_weights(w, with_cycle_noise=False)
        x = np.ones(48)
        i_ideal = pair_ideal.positive.read(x, "fixed_point")
        i_ir = pair_ir.positive.read(x, "fixed_point")
        assert np.all(i_ir < i_ideal)

    def test_set_reference_input_propagates(self, rng):
        pair = make_pair(rows=24, r_wire=2.5)
        w = rng.uniform(-1, 1, (24, 3))
        pair.program_weights(w, with_cycle_noise=False)
        pair.set_reference_input(np.full(24, 0.3))
        out = pair.matvec(rng.random(24), "reference")
        assert out.shape == (3,)
