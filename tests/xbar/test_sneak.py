"""Tests for sneak-path estimation and pre-test read styles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DeviceConfig
from repro.xbar.sneak import (
    floating_row_read,
    grounded_row_read,
    sneak_current_estimate,
)


@pytest.fixture
def device():
    return DeviceConfig()


class TestSneakEstimate:
    def test_positive_for_conducting_background(self, device):
        g = np.full((8, 8), device.g_on)
        assert sneak_current_estimate(g, 0, 0, 1.0) > 0

    def test_grows_with_background_conductance(self, device):
        g_hrs = np.full((8, 8), device.g_off)
        g_lrs = np.full((8, 8), device.g_on)
        assert sneak_current_estimate(g_lrs, 0, 0, 1.0) > (
            sneak_current_estimate(g_hrs, 0, 0, 1.0)
        )

    def test_hrs_background_sneak_negligible_vs_selected(self, device):
        # The pre-test configuration: everything else at HRS.
        g = np.full((32, 8), device.g_off)
        g[3, 2] = device.g_on
        sneak = sneak_current_estimate(g, 3, 2, 1.0)
        selected = 1.0 * device.g_on
        assert sneak / selected < 0.1

    def test_single_row_crossbar_has_no_sneak(self, device):
        g = np.full((1, 8), device.g_on)
        assert sneak_current_estimate(g, 0, 3, 1.0) == 0.0

    def test_out_of_range_cell_rejected(self, device):
        g = np.full((4, 4), device.g_off)
        with pytest.raises(IndexError):
            sneak_current_estimate(g, 4, 0, 1.0)


class TestReadStyles:
    def test_grounded_read_recovers_cell_conductance(self, device):
        g = np.full((16, 4), device.g_off)
        g[5, 1] = 4e-5
        current = grounded_row_read(g, 5, 1, 1.0, 2.5)
        assert current == pytest.approx(4e-5, rel=0.05)

    def test_floating_read_biased_by_sneak_at_lrs_background(self, device):
        g = np.full((16, 4), device.g_on * 0.5)
        target = grounded_row_read(g, 5, 1, 1.0, 2.5)
        floating = floating_row_read(g, 5, 1, 1.0, 2.5)
        # Floating rows let parasitic current into the selected column.
        assert floating > target

    def test_grounded_read_accuracy_beats_floating_on_hrs(self, device):
        g = np.full((16, 4), device.g_off)
        g[2, 3] = 2e-5
        true_current = 2e-5
        err_grounded = abs(grounded_row_read(g, 2, 3, 1.0, 2.5)
                           - true_current)
        err_floating = abs(floating_row_read(g, 2, 3, 1.0, 2.5)
                           - true_current)
        assert err_grounded <= err_floating + 1e-12
