"""Tests for the structure-exploiting nodal solver subsystem.

The accuracy/cost contract of ``docs/ir_drop.md``: ``lu`` (generic
``splu``) is the bit-exact oracle, ``schur`` matches it to <= 1e-9
relative error on column currents, ``cg`` to <= CG_CURRENT_RTOL with a
deterministic fixed-order iteration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NODAL_SOLVERS
from repro.runtime import (
    RuntimeConfig,
    map_trials,
    map_trials_batched,
    use_runtime,
)
from repro.xbar.ir_drop import program_factors
from repro.xbar.nodal import CrossbarNetwork
from repro.xbar.solvers import (
    CG_CURRENT_RTOL,
    SCHUR_RTOL,
    SchurFactor,
    cg_nodal_solve,
    fit_decomposed_correction,
    nodal_operator_apply,
    nodal_read_trial_stack,
    validate_solver,
)

# Deliberately awkward geometries: tall-thin, wide-short, single row,
# single column, square, and the paper's 100x10 shape.
GEOMETRIES = [(8, 5), (3, 7), (16, 16), (30, 1), (1, 6), (100, 10)]


def random_conductance(n, m, seed=0, sigma=0.6):
    rng = np.random.default_rng(seed)
    return 1e-4 * np.exp(sigma * rng.normal(size=(n, m)))


def read_inputs(n, seed=1, batch=5):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(batch, n))


class TestValidateSolver:
    def test_accepts_all_registered(self):
        for solver in NODAL_SOLVERS:
            assert validate_solver(solver) == solver

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="nodal solver"):
            validate_solver("qr")


class TestOperatorApply:
    @pytest.mark.parametrize("n,m", GEOMETRIES)
    def test_matches_assembled_matrix(self, n, m):
        """A @ v computed matrix-free equals the lu path's assembly."""
        g = random_conductance(n, m)
        network = CrossbarNetwork(g, 2.5)
        rng = np.random.default_rng(3)
        v_flat = rng.normal(size=2 * n * m)
        # Solve then re-apply: A (A^-1 b) must reproduce b.
        x = network._solve_rhs(v_flat)
        applied = nodal_operator_apply(
            g, 2.5, x.reshape(2, n, m)
        ).reshape(-1)
        assert np.allclose(applied, v_flat, atol=1e-12 * np.abs(v_flat).max())


class TestSchurParity:
    @pytest.mark.parametrize("n,m", GEOMETRIES)
    def test_column_currents_within_contract(self, n, m):
        g = random_conductance(n, m)
        x = read_inputs(n)
        lu = CrossbarNetwork(g, 2.5, solver="lu")
        schur = CrossbarNetwork(g, 2.5, solver="schur")
        i_lu = lu.read_batch(x)
        i_schur = schur.read_batch(x)
        scale = np.abs(i_lu).max()
        assert np.abs(i_schur - i_lu).max() / scale <= SCHUR_RTOL

    @pytest.mark.parametrize("n,m", GEOMETRIES)
    def test_full_solution_with_nonzero_v_cols(self, n, m):
        g = random_conductance(n, m, seed=5)
        rng = np.random.default_rng(6)
        v_rows = rng.uniform(size=n)
        v_cols = rng.uniform(size=m) * 0.2
        lu = CrossbarNetwork(g, 2.5, solver="lu").solve(v_rows, v_cols)
        schur = CrossbarNetwork(g, 2.5, solver="schur").solve(
            v_rows, v_cols
        )
        scale = np.abs(lu.v_top).max()
        assert np.abs(schur.v_top - lu.v_top).max() / scale <= SCHUR_RTOL
        assert np.abs(schur.v_bottom - lu.v_bottom).max() / scale <= SCHUR_RTOL

    def test_schur_factor_multi_rhs_equals_looped(self):
        """One multi-RHS solve is bit-identical per column to loops."""
        g = random_conductance(12, 6)
        factor = SchurFactor(g, 2.5)
        rng = np.random.default_rng(7)
        rhs = rng.normal(size=(2 * 12 * 6, 4))
        batched = factor.solve(rhs)
        for k in range(4):
            assert np.array_equal(batched[:, k], factor.solve(rhs[:, k]))


class TestCgParity:
    @pytest.mark.parametrize("n,m", GEOMETRIES)
    def test_column_currents_within_contract(self, n, m):
        g = random_conductance(n, m)
        x = read_inputs(n)
        lu = CrossbarNetwork(g, 2.5, solver="lu")
        cg = CrossbarNetwork(g, 2.5, solver="cg")
        # Anchor the preconditioner on a *different* (nominal) state so
        # the test exercises real iteration, not an exact inverse.
        cg.set_preconditioner_state(np.full((n, m), 1e-4))
        i_lu = lu.read_batch(x)
        i_cg = cg.read_batch(x)
        scale = np.abs(i_lu).max()
        assert np.abs(i_cg - i_lu).max() / scale <= CG_CURRENT_RTOL
        assert cg.last_cg_iterations > 0

    def test_batch_invariance(self):
        """A system's cg answer is independent of its batch mates."""
        n, m = 20, 4
        rng = np.random.default_rng(11)
        g_stack = 1e-4 * np.exp(0.6 * rng.normal(size=(6, n, m)))
        precond = SchurFactor(np.full((n, m), 1e-4), 2.5)
        rhs = np.zeros((6, 2 * n * m, 3))
        rhs[:, np.arange(n) * m, :] = rng.uniform(size=(6, n, 3)) * 0.4
        full, _ = cg_nodal_solve(g_stack, rhs, 2.5, precond)
        # Each trial solved alone, and in a half batch, must agree
        # bit-for-bit with its slice of the full batch.
        for t in range(6):
            alone, _ = cg_nodal_solve(
                g_stack[t : t + 1], rhs[t : t + 1], 2.5, precond
            )
            assert np.array_equal(alone[0], full[t])
        half, _ = cg_nodal_solve(g_stack[:3], rhs[:3], 2.5, precond)
        assert np.array_equal(half, full[:3])

    def test_deterministic_across_jobs(self):
        """map_trials_batched chunking/jobs never changes cg results."""
        import functools

        from repro.experiments.bench_nodal import (
            NodalColumnConfig,
            _nodal_column_trial_batch,
        )

        cfg = NodalColumnConfig(n_devices=24, cols=3)
        kernel = functools.partial(_nodal_column_trial_batch, cfg=cfg)
        base = map_trials_batched(kernel, 12, seed=5, jobs=1)
        chunked = map_trials_batched(
            kernel, 12, seed=5, jobs=1, chunk_size=5
        )
        assert np.array_equal(base, chunked)


class TestStructureCache:
    def test_values_only_rewrite_is_bit_identical(self):
        """update_conductance must equal a from-scratch build exactly."""
        g1 = random_conductance(9, 4, seed=1)
        g2 = random_conductance(9, 4, seed=2)
        x = read_inputs(9)
        network = CrossbarNetwork(g1, 2.5)
        network.read_batch(x)  # force assembly of g1's factor
        network.update_conductance(g2)
        fresh = CrossbarNetwork(g2, 2.5)
        assert np.array_equal(network.read_batch(x), fresh.read_batch(x))

    def test_structure_survives_update(self):
        network = CrossbarNetwork(random_conductance(6, 3), 2.5)
        network.read_batch(read_inputs(6))
        structure = network._structure
        assert structure is not None
        network.update_conductance(random_conductance(6, 3, seed=9))
        assert network._structure is structure

    def test_preconditioner_survives_update(self):
        """MC draws must reuse the nominal factorisation, never rebuild."""
        network = CrossbarNetwork(random_conductance(6, 3), 2.5,
                                  solver="cg")
        precond = network._get_precond()
        network.update_conductance(random_conductance(6, 3, seed=9))
        assert network._get_precond() is precond
        # Re-anchoring explicitly does rebuild.
        network.set_preconditioner_state()
        assert network._get_precond() is not precond

    def test_update_validates_shape_and_sign(self):
        network = CrossbarNetwork(random_conductance(4, 3), 2.5)
        with pytest.raises(ValueError, match="expected shape"):
            network.update_conductance(np.ones((3, 4)) * 1e-5)
        with pytest.raises(ValueError, match="positive"):
            network.update_conductance(np.zeros((4, 3)))


class TestTrialStackedKernel:
    @pytest.mark.parametrize("solver", ["cg", "schur"])
    def test_matches_per_trial_networks(self, solver):
        n, m = 30, 5
        rng = np.random.default_rng(17)
        g_stack = 1e-4 * np.exp(0.5 * rng.normal(size=(7, n, m)))
        x = read_inputs(n, batch=4)
        stacked = nodal_read_trial_stack(
            g_stack, x, 2.5, v_read=0.8, solver=solver,
            precond_g=np.full((n, m), 1e-4),
        )
        assert stacked.shape == (7, 4, m)
        for t in range(7):
            exact = CrossbarNetwork(g_stack[t], 2.5).read_batch(x, 0.8)
            scale = np.abs(exact).max()
            assert np.abs(stacked[t] - exact).max() / scale <= (
                CG_CURRENT_RTOL
            )

    def test_rejects_lu(self):
        with pytest.raises(ValueError, match="lu"):
            nodal_read_trial_stack(
                np.full((2, 3, 3), 1e-5), np.ones((1, 3)), 2.5,
                solver="lu",
            )

    def test_runs_under_executor(self):
        import functools

        from repro.experiments.bench_nodal import (
            NodalColumnConfig,
            _nodal_column_trial,
            _nodal_column_trial_batch,
        )

        cfg = NodalColumnConfig(n_devices=16, cols=2)
        baseline = map_trials(
            functools.partial(_nodal_column_trial, cfg=cfg), 8, seed=3
        )
        stacked = map_trials_batched(
            functools.partial(_nodal_column_trial_batch, cfg=cfg),
            8, seed=3,
        )
        scale = np.abs(baseline).max()
        assert np.abs(stacked - baseline).max() / scale <= CG_CURRENT_RTOL


class TestSolverKnob:
    def test_network_validates_solver(self):
        with pytest.raises(ValueError, match="nodal solver"):
            CrossbarNetwork(random_conductance(3, 3), 2.5, solver="qr")

    def test_set_solver_switches_paths(self):
        g = random_conductance(10, 4)
        x = read_inputs(10)
        network = CrossbarNetwork(g, 2.5, solver="lu")
        i_lu = network.read_batch(x)
        network.set_solver("schur")
        i_schur = network.read_batch(x)
        scale = np.abs(i_lu).max()
        assert np.abs(i_schur - i_lu).max() / scale <= SCHUR_RTOL

    def test_crossbar_config_pin_beats_runtime(self):
        import dataclasses

        from repro.config import CrossbarConfig
        from repro.xbar.crossbar import Crossbar

        crossbar = Crossbar(
            CrossbarConfig(rows=6, cols=3, r_wire=2.5,
                           nodal_solver="schur"),
            rng=np.random.default_rng(0),
        )
        with use_runtime(RuntimeConfig(nodal_solver="cg")):
            assert crossbar._resolve_nodal_solver() == "schur"
        crossbar.config = dataclasses.replace(
            crossbar.config, nodal_solver=None
        )
        with use_runtime(RuntimeConfig(nodal_solver="cg")):
            assert crossbar._resolve_nodal_solver() == "cg"
        assert crossbar._resolve_nodal_solver() == "lu"

    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_crossbar_nodal_read_agrees_across_solvers(self, solver):
        from repro.config import CrossbarConfig
        from repro.xbar.crossbar import Crossbar

        crossbar = Crossbar(
            CrossbarConfig(rows=12, cols=4, r_wire=2.5),
            rng=np.random.default_rng(1),
        )
        x = read_inputs(12, batch=3)
        reference = crossbar.read(x, ir_mode="nodal")
        crossbar.set_nodal_solver(solver)
        currents = crossbar.read(x, ir_mode="nodal")
        scale = np.abs(reference).max()
        assert np.abs(currents - reference).max() / scale <= (
            CG_CURRENT_RTOL
        )

    def test_pair_and_tiles_propagate(self):
        from repro.config import CrossbarConfig
        from repro.xbar.mapping import WeightScaler
        from repro.xbar.pair import DifferentialCrossbar

        pair = DifferentialCrossbar(
            WeightScaler(1.0),
            CrossbarConfig(rows=6, cols=3, r_wire=2.5),
            rng=np.random.default_rng(2),
        )
        pair.set_nodal_solver("cg")
        assert pair.positive.config.nodal_solver == "cg"
        assert pair.negative.config.nodal_solver == "cg"

    def test_config_validation(self):
        from repro.config import CrossbarConfig

        with pytest.raises(ValueError, match="nodal_solver"):
            CrossbarConfig(nodal_solver="gauss")
        with pytest.raises(ValueError, match="nodal_solver"):
            RuntimeConfig(nodal_solver="gauss")


class TestFittedCorrection:
    def test_correction_reduces_error(self):
        g = np.full((64, 10), 1e-4)
        corrected = fit_decomposed_correction(g, 2.5, 2.9)
        assert corrected.fitted_error <= corrected.raw_error
        assert corrected.combined.shape == g.shape
        assert np.all(corrected.combined > 0)
        assert np.all(corrected.combined <= 1.0)

    def test_gain_near_one_for_easy_geometry(self):
        """Tiny crossbars have little 2-D coupling: gain stays near 1."""
        g = np.full((4, 3), 1e-4)
        corrected = fit_decomposed_correction(g, 2.5, 2.9)
        assert 0.5 < corrected.gain < 2.0

    def test_base_preserved(self):
        g = np.full((16, 5), 1e-4)
        corrected = fit_decomposed_correction(g, 2.5, 2.9)
        base = program_factors(g, 2.5, 2.9)
        assert np.array_equal(corrected.base.combined, base.combined)
