"""Physics property tests for the nodal ground truth.

Whatever solver answers the system, the solution must be a valid
circuit: Kirchhoff's current law holds at every node, the current the
drivers inject equals the current the terminations collect, and the
batched read path is exactly the looped one -- including at nonzero
bit-line termination voltages (the regression of the silent
grounded-bit-line assumption the old ``read_batch`` carried).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NODAL_SOLVERS
from repro.xbar.nodal import CrossbarNetwork
from repro.xbar.solvers import nodal_operator_apply

GEOMETRIES = [(8, 5), (3, 7), (16, 16), (30, 1), (1, 6)]

#: KCL residual budget relative to the driving current scale.  The lu
#: oracle sits at machine epsilon; cg is bounded by its solve tolerance.
KCL_RTOL = 1e-6


def random_conductance(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return 1e-4 * np.exp(0.6 * rng.normal(size=(n, m)))


def _solution_residual(network, v_rows, v_cols, solution):
    """KCL residual ``A v - b`` at every node, as one (2, n, m) array.

    ``A v`` comes from the matrix-free operator apply (independently
    coded from every factorising solver), ``b`` from the driver
    currents, so a small residual certifies both the solve and the
    assembly against each other.
    """
    n, m = network.n, network.m
    g_w = 1.0 / network.r_wire
    v = np.stack([solution.v_top, solution.v_bottom])
    applied = nodal_operator_apply(network.g, network.r_wire, v)
    b = np.zeros((2, n, m))
    b[0, :, 0] = np.asarray(v_rows) * g_w
    b[1, n - 1, :] += np.broadcast_to(np.asarray(v_cols, dtype=float), (m,)) * g_w
    return applied - b


class TestKCL:
    @pytest.mark.parametrize("n,m", GEOMETRIES)
    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_current_conservation_every_node(self, n, m, solver):
        """KCL holds at every node, not only the sensed boundary."""
        network = CrossbarNetwork(
            random_conductance(n, m), 2.5, solver=solver
        )
        rng = np.random.default_rng(1)
        v_rows = rng.uniform(size=n)
        v_cols = rng.uniform(size=m) * 0.1
        solution = network.solve(v_rows, v_cols)
        residual = _solution_residual(network, v_rows, v_cols, solution)
        scale = np.abs(v_rows).max() / network.r_wire
        assert np.abs(residual).max() / scale <= KCL_RTOL

    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_driver_current_balance(self, solver):
        """Injected word-line current equals collected column current.

        The network has no other terminals, so conservation over the
        whole circuit forces sum(driver currents) == sum(column
        currents) whenever the terminations are grounded.
        """
        n, m = 20, 6
        network = CrossbarNetwork(
            random_conductance(n, m), 2.5, solver=solver
        )
        rng = np.random.default_rng(2)
        v_rows = rng.uniform(size=n)
        solution = network.solve(v_rows, 0.0)
        g_w = 1.0 / network.r_wire
        injected = np.sum((v_rows - solution.v_top[:, 0]) * g_w)
        collected = np.sum(solution.column_current)
        assert injected == pytest.approx(collected, rel=1e-6)

    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_device_currents_sum_to_column_current(self, solver):
        """Per-column device currents equal what the termination sees.

        Within one bit line the device currents all flow to the bottom
        termination (no other exit), so their sum must match
        ``column_current`` when the bit lines are grounded.
        """
        n, m = 12, 4
        network = CrossbarNetwork(
            random_conductance(n, m), 2.5, solver=solver
        )
        solution = network.solve(np.linspace(0.1, 1.0, n), 0.0)
        per_column = solution.device_current.sum(axis=0)
        np.testing.assert_allclose(
            per_column, solution.column_current, rtol=1e-6
        )


class TestReadBatchEquivalence:
    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_read_batch_equals_looped_read(self, solver):
        network = CrossbarNetwork(
            random_conductance(10, 4), 2.5, solver=solver
        )
        rng = np.random.default_rng(3)
        x = rng.uniform(size=(6, 10))
        batched = network.read_batch(x, 0.9)
        for s in range(6):
            np.testing.assert_allclose(
                batched[s], network.read(x[s], 0.9),
                rtol=1e-9, atol=1e-18,
            )

    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_read_batch_supports_nonzero_v_cols(self, solver):
        """Regression: the batched path honours v_cols.

        The pre-subsystem ``read_batch`` silently computed
        ``v_bottom * g_w`` -- correct only for grounded bit lines.  The
        batched current must now equal the looped ``solve`` current at
        any termination voltage, per input and shared alike.
        """
        n, m = 9, 5
        network = CrossbarNetwork(
            random_conductance(n, m), 2.5, solver=solver
        )
        rng = np.random.default_rng(4)
        x = rng.uniform(size=(4, n))
        shared = rng.uniform(size=m) * 0.2
        per_input = rng.uniform(size=(4, m)) * 0.2
        for v_cols in (shared, per_input):
            batched = network.read_batch(x, 1.0, v_cols=v_cols)
            for s in range(4):
                vc = v_cols if v_cols.ndim == 1 else v_cols[s]
                looped = network.solve(x[s], vc).column_current
                np.testing.assert_allclose(
                    batched[s], looped, rtol=1e-9,
                    atol=1e-12 * np.abs(looped).max(),
                )

    def test_single_input_shape(self):
        network = CrossbarNetwork(random_conductance(5, 3), 2.5)
        single = network.read_batch(np.full(5, 0.5))
        assert single.shape == (3,)
        np.testing.assert_allclose(single, network.read(np.full(5, 0.5)))


class TestBatchedSolvePaths:
    @pytest.mark.parametrize("solver", NODAL_SOLVERS)
    def test_solve_batch_equals_looped_solve(self, solver):
        n, m = 11, 4
        network = CrossbarNetwork(
            random_conductance(n, m), 2.5, solver=solver
        )
        rng = np.random.default_rng(5)
        v_rows = rng.uniform(size=(5, n))
        v_cols = rng.uniform(size=(5, m)) * 0.3
        batch = network.solve_batch(v_rows, v_cols)
        assert batch.v_top.shape == (5, n, m)
        for b in range(5):
            one = network.solve(v_rows[b], v_cols[b])
            np.testing.assert_allclose(
                batch.v_top[b], one.v_top, rtol=1e-9, atol=1e-15
            )
            np.testing.assert_allclose(
                batch.column_current[b], one.column_current,
                rtol=1e-9, atol=1e-15,
            )

    def test_program_voltages_batch_equals_looped(self):
        n, m = 14, 6
        network = CrossbarNetwork(random_conductance(n, m), 2.5)
        cells = np.array(
            [(0, 0), (n - 1, m - 1), (n // 2, m // 2), (0, m - 1)]
        )
        batch = network.program_voltages_batch(cells, 2.9)
        for idx, (row, col) in enumerate(cells):
            one = network.program_voltages(int(row), int(col), 2.9)
            np.testing.assert_allclose(
                batch.device_voltage[idx], one.device_voltage,
                rtol=1e-12, atol=1e-15,
            )

    def test_program_voltages_batch_validates_cells(self):
        network = CrossbarNetwork(random_conductance(4, 4), 2.5)
        with pytest.raises(IndexError, match="outside"):
            network.program_voltages_batch([(0, 0), (4, 0)], 2.9)
        with pytest.raises(ValueError, match="pairs"):
            network.program_voltages_batch(np.zeros((2, 3), dtype=int),
                                           2.9)
