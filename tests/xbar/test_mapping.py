"""Tests for the weight <-> conductance mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.xbar.mapping import WeightScaler, split_signed


class TestSplitSigned:
    def test_basic(self):
        pos, neg = split_signed(np.array([[1.0, -2.0], [0.0, 3.0]]))
        assert np.array_equal(pos, [[1.0, 0.0], [0.0, 3.0]])
        assert np.array_equal(neg, [[0.0, 2.0], [0.0, 0.0]])

    @given(
        arrays(
            float,
            (3, 4),
            elements=st.floats(min_value=-10, max_value=10),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_reconstruction(self, w):
        pos, neg = split_signed(w)
        assert np.allclose(pos - neg, w)
        assert np.all(pos >= 0) and np.all(neg >= 0)
        assert np.all((pos == 0) | (neg == 0))


class TestWeightScaler:
    def test_rejects_nonpositive_w_max(self):
        with pytest.raises(ValueError, match="w_max"):
            WeightScaler(0.0)

    def test_magnitude_endpoints(self):
        scaler = WeightScaler(2.0)
        d = scaler.device
        assert scaler.magnitude_to_conductance(0.0) == pytest.approx(d.g_off)
        assert scaler.magnitude_to_conductance(2.0) == pytest.approx(d.g_on)

    def test_magnitude_clips_beyond_w_max(self):
        scaler = WeightScaler(1.0)
        assert scaler.magnitude_to_conductance(5.0) == pytest.approx(
            scaler.device.g_on
        )

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightScaler(1.0).magnitude_to_conductance(-0.1)

    @given(
        arrays(
            float,
            (4, 3),
            elements=st.floats(min_value=-1.0, max_value=1.0),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pair_roundtrip(self, w):
        scaler = WeightScaler(1.0)
        g_pos, g_neg = scaler.weights_to_pair(w)
        recovered = scaler.pair_to_weights(g_pos, g_neg)
        assert np.allclose(recovered, w, atol=1e-12)

    def test_for_weights_sizes_to_peak(self):
        w = np.array([[0.3, -1.2], [0.4, 0.9]])
        scaler = WeightScaler.for_weights(w, headroom=1.5)
        assert scaler.w_max == pytest.approx(1.8)

    def test_for_weights_zero_matrix(self):
        scaler = WeightScaler.for_weights(np.zeros((2, 2)))
        assert scaler.w_max == 1.0

    def test_write_levels_snap_to_grid(self):
        scaler = WeightScaler(1.0, write_levels=5)
        d = scaler.device
        mags = np.linspace(0, 1, 21)
        g = scaler.magnitude_to_conductance(mags)
        fracs = (g - d.g_off) / d.g_range
        steps = fracs * 4  # 5 levels -> 4 steps
        assert np.allclose(steps, np.round(steps), atol=1e-9)

    def test_write_levels_preserve_endpoints(self):
        scaler = WeightScaler(1.0, write_levels=4)
        d = scaler.device
        assert scaler.magnitude_to_conductance(0.0) == pytest.approx(
            d.g_off
        )
        assert scaler.magnitude_to_conductance(1.0) == pytest.approx(
            d.g_on
        )

    def test_more_levels_reduce_quantisation_error(self, rng):
        mags = rng.random(500)
        errors = []
        for levels in (4, 16, 64):
            scaler = WeightScaler(1.0, write_levels=levels)
            g = scaler.magnitude_to_conductance(mags)
            recovered = scaler.conductance_to_magnitude(g)
            errors.append(float(np.mean(np.abs(recovered - mags))))
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_write_levels_rejected(self):
        with pytest.raises(ValueError, match="write_levels"):
            WeightScaler(1.0, write_levels=1)

    def test_analog_default_is_continuous(self, rng):
        scaler = WeightScaler(1.0)
        mags = rng.random(100)
        g = scaler.magnitude_to_conductance(mags)
        assert np.allclose(
            scaler.conductance_to_magnitude(g), mags, atol=1e-12
        )

    def test_currents_to_outputs_recovers_matvec(self, rng):
        scaler = WeightScaler(1.0)
        w = rng.uniform(-1, 1, (6, 3))
        x = rng.random(6)
        g_pos, g_neg = scaler.weights_to_pair(w)
        v_read = 0.7
        i_pos = v_read * (x @ g_pos)
        i_neg = v_read * (x @ g_neg)
        out = scaler.currents_to_outputs(i_pos - i_neg, 0.0, v_read)
        assert np.allclose(out, x @ w, atol=1e-9)
