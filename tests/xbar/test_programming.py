"""Tests for open-loop pulse planning and physical execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DeviceConfig, VariationConfig
from repro.devices.memristor import MemristorArray
from repro.devices.switching import SwitchingModel
from repro.xbar.ir_drop import program_factors
from repro.xbar.programming import execute_plan, plan_programming


def ideal_array(shape=(8, 4), seed=0, sigma=0.0):
    return MemristorArray(
        shape,
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
    )


class TestPlanProgramming:
    def test_plan_reaches_targets_on_ideal_devices(self, rng):
        array = ideal_array()
        model = array.switching
        d = array.device
        target = 10 ** rng.uniform(
            np.log10(d.g_off * 2), np.log10(d.g_on / 2), (8, 4)
        )
        plan = plan_programming(model, array.state, target, r_wire=0.0)
        achieved = execute_plan(array, plan, rate_variation=False)
        assert np.allclose(achieved, target, rtol=1e-6)

    def test_polarity_assignment(self):
        model = SwitchingModel()
        current = np.array([[0.1, 0.9]])
        target_g = model.conductance_of(np.array([[0.5, 0.5]]))
        plan = plan_programming(model, current, target_g)
        assert plan.polarity[0, 0] == 1  # needs SET
        assert plan.polarity[0, 1] == -1  # needs RESET

    def test_widths_nonnegative(self, rng):
        array = ideal_array()
        model = array.switching
        d = array.device
        target = np.full((8, 4), np.sqrt(d.g_on * d.g_off))
        plan = plan_programming(model, array.state, target)
        assert np.all(plan.width >= 0)

    def test_shape_mismatch_rejected(self):
        model = SwitchingModel()
        with pytest.raises(ValueError, match="shape"):
            plan_programming(model, np.zeros((2, 2)), np.full((3, 3), 1e-5))

    def test_compensation_stretches_widths(self):
        model = SwitchingModel()
        d = model.device
        current = np.zeros((32, 4))
        target = np.full((32, 4), d.g_on * 0.5)
        plain = plan_programming(
            model, current, target, r_wire=2.5, compensate_ir_drop=False
        )
        compensated = plan_programming(
            model, current, target, r_wire=2.5, compensate_ir_drop=True
        )
        assert np.all(compensated.width >= plain.width)
        assert np.any(compensated.width > plain.width)


class TestExecutePlan:
    def test_compensated_plan_beats_uncompensated_under_ir_drop(self):
        model = SwitchingModel()
        d = model.device
        shape = (48, 4)
        target = np.full(shape, d.g_on * 0.4)

        def programming_error(compensate: bool) -> float:
            array = ideal_array(shape)
            plan = plan_programming(
                model, array.state, target, r_wire=2.5,
                compensate_ir_drop=compensate,
            )
            factors = program_factors(target, 2.5, d.v_set).combined
            achieved = execute_plan(
                array, plan, delivered_factors=factors,
                rate_variation=False,
            )
            return float(np.mean(np.abs(achieved - target) / target))

        assert programming_error(True) < programming_error(False)

    def test_rate_variation_corrupts_results(self):
        model = SwitchingModel()
        d = model.device
        array = ideal_array(sigma=0.5, seed=7)
        target = np.full((8, 4), np.sqrt(d.g_on * d.g_off))
        plan = plan_programming(model, array.state, target)
        achieved = execute_plan(array, plan, rate_variation=True)
        errors = np.abs(achieved - target) / target
        assert np.max(errors) > 0.05

    def test_rate_variation_error_correlates_with_theta(self):
        # Devices with larger |theta| miss their target harder: the
        # physical pulse path and the paper's abstract lognormal model
        # agree on which devices are bad.
        model = SwitchingModel()
        d = model.device
        array = ideal_array((64, 4), sigma=0.4, seed=9)
        target = np.full((64, 4), np.sqrt(d.g_on * d.g_off))
        plan = plan_programming(model, array.state, target)
        achieved = execute_plan(array, plan, rate_variation=True)
        log_error = np.log(achieved / target)
        corr = np.corrcoef(log_error.ravel(), array.theta.ravel())[0, 1]
        assert abs(corr) > 0.8

    def test_stuck_cells_unchanged(self):
        array = MemristorArray(
            (8, 4),
            variation=VariationConfig(defect_rate=0.4, sigma_cycle=0.0),
            rng=np.random.default_rng(3),
        )
        stuck = array.is_stuck()
        assert np.any(stuck)
        g_before = array.conductance.copy()
        model = array.switching
        target = np.full((8, 4), 5e-5)
        plan = plan_programming(model, array.state, target)
        achieved = execute_plan(array, plan, rate_variation=False)
        assert np.allclose(achieved[stuck], g_before[stuck])
