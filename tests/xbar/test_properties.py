"""Property-based tests of circuit-level invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import CrossbarConfig, VariationConfig
from repro.xbar.ir_drop import read_output_currents
from repro.xbar.mapping import WeightScaler
from repro.xbar.nodal import CrossbarNetwork
from repro.xbar.pair import DifferentialCrossbar


def conductances(rows, cols):
    return arrays(
        float,
        (rows, cols),
        elements=st.floats(min_value=1e-6, max_value=1e-4),
    )


def input_vectors(n):
    return arrays(
        float, (n,), elements=st.floats(min_value=0.0, max_value=1.0)
    )


class TestNodalInvariants:
    @given(g=conductances(6, 3), x=input_vectors(6))
    @settings(max_examples=15, deadline=None)
    def test_passivity_outputs_never_exceed_ideal(self, g, x):
        # Wire resistance can only lose voltage headroom: every column
        # current is bounded by the zero-wire ideal.
        net = CrossbarNetwork(g, 2.5)
        currents = net.read(x, 1.0)
        ideal = x @ g
        assert np.all(currents <= ideal + 1e-15)
        assert np.all(currents >= -1e-15)

    @given(g=conductances(6, 3), x=input_vectors(6),
           scale=st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=15, deadline=None)
    def test_linearity_in_drive(self, g, x, scale):
        # The network is linear in the drive voltages.
        net = CrossbarNetwork(g, 2.5)
        assert np.allclose(
            net.read(x, 1.0) * scale,
            net.solve(x * scale, 0.0).column_current,
            rtol=1e-9, atol=1e-18,
        )

    @given(g=conductances(6, 3), x=input_vectors(6))
    @settings(max_examples=15, deadline=None)
    def test_monotone_in_conductance(self, g, x):
        # Raising every conductance cannot reduce any column current
        # at fixed drive.
        net_lo = CrossbarNetwork(g, 2.5)
        net_hi = CrossbarNetwork(g * 1.5, 2.5)
        lo = net_lo.read(x, 1.0)
        hi = net_hi.read(x, 1.0)
        assert np.all(hi >= lo - 1e-15)

    @given(g=conductances(6, 3))
    @settings(max_examples=10, deadline=None)
    def test_more_wire_resistance_more_loss(self, g):
        x = np.ones(6)
        mild = CrossbarNetwork(g, 1.0).read(x, 1.0)
        harsh = CrossbarNetwork(g, 10.0).read(x, 1.0)
        assert np.all(harsh <= mild + 1e-15)


class TestFastModelInvariants:
    @given(g=conductances(8, 4), x=input_vectors(8))
    @settings(max_examples=15, deadline=None)
    def test_fixed_point_bounded_by_ideal(self, g, x):
        out = read_output_currents(g, x, 2.5, 1.0)
        assert np.all(out <= x @ g + 1e-15)
        assert np.all(out >= -1e-15)


class TestPairInvariants:
    @given(
        w=arrays(float, (6, 3),
                 elements=st.floats(min_value=-1.0, max_value=1.0)),
        x=input_vectors(6),
        scale=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_weight_scaling_scales_outputs(self, w, x, scale):
        # Programming scaled weights scales the (ideal-path) outputs:
        # the argmax decision is normalisation-invariant.
        def outputs(weights):
            pair = DifferentialCrossbar(
                WeightScaler(1.0),
                config=CrossbarConfig(rows=6, cols=3, r_wire=0.0),
                variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
                rng=np.random.default_rng(0),
            )
            pair.program_weights(weights, with_cycle_noise=False)
            return pair.matvec(x)

        full = outputs(w)
        scaled = outputs(w * scale)
        assert np.allclose(scaled, full * scale, atol=1e-9)

    @given(
        w=arrays(float, (5, 3),
                 elements=st.floats(min_value=-1.0, max_value=1.0)),
    )
    @settings(max_examples=15, deadline=None)
    def test_negating_weights_negates_outputs(self, w):
        x = np.full(5, 0.5)

        def outputs(weights):
            pair = DifferentialCrossbar(
                WeightScaler(1.0),
                config=CrossbarConfig(rows=5, cols=3, r_wire=0.0),
                variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
                rng=np.random.default_rng(0),
            )
            pair.program_weights(weights, with_cycle_noise=False)
            return pair.matvec(x)

        assert np.allclose(outputs(-w), -outputs(w), atol=1e-9)

    def test_variation_preserves_sign_of_strong_weights(self, rng):
        # A lognormal multiplier is positive: it can shrink or grow a
        # stored weight but never flip its sign (absent the tiny
        # baseline crosstalk).
        pair = DifferentialCrossbar(
            WeightScaler(1.0),
            config=CrossbarConfig(rows=10, cols=4, r_wire=0.0),
            variation=VariationConfig(sigma=1.0, sigma_cycle=0.0),
            rng=np.random.default_rng(8),
        )
        w = rng.choice([-0.8, 0.8], size=(10, 4))
        pair.program_weights(w, with_cycle_noise=False)
        realised = pair.effective_weights()
        strong = np.abs(realised) > 0.1
        assert np.all(np.sign(realised[strong]) == np.sign(w[strong]))
