"""Tests for the full nodal crossbar solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.xbar.nodal import CrossbarNetwork


def random_conductance(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return 10 ** rng.uniform(-6, -4, (n, m))


class TestConstruction:
    def test_rejects_nonpositive_conductance(self):
        with pytest.raises(ValueError, match="positive"):
            CrossbarNetwork(np.zeros((2, 2)), 1.0)

    def test_rejects_zero_wire_resistance(self):
        with pytest.raises(ValueError, match="r_wire"):
            CrossbarNetwork(np.ones((2, 2)) * 1e-5, 0.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            CrossbarNetwork(np.ones(4) * 1e-5, 1.0)


class TestReadMode:
    def test_tiny_wire_resistance_approaches_ideal(self):
        g = random_conductance(12, 5)
        net = CrossbarNetwork(g, 1e-6)
        x = np.random.default_rng(1).random(12)
        currents = net.read(x, 1.0)
        assert np.allclose(currents, x @ g, rtol=1e-4)

    def test_realistic_wire_resistance_attenuates(self):
        g = np.full((64, 8), 1e-4)
        net = CrossbarNetwork(g, 2.5)
        x = np.ones(64)
        currents = net.read(x, 1.0)
        ideal = x @ g
        assert np.all(currents < ideal)
        assert np.all(currents > 0)

    def test_zero_input_gives_zero_output(self):
        g = random_conductance(8, 4)
        net = CrossbarNetwork(g, 2.5)
        assert np.allclose(net.read(np.zeros(8)), 0.0, atol=1e-18)

    def test_output_scales_with_v_read(self):
        g = random_conductance(8, 4)
        net = CrossbarNetwork(g, 2.5)
        x = np.random.default_rng(2).random(8)
        i1 = net.read(x, 0.5)
        i2 = net.read(x, 1.0)
        assert np.allclose(i2, 2 * i1)

    def test_input_shape_validated(self):
        net = CrossbarNetwork(random_conductance(8, 4), 1.0)
        with pytest.raises(ValueError, match="shape"):
            net.read(np.ones(5))

    def test_superposition(self):
        # The network is linear: reads superpose.
        g = random_conductance(10, 3)
        net = CrossbarNetwork(g, 2.5)
        rng = np.random.default_rng(3)
        x1, x2 = rng.random(10), rng.random(10)
        assert np.allclose(
            net.read(x1) + net.read(x2), net.read(x1 + x2), rtol=1e-9
        )


class TestCurrentConservation:
    def test_column_currents_match_device_sums(self):
        g = random_conductance(16, 6)
        net = CrossbarNetwork(g, 2.5)
        sol = net.solve(np.random.default_rng(4).random(16), 0.0)
        # KCL: total device current into each column flows out the
        # bottom termination.
        assert np.allclose(
            sol.device_current.sum(axis=0), sol.column_current, rtol=1e-9
        )


class TestProgramMode:
    def test_selected_cell_sees_largest_voltage(self):
        g = np.full((32, 8), 1e-4)
        net = CrossbarNetwork(g, 2.5)
        sol = net.program_voltages(5, 3, 2.9)
        dv = sol.device_voltage
        assert np.argmax(dv) == 5 * 8 + 3

    def test_half_selected_cells_near_half_voltage(self):
        g = np.full((16, 4), 1e-6)  # HRS background: light loading
        net = CrossbarNetwork(g, 1.0)
        sol = net.program_voltages(2, 1, 2.0)
        dv = sol.device_voltage
        # Unselected row, unselected column: ~0 bias.
        assert abs(dv[5, 2]) < 0.1
        # Selected row, unselected column: ~V/2.
        assert dv[2, 2] == pytest.approx(1.0, abs=0.1)
        # Unselected row, selected column: ~V/2.
        assert dv[5, 1] == pytest.approx(1.0, abs=0.1)
        # Selected cell: ~V.
        assert dv[2, 1] == pytest.approx(2.0, abs=0.1)

    def test_delivered_voltage_degrades_with_loading(self):
        light = CrossbarNetwork(np.full((64, 8), 1e-6), 2.5)
        heavy = CrossbarNetwork(np.full((64, 8), 1e-4), 2.5)
        v_light = light.program_voltages(0, 4, 2.9).device_voltage[0, 4]
        v_heavy = heavy.program_voltages(0, 4, 2.9).device_voltage[0, 4]
        assert v_heavy < v_light

    def test_out_of_range_cell_rejected(self):
        net = CrossbarNetwork(random_conductance(4, 4), 1.0)
        with pytest.raises(IndexError):
            net.program_voltages(4, 0, 2.9)


class TestUpdateConductance:
    def test_update_changes_solution(self):
        g = random_conductance(8, 4)
        net = CrossbarNetwork(g, 2.5)
        x = np.random.default_rng(5).random(8)
        i1 = net.read(x)
        net.update_conductance(g * 2)
        i2 = net.read(x)
        assert not np.allclose(i1, i2)

    def test_update_shape_validated(self):
        net = CrossbarNetwork(random_conductance(8, 4), 1.0)
        with pytest.raises(ValueError, match="shape"):
            net.update_conductance(np.ones((4, 8)) * 1e-5)

    def test_ideal_read_helper(self):
        g = random_conductance(8, 4)
        net = CrossbarNetwork(g, 2.5)
        x = np.random.default_rng(6).random(8)
        assert np.allclose(net.ideal_read(x, 2.0), 2.0 * (x @ g))
