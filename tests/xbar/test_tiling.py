"""Tests for row-wise crossbar tiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar
from repro.xbar.tiling import TiledPair, split_rows


def make_tiled(n_rows=24, cols=4, tile_rows=8, r_wire=0.0, sigma=0.0,
               seed=0, adc_bits=None):
    return TiledPair(
        WeightScaler(1.0),
        n_rows=n_rows,
        cols=cols,
        tile_rows=tile_rows,
        config=CrossbarConfig(rows=n_rows, cols=cols, r_wire=r_wire),
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
        adc_bits=adc_bits,
    )


class TestSplitRows:
    def test_even_partition(self):
        assert split_rows(12, 4) == [(0, 4), (4, 8), (8, 12)]

    def test_ragged_tail(self):
        assert split_rows(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_tile(self):
        assert split_rows(5, 100) == [(0, 5)]

    def test_tile_rows_exceeding_n_rows_covers_everything(self):
        ranges = split_rows(3, 4)
        assert ranges == [(0, 3)]
        assert ranges[-1][1] == 3  # no phantom rows past the layer

    def test_exact_multiple_has_no_stub_tile(self):
        assert split_rows(12, 12) == [(0, 12)]
        assert split_rows(12, 6) == [(0, 6), (6, 12)]
        # Ranges partition [0, n_rows) exactly: contiguous, disjoint.
        for n_rows, tile_rows in [(12, 12), (12, 6), (13, 6), (1, 1)]:
            ranges = split_rows(n_rows, tile_rows)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == n_rows
            assert all(
                a[1] == b[0] for a, b in zip(ranges, ranges[1:])
            )

    def test_single_row_layer(self):
        assert split_rows(1, 8) == [(0, 1)]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_rows"):
            split_rows(0, 4)
        with pytest.raises(ValueError, match="tile_rows"):
            split_rows(4, 0)


class TestTiledPair:
    def test_tile_count_and_shapes(self):
        tiled = make_tiled(n_rows=20, tile_rows=8)
        assert tiled.n_tiles == 3
        assert [t.shape[0] for t in tiled.tiles] == [8, 8, 4]

    def test_matvec_matches_monolithic_ideal(self, rng):
        w = rng.uniform(-1, 1, (24, 4))
        x = rng.random((10, 24))
        tiled = make_tiled()
        tiled.program_weights(w, with_cycle_noise=False)
        mono = DifferentialCrossbar(
            WeightScaler(1.0),
            config=CrossbarConfig(rows=24, cols=4, r_wire=0.0),
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            rng=np.random.default_rng(1),
        )
        w_norm = w * (1.0 / np.abs(w).max())
        mono.program_weights(w_norm, with_cycle_noise=False)
        assert np.allclose(tiled.matvec(x), mono.matvec(x), atol=1e-9)

    def test_effective_weights_roundtrip(self, rng):
        w = rng.uniform(-1, 1, (24, 4))
        tiled = make_tiled()
        tiled.program_weights(w, with_cycle_noise=False)
        w_norm = w * (1.0 / np.abs(w).max())
        assert np.allclose(tiled.effective_weights(), w_norm, atol=1e-9)

    def test_weight_shape_validated(self):
        tiled = make_tiled()
        with pytest.raises(ValueError, match="shape"):
            tiled.program_weights(np.ones((10, 4)))

    def test_input_width_validated(self, rng):
        tiled = make_tiled()
        tiled.program_weights(rng.uniform(-1, 1, (24, 4)),
                              with_cycle_noise=False)
        with pytest.raises(ValueError, match="width"):
            tiled.matvec(np.ones(10))

    def test_tiles_fabricated_independently(self):
        tiled = make_tiled(sigma=0.5, seed=3)
        t0 = tiled.tiles[0].positive.array.theta
        t1 = tiled.tiles[1].positive.array.theta
        assert not np.allclose(t0, t1)

    def test_tiling_reduces_read_ir_error(self, rng):
        # The whole point: shorter bit lines -> less IR loss at the
        # same wire resistance.
        w = rng.uniform(-1, 1, (96, 4))
        x = rng.random((20, 96))
        w_norm = w * (1.0 / np.abs(w).max())
        ideal = x @ w_norm

        def error(tile_rows):
            tiled = make_tiled(
                n_rows=96, tile_rows=tile_rows, r_wire=5.0, seed=4
            )
            tiled.program_weights(w, with_cycle_noise=False)
            out = tiled.matvec(x, "fixed_point")
            return float(np.mean(np.abs(out - ideal)))

        assert error(24) < error(96)

    @pytest.mark.parametrize("ir_mode", ["ideal", "nodal"])
    def test_batched_read_bit_identical_to_looped_reads(self, rng, ir_mode):
        # The serving contract, extended to tiles: one batched read
        # (multi-RHS solve per tile) equals looping the single-query
        # path, bit for bit, so schedulers may batch freely.
        w = rng.uniform(-1, 1, (24, 4))
        x = rng.random((7, 24))
        tiled = make_tiled(r_wire=2.0 if ir_mode == "nodal" else 0.0)
        tiled.program_weights(w, with_cycle_noise=False)
        batched = tiled.matvec(x, ir_mode)
        looped = np.stack([tiled.matvec(q, ir_mode) for q in x])
        assert np.array_equal(batched, looped)

    def test_partial_matvec_reduces_to_matvec(self, rng):
        w = rng.uniform(-1, 1, (24, 4))
        x = rng.random((5, 24))
        tiled = make_tiled()
        tiled.program_weights(w, with_cycle_noise=False)
        parts = tiled.partial_matvec(x)
        assert len(parts) == tiled.n_tiles
        assert all(p.shape == (5, 4) for p in parts)
        assert np.array_equal(
            TiledPair.reduce_partials(parts), tiled.matvec(x)
        )

    def test_partial_matvec_validates_width(self, rng):
        tiled = make_tiled()
        tiled.program_weights(rng.uniform(-1, 1, (24, 4)),
                              with_cycle_noise=False)
        with pytest.raises(ValueError, match="width"):
            tiled.partial_matvec(np.ones(23))

    def test_reduce_partials_rejects_empty(self):
        with pytest.raises(ValueError, match="partial"):
            TiledPair.reduce_partials([])

    def test_adc_calibration_per_tile(self, rng):
        tiled = make_tiled(adc_bits=6)
        w = rng.uniform(-1, 1, (24, 4))
        tiled.program_weights(w, with_cycle_noise=False)
        x = rng.random((30, 24))
        tiled.calibrate_sense(x)
        w_norm = w * (1.0 / np.abs(w).max())
        out = tiled.matvec(x)
        # Quantised but close: per-tile auto-ranging keeps the summed
        # output faithful.
        assert np.mean(np.abs(out - x @ w_norm)) < 0.1
