"""Tests for the fast IR-drop models against ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import solve_banded

from repro.xbar.ir_drop import (
    _ladder_banded,
    _ladder_inverse_diag,
    column_ladder_solve,
    program_column_factors,
    program_factors,
    program_row_factors,
    read_attenuation_reference,
    read_column_gains,
    read_output_currents,
)
from repro.xbar.nodal import CrossbarNetwork


def _dense_ladder(g_devices, g_wire):
    ab = _ladder_banded(np.asarray(g_devices, float), g_wire)
    n = g_devices.size
    dense = np.zeros((n, n))
    for i in range(n):
        dense[i, i] = ab[1, i]
        if i > 0:
            dense[i, i - 1] = -g_wire
        if i < n - 1:
            dense[i, i + 1] = -g_wire
    return dense


class TestLadderPrimitives:
    def test_solve_matches_dense(self, rng):
        g = 10 ** rng.uniform(-6, -4, 40)
        p = rng.uniform(0, 2, 40)
        v = column_ladder_solve(g, p, 2.5, 0.3)
        dense = _dense_ladder(g, 0.4)
        rhs = g * p
        rhs[-1] += 0.4 * 0.3
        assert np.allclose(v, np.linalg.solve(dense, rhs), rtol=1e-10)

    def test_inverse_diag_matches_dense_inverse(self, rng):
        g = 10 ** rng.uniform(-6, -4, 60)
        inv_diag = _ladder_inverse_diag(g, 0.4)
        dense = _dense_ladder(g, 0.4)
        assert np.allclose(inv_diag, np.diag(np.linalg.inv(dense)),
                           rtol=1e-9)

    def test_inverse_diag_stable_for_long_ladders(self):
        # The minor recurrence underflows at this length; the pivot
        # formula must not.
        g = np.full(2000, 1e-5)
        inv_diag = _ladder_inverse_diag(g, 0.4)
        assert np.all(np.isfinite(inv_diag))
        assert np.all(inv_diag > 0)

    def test_solve_validates_inputs(self):
        with pytest.raises(ValueError, match="equal-length"):
            column_ladder_solve(np.ones(3), np.ones(4), 1.0)
        with pytest.raises(ValueError, match="r_wire"):
            column_ladder_solve(np.ones(3), np.ones(3), 0.0)

    def test_banded_solve_consistency(self, rng):
        # solve_banded round trip for the same ab matrix.
        g = 10 ** rng.uniform(-6, -4, 30)
        ab = _ladder_banded(g, 0.4)
        x = rng.random(30)
        dense = _dense_ladder(g, 0.4)
        assert np.allclose(
            solve_banded((1, 1), ab, dense @ x), x, rtol=1e-8
        )


class TestProgramFactors:
    def test_matches_nodal_ground_truth(self):
        g = np.full((48, 6), 1e-4)
        factors = program_column_factors(g, 2.5, 2.9)
        net = CrossbarNetwork(g, 2.5)
        for row in (0, 24, 47):
            exact = net.program_voltages(row, 2, 2.9).device_voltage[row, 2]
            approx = 2.9 * (
                factors[row, 2] + program_row_factors(g, 2.5, 2.9)[row, 2]
                - 1.0
            )
            assert approx == pytest.approx(exact, rel=0.02)

    def test_zero_wire_resistance_gives_unity(self):
        g = np.full((8, 4), 1e-4)
        assert np.all(program_column_factors(g, 0.0, 2.9) == 1.0)
        assert np.all(program_row_factors(g, 0.0, 2.9) == 1.0)

    def test_vertical_factors_increase_toward_driver(self):
        # The bit line is driven from the bottom (row n-1): delivered
        # voltage improves toward it (Fig. 3c).
        g = np.full((64, 4), 1e-4)
        factors = program_column_factors(g, 2.5, 2.9)
        assert factors[-1, 0] > factors[0, 0]

    def test_row_factors_decrease_rightward(self):
        g = np.full((16, 8), 1e-4)
        factors = program_row_factors(g, 2.5, 2.9)
        assert np.all(np.diff(factors[0]) < 0)

    def test_skew_grows_with_height(self):
        skews = []
        for n in (32, 64, 128):
            g = np.full((n, 4), 1e-4)
            decomposition = program_factors(g, 2.5, 2.9)
            skews.append(decomposition.d_skew.max())
        assert skews[0] < skews[1] < skews[2]

    def test_lighter_loading_reduces_skew(self):
        lrs = program_factors(np.full((64, 4), 1e-4), 2.5, 2.9)
        hrs = program_factors(np.full((64, 4), 1e-6), 2.5, 2.9)
        assert hrs.d_skew.max() < lrs.d_skew.max()

    def test_beta_below_unity(self):
        decomposition = program_factors(np.full((32, 8), 1e-4), 2.5, 2.9)
        assert np.all(decomposition.beta < 1.0)
        assert np.all(decomposition.beta > 0.0)


class TestReadModels:
    def test_fixed_point_matches_nodal(self, rng):
        g = 10 ** rng.uniform(-6, -4, (48, 8))
        x = rng.random(48)
        net = CrossbarNetwork(g, 2.5)
        exact = net.read(x, 1.0)
        fast = read_output_currents(g, x, 2.5, 1.0)
        assert np.allclose(fast, exact, rtol=0.02)

    def test_zero_wire_is_exact_product(self, rng):
        g = 10 ** rng.uniform(-6, -4, (16, 4))
        x = rng.random(16)
        assert np.allclose(read_output_currents(g, x, 0.0), x @ g)

    def test_batch_matches_loop(self, rng):
        g = 10 ** rng.uniform(-6, -4, (20, 5))
        xb = rng.random((7, 20))
        batched = read_output_currents(g, xb, 2.5)
        looped = np.stack(
            [read_output_currents(g, row, 2.5) for row in xb]
        )
        assert np.allclose(batched, looped)

    def test_chunking_invariant(self, rng):
        g = 10 ** rng.uniform(-6, -4, (20, 5))
        xb = rng.random((9, 20))
        a = read_output_currents(g, xb, 2.5, chunk=3)
        b = read_output_currents(g, xb, 2.5, chunk=256)
        assert np.allclose(a, b)

    def test_input_width_validated(self, rng):
        g = 10 ** rng.uniform(-6, -4, (20, 5))
        with pytest.raises(ValueError, match="width"):
            read_output_currents(g, np.ones(7), 2.5)

    def test_column_gains_predict_nodal_outputs(self, rng):
        g = 10 ** rng.uniform(-6, -4, (48, 8))
        x_ref = rng.random(48) * 0.3
        gains = read_column_gains(g, x_ref, 2.5, 1.0)
        net = CrossbarNetwork(g, 2.5)
        exact = net.read(x_ref, 1.0)
        assert np.allclose((x_ref @ g) * gains, exact, rtol=0.02)

    def test_column_gains_in_unit_interval(self, rng):
        g = 10 ** rng.uniform(-6, -4, (32, 6))
        gains = read_column_gains(g, rng.random(32), 2.5)
        assert np.all(gains > 0) and np.all(gains <= 1)

    def test_column_gains_zero_wire(self, rng):
        g = 10 ** rng.uniform(-6, -4, (8, 3))
        assert np.all(read_column_gains(g, rng.random(8), 0.0) == 1.0)

    def test_per_cell_reference_factors_shape(self, rng):
        g = 10 ** rng.uniform(-6, -4, (16, 4))
        factors = read_attenuation_reference(g, rng.random(16), 2.5)
        assert factors.shape == (16, 4)
        assert np.all(factors > 0) and np.all(factors <= 1)
