"""Tests for the Crossbar read/program unit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, VariationConfig
from repro.xbar.crossbar import IR_MODES, Crossbar


def make_crossbar(rows=16, cols=4, r_wire=2.5, sigma=0.0, seed=0,
                  sense=None):
    return Crossbar(
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=r_wire),
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
        sense=sense,
    )


class TestReadModes:
    def test_invalid_mode_rejected(self):
        xbar = make_crossbar()
        with pytest.raises(ValueError, match="ir_mode"):
            xbar.read(np.ones(16), "magic")

    def test_all_modes_agree_without_wire_resistance(self, rng):
        xbar = make_crossbar(r_wire=0.0)
        xbar.program(np.full((16, 4), 2e-5))
        x = rng.random(16)
        baseline = xbar.read(x, "ideal")
        for mode in IR_MODES:
            assert np.allclose(xbar.read(x, mode), baseline)

    def test_modes_rank_consistently_with_wire_resistance(self, rng):
        xbar = make_crossbar(rows=48, r_wire=2.5)
        xbar.program(np.full((48, 4), 8e-5))
        x = rng.random(48)
        ideal = xbar.read(x, "ideal")
        nodal = xbar.read(x, "nodal")
        fp = xbar.read(x, "fixed_point")
        assert np.all(nodal < ideal)
        assert np.allclose(fp, nodal, rtol=0.02)

    def test_reference_mode_tracks_nodal(self, rng):
        xbar = make_crossbar(rows=48, r_wire=2.5)
        xbar.program(np.full((48, 4), 5e-5))
        x = rng.random((20, 48)) * 0.4
        xbar.set_reference_input(x.mean(axis=0))
        ref = xbar.read(x, "reference")
        nodal = xbar.read(x, "nodal")
        assert np.allclose(ref, nodal, rtol=0.08)

    def test_batch_read_shape(self, rng):
        xbar = make_crossbar()
        out = xbar.read(rng.random((7, 16)), "ideal")
        assert out.shape == (7, 4)

    def test_sense_chain_applied(self):
        adc = ADC(4, 1e-2)
        xbar = make_crossbar(sense=CurrentSense(adc=adc))
        xbar.program(np.full((16, 4), 3.3e-5))
        out = xbar.read(np.ones(16), "ideal")
        assert np.allclose(out % adc.lsb, 0.0, atol=1e-15)


class TestProgramAndUpdate:
    def test_program_sets_conductance(self):
        xbar = make_crossbar()
        target = np.full((16, 4), 4e-5)
        xbar.program(target, with_cycle_noise=False)
        assert np.allclose(xbar.conductance, target)

    def test_update_accumulates(self):
        xbar = make_crossbar()
        g0 = xbar.conductance.copy()
        xbar.update(np.full((16, 4), 1e-6), with_cycle_noise=False)
        assert np.allclose(xbar.conductance, g0 + 1e-6)

    def test_reference_factors_invalidated_on_program(self, rng):
        xbar = make_crossbar(rows=32, r_wire=2.5)
        xbar.program(np.full((32, 4), 2e-5))
        x = rng.random(32)
        before = xbar.read(x, "reference")
        xbar.program(np.full((32, 4), 9e-5))
        after = xbar.read(x, "reference")
        assert not np.allclose(before, after)

    def test_reference_input_validated(self):
        xbar = make_crossbar()
        with pytest.raises(ValueError, match="shape"):
            xbar.set_reference_input(np.ones(5))


class TestSingleCellRead:
    def test_reads_cell_conductance(self):
        xbar = make_crossbar(r_wire=0.0)
        target = np.full((16, 4), 2e-5)
        target[3, 2] = 7e-5
        xbar.program(target, with_cycle_noise=False)
        current = xbar.read_single_cell(3, 2)
        assert current == pytest.approx(7e-5 * xbar.config.v_read)

    def test_custom_read_voltage(self):
        xbar = make_crossbar(r_wire=0.0)
        xbar.program(np.full((16, 4), 2e-5), with_cycle_noise=False)
        assert xbar.read_single_cell(0, 0, v_read=0.5) == pytest.approx(1e-5)
