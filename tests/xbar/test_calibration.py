"""Tests for sense auto-ranging and digital gain calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, VariationConfig
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar


def make_pair(rows=24, cols=4, sigma=0.0, r_wire=0.0, seed=0,
              adc_bits=6, adc_fs=1.0):
    adc = ADC(adc_bits, adc_fs, bipolar=True)
    return DifferentialCrossbar(
        scaler=WeightScaler(1.0),
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=r_wire),
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
        diff_sense=CurrentSense(adc=adc),
    )


class TestCalibrateSense:
    def test_full_scale_tracks_signal_swing(self, rng):
        pair = make_pair(adc_fs=1.0)  # absurdly wide initial range
        w = rng.uniform(-1, 1, (24, 4))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random((50, 24))
        pair.calibrate_sense(x)
        peak = np.max(np.abs(
            pair.positive.read(x, "ideal") - pair.negative.read(x, "ideal")
        ))
        fs = pair.diff_sense.adc.full_scale
        assert peak <= fs <= 3 * peak

    def test_calibration_restores_accuracy(self, rng):
        # With a worst-case-ranged converter the scores quantise to
        # garbage; auto-ranging recovers them.
        pair = make_pair(adc_fs=1.0)
        w = rng.uniform(-1, 1, (24, 4))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random((50, 24))
        ideal = x @ w
        coarse = pair.matvec(x)
        pair.calibrate_sense(x)
        ranged = pair.matvec(x)
        err_coarse = np.mean(np.abs(coarse - ideal))
        err_ranged = np.mean(np.abs(ranged - ideal))
        assert err_ranged < err_coarse / 5

    def test_noop_without_adc(self, rng):
        pair = DifferentialCrossbar(
            WeightScaler(1.0),
            config=CrossbarConfig(rows=8, cols=2, r_wire=0.0),
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            rng=np.random.default_rng(0),
        )
        pair.calibrate_sense(rng.random((5, 8)))  # must not raise

    def test_bit_count_preserved(self, rng):
        pair = make_pair(adc_bits=5)
        pair.program_weights(rng.uniform(-1, 1, (24, 4)),
                             with_cycle_noise=False)
        pair.calibrate_sense(rng.random((20, 24)))
        assert pair.diff_sense.adc.bits == 5
        assert pair.diff_sense.adc.bipolar


class TestDigitalGains:
    def test_fit_corrects_column_gain_error(self, rng):
        pair = make_pair(adc_bits=12)
        w = rng.uniform(-1, 1, (24, 4))
        pair.program_weights(w, with_cycle_noise=False)
        pair.calibrate_sense(rng.random((30, 24)))
        # Inject an artificial per-column gain error through the
        # digital-gain slot itself, then verify calibration learns
        # to undo it (fits against the intended weights).
        x_cal = rng.random((60, 24))
        gains = pair.calibrate_digital_gains(x_cal, w, "ideal")
        scores = pair.matvec(x_cal)
        ideal = x_cal @ w
        assert np.allclose(scores, ideal, atol=0.02)
        assert gains.shape == (4,)

    def test_gains_reset_on_reprogram(self, rng):
        pair = make_pair()
        w = rng.uniform(-1, 1, (24, 4))
        pair.program_weights(w, with_cycle_noise=False)
        pair.calibrate_digital_gains(rng.random((20, 24)), w, "ideal")
        assert pair.digital_gains is not None
        pair.program_weights(w, with_cycle_noise=False)
        assert pair.digital_gains is None

    def test_gain_fit_bounded(self, rng):
        pair = make_pair()
        w = rng.uniform(-1, 1, (24, 4))
        pair.program_weights(w, with_cycle_noise=False)
        gains = pair.calibrate_digital_gains(
            rng.random((20, 24)), 100.0 * w, "ideal"
        )
        assert np.all(gains <= 10.0)

    def test_calibration_fixes_attenuated_reads(self, rng):
        # With wire resistance the read loses gain per column; the
        # digital fit recovers the intended score scale.
        pair = make_pair(rows=48, r_wire=2.5, adc_bits=12)
        w = rng.uniform(-1, 1, (48, 4))
        pair.program_weights(w, with_cycle_noise=False)
        x = rng.random((60, 48)) * 0.5
        pair.set_reference_input(x.mean(axis=0))
        pair.calibrate_sense(x)
        before = pair.matvec(x, "reference")
        pair.calibrate_digital_gains(x, w, "reference")
        after = pair.matvec(x, "reference")
        ideal = x @ w
        assert np.mean(np.abs(after - ideal)) < np.mean(
            np.abs(before - ideal)
        )
