"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for a single test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small 7x7 benchmark shared across tests (rendered once)."""
    return make_dataset(n_train=300, n_test=150, seed=99).undersampled(7)


@pytest.fixture(scope="session")
def small_dataset():
    """Medium 14x14 benchmark for the heavier integration tests."""
    return make_dataset(n_train=600, n_test=300, seed=98).undersampled(14)
