"""Tests for the area/energy overhead models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.overhead import CostModel
from repro.config import CrossbarConfig


@pytest.fixture
def model() -> CostModel:
    return CostModel()


@pytest.fixture
def crossbar() -> CrossbarConfig:
    return CrossbarConfig(rows=196, cols=10, r_wire=2.5)


class TestArea:
    def test_breakdown_positive(self, model, crossbar):
        est = model.area(crossbar, adc_bits=6)
        assert est.cells > 0
        assert est.drivers > 0
        assert est.sensing > 0
        assert est.total == pytest.approx(
            est.cells + est.drivers + est.sensing
        )

    def test_cells_scale_with_rows(self, model, crossbar):
        small = model.area(crossbar, 6, rows=100)
        large = model.area(crossbar, 6, rows=200)
        assert large.cells == pytest.approx(2 * small.cells)

    def test_sensing_scales_with_bits(self, model, crossbar):
        lo = model.area(crossbar, 4)
        hi = model.area(crossbar, 8)
        assert hi.sensing == pytest.approx(2 * lo.sensing)
        assert hi.cells == lo.cells

    def test_invalid_arguments(self, model, crossbar):
        with pytest.raises(ValueError):
            model.area(crossbar, 0)

    def test_overhead_zero_for_no_redundancy(self, model, crossbar):
        assert model.area_overhead(crossbar, 6, 0) == 0.0

    def test_overhead_monotone(self, model, crossbar):
        o25 = model.area_overhead(crossbar, 6, 25)
        o100 = model.area_overhead(crossbar, 6, 100)
        assert 0 < o25 < o100

    def test_overhead_below_row_ratio(self, model, crossbar):
        # Sensing area does not grow with rows, so the macro overhead
        # is below the raw row ratio.
        assert model.area_overhead(crossbar, 6, 98) < 0.5

    def test_negative_redundancy_rejected(self, model, crossbar):
        with pytest.raises(ValueError, match="extra_rows"):
            model.area_overhead(crossbar, 6, -1)


class TestReadEnergy:
    def test_positive_and_split(self, model, crossbar, rng):
        g = np.full((196, 10), 1e-5)
        x = rng.random((8, 196))
        est = model.read_energy((g, g), x, crossbar, 6)
        assert est.array > 0
        assert est.conversion > 0
        assert est.total == pytest.approx(est.array + est.conversion)

    def test_scales_with_conductance(self, model, crossbar, rng):
        x = rng.random((4, 196))
        low = model.read_energy(
            (np.full((196, 10), 1e-6),) * 2, x, crossbar, 6
        )
        high = model.read_energy(
            (np.full((196, 10), 1e-5),) * 2, x, crossbar, 6
        )
        assert high.array == pytest.approx(10 * low.array)

    def test_width_validated(self, model, crossbar, rng):
        with pytest.raises(ValueError, match="width"):
            model.read_energy(
                (np.ones((10, 10)),) * 2, rng.random((2, 196)),
                crossbar, 6,
            )


class TestProgrammingEnergy:
    def test_formula(self, model):
        widths = np.full((2, 2), 1e-6)
        voltages = np.full((2, 2), 2.0)
        g = np.full((2, 2), 1e-5)
        # E = 4 * V^2 g t = 4 * 4 * 1e-5 * 1e-6
        assert model.programming_energy(widths, voltages, g) == (
            pytest.approx(1.6e-10)
        )

    def test_negative_width_rejected(self, model):
        with pytest.raises(ValueError, match="widths"):
            model.programming_energy(
                np.array([[-1.0]]), np.ones((1, 1)), np.ones((1, 1))
            )

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ValueError, match="shapes"):
            model.programming_energy(
                np.ones((2, 2)), np.ones((2, 3)), np.ones((2, 2))
            )
