"""Tests for statistical helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    mean_absolute_deviation,
    relative_discrepancy,
    summarize_array,
)


class TestRelativeDiscrepancy:
    def test_values(self):
        out = relative_discrepancy(np.array([1.1, 0.9]), np.array([1.0, 1.0]))
        assert np.allclose(out, [0.1, 0.1])

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            relative_discrepancy(np.array([1.0]), np.array([0.0]))

    def test_negative_targets_supported(self):
        out = relative_discrepancy(np.array([-1.2]), np.array([-1.0]))
        assert out[0] == pytest.approx(0.2)


class TestMAD:
    def test_constant_array(self):
        assert mean_absolute_deviation(np.full(5, 3.0)) == 0.0

    def test_known_value(self):
        assert mean_absolute_deviation(np.array([0.0, 2.0])) == 1.0


class TestSummarize:
    def test_keys_and_values(self):
        s = summarize_array(np.array([1.0, 2.0, 3.0]))
        assert s["mean"] == 2.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["median"] == 2.0
        assert s["std"] == pytest.approx(np.sqrt(2 / 3))
