"""Tests for lognormal fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.lognormal import (
    fit_lognormal_multipliers,
    ks_lognormal,
)


class TestFit:
    def test_recovers_parameters(self, rng):
        theta = rng.normal(0.1, 0.5, 20000)
        fit = fit_lognormal_multipliers(np.exp(theta))
        assert fit.mu == pytest.approx(0.1, abs=0.02)
        assert fit.sigma == pytest.approx(0.5, rel=0.03)
        assert fit.n == 20000

    def test_requires_two_samples(self):
        with pytest.raises(ValueError, match="samples"):
            fit_lognormal_multipliers(np.array([1.0]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            fit_lognormal_multipliers(np.array([1.0, -1.0]))

    def test_accepts_2d_input(self, rng):
        values = np.exp(rng.normal(0, 0.3, (10, 10)))
        fit = fit_lognormal_multipliers(values)
        assert fit.n == 100


class TestKS:
    def test_lognormal_data_accepted(self, rng):
        values = np.exp(rng.normal(0, 0.4, 1000))
        fit = fit_lognormal_multipliers(values)
        assert ks_lognormal(values, fit) > 0.01

    def test_uniform_data_rejected(self, rng):
        values = rng.uniform(0.5, 1.5, 1000)
        fit = fit_lognormal_multipliers(values)
        assert ks_lognormal(values, fit) < 0.05

    def test_rejects_nonpositive(self, rng):
        values = np.exp(rng.normal(0, 0.4, 100))
        fit = fit_lognormal_multipliers(values)
        with pytest.raises(ValueError, match="positive"):
            ks_lognormal(np.array([0.0, 1.0]), fit)
