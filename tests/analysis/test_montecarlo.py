"""Tests for the Monte-Carlo harness."""

from __future__ import annotations

import dataclasses
import functools

import numpy as np
import pytest

from repro.analysis.montecarlo import child_rngs, run_monte_carlo
from repro.runtime import RunLog, RuntimeConfig, use_run_log, use_runtime


class TestChildRngs:
    def test_count(self):
        assert len(child_rngs(0, 5)) == 5

    def test_independent_streams(self):
        rngs = child_rngs(0, 3)
        draws = [r.random(10) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic(self):
        a = [r.random() for r in child_rngs(42, 4)]
        b = [r.random() for r in child_rngs(42, 4)]
        assert a == b

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            child_rngs(0, 0)


class TestRunMonteCarlo:
    def test_scalar_statistics(self):
        summary = run_monte_carlo(lambda rng: rng.normal(5.0, 1.0),
                                  trials=2000, seed=1)
        assert summary.mean == pytest.approx(5.0, abs=0.1)
        assert summary.std == pytest.approx(1.0, abs=0.1)
        assert summary.n_trials == 2000

    def test_vector_statistics(self):
        summary = run_monte_carlo(
            lambda rng: np.array([1.0, rng.random()]), trials=50, seed=2
        )
        assert summary.values.shape == (50, 2)
        assert summary.mean[0] == 1.0
        assert summary.std[0] == 0.0

    def test_percentiles_ordered(self):
        summary = run_monte_carlo(lambda rng: rng.random(), trials=500,
                                  seed=3)
        assert summary.percentile_5 < summary.mean < summary.percentile_95

    def test_deterministic_by_seed(self):
        a = run_monte_carlo(lambda rng: rng.random(), trials=10, seed=9)
        b = run_monte_carlo(lambda rng: rng.random(), trials=10, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_single_trial_std_zero_division_safe(self):
        summary = run_monte_carlo(lambda rng: 1.0, trials=1, seed=0)
        assert summary.std == 0.0

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            run_monte_carlo(lambda rng: rng.random(), trials=0)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            run_monte_carlo(lambda rng: rng.random(), trials=-3)


def _mc_trial(rng: np.random.Generator, scale: float = 1.0):
    return rng.normal(size=2) * scale


def _mc_batch(rngs, scale: float = 1.0):
    return np.stack([rng.normal(size=2) * scale for rng in rngs])


@dataclasses.dataclass(frozen=True)
class _TrialConfig:
    scale: float = 1.0


class TestParallelDeterminism:
    def test_values_identical_at_jobs_1_2_4(self):
        trial = functools.partial(_mc_trial, scale=3.0)
        baseline = run_monte_carlo(trial, trials=25, seed=17, jobs=1)
        for jobs in (2, 4):
            summary = run_monte_carlo(trial, trials=25, seed=17,
                                      jobs=jobs)
            assert np.array_equal(baseline.values, summary.values)
            assert np.array_equal(baseline.mean, summary.mean)
            assert np.array_equal(baseline.std, summary.std)

    def test_matches_serial_child_rngs_derivation(self):
        # The engine must reproduce the original all-up-front spawn
        # tree exactly, so pre-engine results stay valid.
        summary = run_monte_carlo(
            functools.partial(_mc_trial), trials=12, seed=5, jobs=2
        )
        legacy = np.asarray([_mc_trial(rng) for rng in child_rngs(5, 12)])
        assert np.array_equal(summary.values, legacy)

    def test_ambient_jobs_do_not_change_values(self):
        trial = functools.partial(_mc_trial)
        baseline = run_monte_carlo(trial, trials=9, seed=4)
        with use_runtime(RuntimeConfig(jobs=2)):
            ambient = run_monte_carlo(trial, trials=9, seed=4)
        assert np.array_equal(baseline.values, ambient.values)


class TestArtifactCaching:
    def test_miss_then_hit(self, tmp_path):
        trial = functools.partial(_mc_trial, scale=2.0)
        cfg = _TrialConfig(scale=2.0)
        log = RunLog()
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)), \
                use_run_log(log):
            first = run_monte_carlo(trial, trials=8, seed=3,
                                    cache_config=cfg)
            second = run_monte_carlo(trial, trials=8, seed=3,
                                     cache_config=cfg)
        assert np.array_equal(first.values, second.values)
        assert [b.cache_hit for b in log.batches] == [False, True]
        # The hit executed zero trials.
        assert log.batches[1].trials == 0

    def test_config_change_invalidates(self, tmp_path):
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)):
            run_monte_carlo(functools.partial(_mc_trial, scale=2.0),
                            trials=8, seed=3,
                            cache_config=_TrialConfig(scale=2.0))
            log = RunLog()
            with use_run_log(log):
                run_monte_carlo(functools.partial(_mc_trial, scale=4.0),
                                trials=8, seed=3,
                                cache_config=_TrialConfig(scale=4.0))
        assert [b.cache_hit for b in log.batches] == [False]

    def test_seed_and_trials_invalidate(self, tmp_path):
        trial = functools.partial(_mc_trial)
        cfg = _TrialConfig()
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)):
            run_monte_carlo(trial, trials=8, seed=3, cache_config=cfg)
            log = RunLog()
            with use_run_log(log):
                run_monte_carlo(trial, trials=8, seed=4, cache_config=cfg)
                run_monte_carlo(trial, trials=9, seed=3, cache_config=cfg)
        assert [b.cache_hit for b in log.batches] == [False, False]

    def test_no_cache_without_config(self, tmp_path):
        log = RunLog()
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)), \
                use_run_log(log):
            run_monte_carlo(functools.partial(_mc_trial), trials=4,
                            seed=0)
            run_monte_carlo(functools.partial(_mc_trial), trials=4,
                            seed=0)
        assert [b.cache_hit for b in log.batches] == [False, False]


class TestBatchedKernel:
    def test_bit_identical_to_looped(self):
        looped = run_monte_carlo(
            functools.partial(_mc_trial, scale=2.0), trials=21, seed=13,
            jobs=1,
        )
        batched = run_monte_carlo(
            functools.partial(_mc_trial, scale=2.0), trials=21, seed=13,
            jobs=1, batch_trial=functools.partial(_mc_batch, scale=2.0),
        )
        assert np.array_equal(looped.values, batched.values)

    def test_identical_across_jobs(self):
        baseline = run_monte_carlo(
            functools.partial(_mc_trial), trials=17, seed=6, jobs=1,
            batch_trial=functools.partial(_mc_batch),
        )
        for jobs in (2, 4):
            summary = run_monte_carlo(
                functools.partial(_mc_trial), trials=17, seed=6, jobs=jobs,
                batch_trial=functools.partial(_mc_batch),
            )
            assert np.array_equal(baseline.values, summary.values)

    def test_shares_cache_key_with_looped(self, tmp_path):
        # A batched run must hit artifacts a looped run populated and
        # vice versa: the kernel is an execution detail, not an input.
        cfg = _TrialConfig(scale=2.0)
        log = RunLog()
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)), \
                use_run_log(log):
            looped = run_monte_carlo(
                functools.partial(_mc_trial, scale=2.0), trials=8,
                seed=3, cache_config=cfg,
            )
            batched = run_monte_carlo(
                functools.partial(_mc_trial, scale=2.0), trials=8,
                seed=3, cache_config=cfg,
                batch_trial=functools.partial(_mc_batch, scale=2.0),
            )
        assert [b.cache_hit for b in log.batches] == [False, True]
        assert np.array_equal(looped.values, batched.values)

    def test_batched_populates_cache_for_looped(self, tmp_path):
        cfg = _TrialConfig(scale=1.5)
        log = RunLog()
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)), \
                use_run_log(log):
            batched = run_monte_carlo(
                functools.partial(_mc_trial, scale=1.5), trials=8,
                seed=3, cache_config=cfg,
                batch_trial=functools.partial(_mc_batch, scale=1.5),
            )
            looped = run_monte_carlo(
                functools.partial(_mc_trial, scale=1.5), trials=8,
                seed=3, cache_config=cfg,
            )
        assert [b.cache_hit for b in log.batches] == [False, True]
        assert np.array_equal(batched.values, looped.values)
