"""Tests for the Monte-Carlo harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import child_rngs, run_monte_carlo


class TestChildRngs:
    def test_count(self):
        assert len(child_rngs(0, 5)) == 5

    def test_independent_streams(self):
        rngs = child_rngs(0, 3)
        draws = [r.random(10) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic(self):
        a = [r.random() for r in child_rngs(42, 4)]
        b = [r.random() for r in child_rngs(42, 4)]
        assert a == b

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            child_rngs(0, 0)


class TestRunMonteCarlo:
    def test_scalar_statistics(self):
        summary = run_monte_carlo(lambda rng: rng.normal(5.0, 1.0),
                                  trials=2000, seed=1)
        assert summary.mean == pytest.approx(5.0, abs=0.1)
        assert summary.std == pytest.approx(1.0, abs=0.1)
        assert summary.n_trials == 2000

    def test_vector_statistics(self):
        summary = run_monte_carlo(
            lambda rng: np.array([1.0, rng.random()]), trials=50, seed=2
        )
        assert summary.values.shape == (50, 2)
        assert summary.mean[0] == 1.0
        assert summary.std[0] == 0.0

    def test_percentiles_ordered(self):
        summary = run_monte_carlo(lambda rng: rng.random(), trials=500,
                                  seed=3)
        assert summary.percentile_5 < summary.mean < summary.percentile_95

    def test_deterministic_by_seed(self):
        a = run_monte_carlo(lambda rng: rng.random(), trials=10, seed=9)
        b = run_monte_carlo(lambda rng: rng.random(), trials=10, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_single_trial_std_zero_division_safe(self):
        summary = run_monte_carlo(lambda rng: 1.0, trials=1, seed=0)
        assert summary.std == 0.0
