"""Tests for the chi-square variation-norm bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chi2 import (
    expected_theta_norm,
    norm_exceedance_probability,
    rho_bound,
)


class TestRhoBound:
    def test_zero_sigma(self):
        assert rho_bound(0.0, 100) == 0.0

    def test_monotone_in_sigma(self):
        assert rho_bound(0.8, 100) > rho_bound(0.4, 100)

    def test_monotone_in_n(self):
        assert rho_bound(0.5, 400) > rho_bound(0.5, 100)

    def test_monotone_in_confidence(self):
        assert rho_bound(0.5, 100, 0.99) > rho_bound(0.5, 100, 0.9)

    def test_scales_like_sqrt_n_for_large_n(self):
        r1 = rho_bound(0.5, 1000)
        r2 = rho_bound(0.5, 4000)
        assert r2 / r1 == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            rho_bound(-0.1, 10)
        with pytest.raises(ValueError, match="n"):
            rho_bound(0.5, 0)
        with pytest.raises(ValueError, match="confidence"):
            rho_bound(0.5, 10, 1.0)

    def test_bound_holds_empirically(self):
        rng = np.random.default_rng(0)
        sigma, n, conf = 0.6, 200, 0.95
        rho = rho_bound(sigma, n, conf)
        norms = np.linalg.norm(
            rng.normal(0, sigma, size=(4000, n)), axis=1
        )
        coverage = np.mean(norms <= rho)
        assert coverage == pytest.approx(conf, abs=0.02)


class TestExceedance:
    def test_consistent_with_rho(self):
        rho = rho_bound(0.5, 100, 0.9)
        p = norm_exceedance_probability(rho, 0.5, 100)
        assert p == pytest.approx(0.1, rel=1e-6)

    def test_zero_sigma_never_exceeds(self):
        assert norm_exceedance_probability(1.0, 0.0, 10) == 0.0


class TestExpectedNorm:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(1)
        sigma, n = 0.6, 300
        expected = expected_theta_norm(sigma, n)
        norms = np.linalg.norm(
            rng.normal(0, sigma, size=(3000, n)), axis=1
        )
        assert expected == pytest.approx(norms.mean(), rel=0.01)

    def test_large_n_stays_finite(self):
        assert np.isfinite(expected_theta_norm(0.5, 100000))

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            expected_theta_norm(-1.0, 10)
        with pytest.raises(ValueError, match="n"):
            expected_theta_norm(0.5, 0)
