"""Failure-injection and degenerate-input behaviour.

The pipeline must stay well-defined at the edges of its operating
envelope: extreme variation, fully defective fabric, degenerate
datasets, and zero weights.  Rates may collapse to chance -- they must
not crash, hang, or return values outside [0, 1].
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import run_amp
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.cld import CLDConfig, train_cld
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.self_tuning import SelfTuningConfig, tune_gamma
from repro.core.vat import VATConfig, train_vat
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def spec_with(sigma=0.0, defect_rate=0.0, rows=49):
    return HardwareSpec(
        variation=VariationConfig(sigma=sigma, defect_rate=defect_rate),
        crossbar=CrossbarConfig(rows=rows, cols=10, r_wire=0.0),
    )


class TestExtremeVariation:
    def test_sigma_three_completes_with_valid_rate(self, tiny_dataset):
        ds = tiny_dataset
        pair = build_pair(
            spec_with(sigma=3.0, rows=ds.n_features),
            WeightScaler(1.0),
            np.random.default_rng(0),
        )
        w = np.random.default_rng(1).uniform(-1, 1, (ds.n_features, 10))
        program_pair_open_loop(pair, w)
        rate = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        assert 0.0 <= rate <= 1.0

    def test_vat_with_huge_sigma_still_trains(self, tiny_dataset):
        ds = tiny_dataset
        outcome = train_vat(
            ds.x_train, ds.y_train, 10,
            VATConfig(gamma=1.0, sigma=3.0, gdt=GDTConfig(epochs=20)),
        )
        assert np.all(np.isfinite(outcome.weights))


class TestFullyDefectiveFabric:
    def test_all_stuck_crossbar_is_handled(self, tiny_dataset):
        ds = tiny_dataset
        pair = build_pair(
            spec_with(defect_rate=1.0, rows=ds.n_features),
            WeightScaler(1.0),
            np.random.default_rng(2),
        )
        w = np.random.default_rng(3).uniform(-1, 1, (ds.n_features, 10))
        program_pair_open_loop(pair, w)
        rate = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        assert 0.0 <= rate <= 1.0

    def test_amp_on_all_stuck_fabric_completes(self, tiny_dataset):
        ds = tiny_dataset
        pair = build_pair(
            spec_with(defect_rate=1.0, rows=ds.n_features),
            WeightScaler(1.0),
            np.random.default_rng(4),
        )
        w = np.random.default_rng(5).uniform(-1, 1, (ds.n_features, 10))
        result = run_amp(
            pair, w, ds.x_train.mean(axis=0), SensingConfig(adc_bits=6)
        )
        assert result.mapping.assignment.size == ds.n_features

    def test_cld_on_all_stuck_fabric_terminates(self, tiny_dataset):
        ds = tiny_dataset
        pair = build_pair(
            spec_with(defect_rate=1.0, rows=ds.n_features),
            WeightScaler(1.0),
            np.random.default_rng(6),
        )
        outcome = train_cld(
            pair, ds.x_train, ds.y_train, 10,
            CLDConfig(epochs=3, ir_drop_in_programming=False,
                      ir_mode_read="ideal"),
            np.random.default_rng(6),
        )
        assert 0.0 <= outcome.training_rate <= 1.0


class TestDegenerateData:
    def test_zero_weights_programmable(self, tiny_dataset):
        ds = tiny_dataset
        pair = build_pair(
            spec_with(rows=ds.n_features), WeightScaler(1.0),
            np.random.default_rng(7),
        )
        program_pair_open_loop(pair, np.zeros((ds.n_features, 10)))
        # Both arrays idle at g_off; only the baseline's cycle noise
        # leaks through (a fraction of a percent of full scale).
        assert np.allclose(pair.effective_weights(), 0.0, atol=1e-2)

    def test_constant_inputs_trainable(self):
        x = np.full((40, 8), 0.5)
        labels = np.arange(40) % 10
        outcome = train_vat(
            x, labels, 10, VATConfig(gamma=0.2, gdt=GDTConfig(epochs=10))
        )
        assert np.all(np.isfinite(outcome.weights))

    def test_all_dark_inputs_trainable(self):
        x = np.zeros((30, 8))
        labels = np.arange(30) % 10
        outcome = train_vat(
            x, labels, 10, VATConfig(gamma=0.2, gdt=GDTConfig(epochs=5))
        )
        assert np.all(outcome.weights == 0.0)

    def test_self_tuning_with_two_samples_per_class(self):
        rng = np.random.default_rng(8)
        labels = np.repeat(np.arange(10), 2)
        x = np.clip(rng.random((20, 12)), 0, 1)
        result = tune_gamma(
            x, labels, 10, sigma=0.5,
            config=SelfTuningConfig(
                gammas=(0.0, 0.5), n_injections=2,
                gdt=GDTConfig(epochs=5),
            ),
            rng=rng,
        )
        assert result.best_gamma in (0.0, 0.5)

    def test_single_feature_crossbar(self):
        pair = build_pair(
            spec_with(rows=1), WeightScaler(1.0),
            np.random.default_rng(9),
        )
        program_pair_open_loop(pair, np.ones((1, 10)))
        out = pair.matvec(np.array([1.0]))
        assert out.shape == (10,)
        assert np.all(np.isfinite(out))
