"""Tests for retention drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.devices.memristor import MemristorArray
from repro.devices.retention import (
    RetentionConfig,
    age_array,
    age_pair,
    drift_factor,
    equivalent_sigma_at,
    sample_drift_exponents,
)
from repro.nn.gdt import GDTConfig
from repro.xbar.mapping import WeightScaler


def make_array(seed=0):
    return MemristorArray(
        (8, 4),
        variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
    )


class TestDriftFactor:
    def test_no_time_no_drift(self):
        assert drift_factor(0.05, 0.0, 1.0) == pytest.approx(1.0)

    def test_monotone_decay(self):
        f = [float(drift_factor(0.05, t, 1.0)) for t in (1, 10, 100)]
        assert f[0] > f[1] > f[2]

    def test_zero_exponent_is_stable(self):
        assert drift_factor(0.0, 1e6, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="elapsed"):
            drift_factor(0.05, -1.0, 1.0)
        with pytest.raises(ValueError, match="t0"):
            drift_factor(0.05, 1.0, 0.0)


class TestSampleExponents:
    def test_positive_and_median(self, rng):
        cfg = RetentionConfig(nu_median=0.02, nu_sigma=0.5)
        nu = sample_drift_exponents(cfg, (20000,), rng)
        assert np.all(nu > 0)
        assert np.median(nu) == pytest.approx(0.02, rel=0.05)

    def test_zero_median_gives_zero(self, rng):
        cfg = RetentionConfig(nu_median=0.0)
        assert np.all(sample_drift_exponents(cfg, (10,), rng) == 0.0)


class TestAgeArray:
    def test_drift_moves_toward_hrs(self):
        array = make_array()
        target = np.full((8, 4), 5e-5)
        array.program_conductance(target)
        g0 = array.conductance.copy()
        age_array(array, 1e4, RetentionConfig(),
                  np.random.default_rng(1))
        assert np.all(array.conductance <= g0 + 1e-15)
        assert np.any(array.conductance < g0)

    def test_aging_is_consistent_across_steps(self):
        cfg = RetentionConfig()
        a1 = make_array(seed=2)
        a2 = make_array(seed=2)
        target = np.full((8, 4), 5e-5)
        a1.program_conductance(target)
        a2.program_conductance(target)
        rng = np.random.default_rng(3)
        age_array(a1, 100.0, cfg, np.random.default_rng(3))
        age_array(a1, 100.0, cfg)
        age_array(a2, 200.0, cfg, rng)
        assert np.allclose(a1.conductance, a2.conductance, rtol=1e-9)

    def test_never_below_g_off(self):
        array = make_array()
        array.program_conductance(np.full((8, 4), 2e-6))
        age_array(array, 1e9, RetentionConfig(nu_median=0.5),
                  np.random.default_rng(4))
        assert np.all(array.conductance >= array.device.g_off - 1e-18)


class TestEquivalentSigma:
    def test_grows_with_time(self):
        cfg = RetentionConfig()
        s1 = equivalent_sigma_at(cfg, 1e2)
        s2 = equivalent_sigma_at(cfg, 1e6)
        assert 0 < s1 < s2


class TestDriftDegradesClassifier:
    def test_test_rate_decays_with_idle_time(self, tiny_dataset):
        ds = tiny_dataset
        w = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
        ).weights
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.2, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=ds.n_features, cols=10,
                                    r_wire=0.0),
            quantize_read=False,
        )
        cfg = RetentionConfig(nu_median=0.05, nu_sigma=0.8)
        pair = build_pair(spec, WeightScaler(1.0),
                          np.random.default_rng(5))
        program_pair_open_loop(pair, w)
        fresh = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        age_pair(pair, 1e7, cfg, np.random.default_rng(6))
        aged = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        assert aged < fresh

    def test_refresh_restores_accuracy(self, tiny_dataset):
        ds = tiny_dataset
        w = train_old(
            ds.x_train, ds.y_train, 10, OLDConfig(gdt=GDTConfig(epochs=60))
        ).weights
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.2, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=ds.n_features, cols=10,
                                    r_wire=0.0),
            quantize_read=False,
        )
        cfg = RetentionConfig(nu_median=0.05, nu_sigma=0.8)
        pair = build_pair(spec, WeightScaler(1.0),
                          np.random.default_rng(7))
        program_pair_open_loop(pair, w)
        fresh = hardware_test_rate(pair, ds.x_test, ds.y_test, "ideal")
        age_pair(pair, 1e7, cfg, np.random.default_rng(8))
        program_pair_open_loop(pair, w)  # refresh
        refreshed = hardware_test_rate(pair, ds.x_test, ds.y_test,
                                       "ideal")
        assert refreshed >= fresh - 0.05
