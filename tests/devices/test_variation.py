"""Tests for the lognormal variation models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import VariationConfig
from repro.devices.variation import VariationModel, lognormal_multipliers


class TestLognormalMultipliers:
    def test_sigma_zero_gives_ones(self, rng):
        m = lognormal_multipliers(rng, 0.0, (5, 5))
        assert np.all(m == 1.0)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError, match="sigma"):
            lognormal_multipliers(rng, -0.1, (2,))

    @given(sigma=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_multipliers_positive_and_log_centered(self, sigma):
        rng = np.random.default_rng(7)
        m = lognormal_multipliers(rng, sigma, (4000,))
        assert np.all(m > 0)
        assert np.mean(np.log(m)) == pytest.approx(0.0, abs=4 * sigma / 60)

    def test_log_std_matches_sigma(self, rng):
        m = lognormal_multipliers(rng, 0.6, (20000,))
        assert np.std(np.log(m)) == pytest.approx(0.6, rel=0.05)


class TestVariationModel:
    def test_parametric_theta_shape_and_stats(self, rng):
        model = VariationModel(VariationConfig(sigma=0.5), rng)
        theta = model.sample_parametric_theta((100, 50))
        assert theta.shape == (100, 50)
        assert np.std(theta) == pytest.approx(0.5, rel=0.1)

    def test_sigma_zero_parametric_is_zero(self, rng):
        model = VariationModel(VariationConfig(sigma=0.0), rng)
        assert np.all(model.sample_parametric_theta((3, 3)) == 0.0)

    def test_cycle_noise_small(self, rng):
        model = VariationModel(VariationConfig(sigma_cycle=0.03), rng)
        eta = model.sample_cycle((5000,))
        assert np.std(np.log(eta)) == pytest.approx(0.03, rel=0.1)

    def test_apply_multiplies(self, rng):
        model = VariationModel(VariationConfig(sigma=0.4, sigma_cycle=0.0),
                               rng)
        target = np.full((4, 4), 2.0)
        theta = np.log(np.full((4, 4), 1.5))
        actual = model.apply(target, theta, with_cycle_noise=False)
        assert np.allclose(actual, 3.0)

    def test_apply_with_cycle_noise_differs_between_calls(self, rng):
        model = VariationModel(VariationConfig(sigma_cycle=0.05), rng)
        target = np.ones((8, 8))
        theta = np.zeros((8, 8))
        a = model.apply(target, theta)
        b = model.apply(target, theta)
        assert not np.allclose(a, b)

    def test_apply_shape_mismatch_raises(self, rng):
        model = VariationModel(rng=rng)
        with pytest.raises(ValueError, match="shape"):
            model.apply(np.ones((2, 2)), np.zeros((3, 3)))

    def test_no_defects_by_default(self, rng):
        model = VariationModel(VariationConfig(), rng)
        assert np.all(model.sample_defects((20, 20)) == 0)

    def test_defect_rate_respected(self, rng):
        cfg = VariationConfig(defect_rate=0.2, defect_lrs_fraction=0.5)
        model = VariationModel(cfg, rng)
        defects = model.sample_defects((200, 200))
        rate = np.mean(defects != 0)
        assert rate == pytest.approx(0.2, abs=0.02)
        assert np.any(defects == 1) and np.any(defects == -1)

    def test_defect_polarity_fraction(self, rng):
        cfg = VariationConfig(defect_rate=0.5, defect_lrs_fraction=1.0)
        model = VariationModel(cfg, rng)
        defects = model.sample_defects((100, 100))
        assert np.all(defects >= 0)
