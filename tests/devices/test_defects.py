"""Tests for stuck-at defect modelling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DeviceConfig
from repro.devices.defects import (
    HEALTHY,
    STUCK_AT_HRS,
    STUCK_AT_LRS,
    apply_defects_to_conductance,
    count_defects,
    defect_theta,
)


@pytest.fixture
def device() -> DeviceConfig:
    return DeviceConfig()


class TestDefectTheta:
    def test_healthy_cells_get_zero(self, device):
        defects = np.zeros((3, 3), dtype=int)
        targets = np.full((3, 3), 1e-5)
        assert np.all(defect_theta(defects, targets, device) == 0.0)

    def test_stuck_lrs_theta_reproduces_g_on(self, device):
        defects = np.array([[STUCK_AT_LRS]])
        targets = np.array([[1e-5]])
        theta = defect_theta(defects, targets, device)
        assert targets[0, 0] * np.exp(theta[0, 0]) == pytest.approx(
            device.g_on
        )

    def test_stuck_hrs_theta_reproduces_g_off(self, device):
        defects = np.array([[STUCK_AT_HRS]])
        targets = np.array([[1e-5]])
        theta = defect_theta(defects, targets, device)
        assert targets[0, 0] * np.exp(theta[0, 0]) == pytest.approx(
            device.g_off
        )

    def test_shape_mismatch_raises(self, device):
        with pytest.raises(ValueError, match="shape"):
            defect_theta(np.zeros((2, 2), dtype=int), np.ones((3, 3)), device)

    def test_nonpositive_target_raises(self, device):
        with pytest.raises(ValueError, match="positive"):
            defect_theta(
                np.zeros((1, 1), dtype=int), np.zeros((1, 1)), device
            )


class TestApplyDefects:
    def test_overwrites_only_defective_cells(self, device):
        g = np.full((2, 2), 5e-5)
        defects = np.array([[HEALTHY, STUCK_AT_LRS],
                            [STUCK_AT_HRS, HEALTHY]])
        out = apply_defects_to_conductance(g, defects, device)
        assert out[0, 0] == 5e-5
        assert out[0, 1] == device.g_on
        assert out[1, 0] == device.g_off
        assert out[1, 1] == 5e-5

    def test_input_not_mutated(self, device):
        g = np.full((2, 2), 5e-5)
        defects = np.full((2, 2), STUCK_AT_LRS)
        apply_defects_to_conductance(g, defects, device)
        assert np.all(g == 5e-5)

    def test_shape_mismatch_raises(self, device):
        with pytest.raises(ValueError, match="shape"):
            apply_defects_to_conductance(
                np.ones((2, 3)), np.zeros((2, 2), dtype=int), device
            )


class TestCountDefects:
    def test_counts(self):
        defects = np.array([[0, 1, -1], [0, 0, 1]])
        counts = count_defects(defects)
        assert counts == {
            "healthy": 3,
            "stuck_at_lrs": 2,
            "stuck_at_hrs": 1,
        }
