"""Tests for the memristor switching-dynamics model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DeviceConfig
from repro.devices.switching import SwitchingModel, switching_rate


@pytest.fixture
def model() -> SwitchingModel:
    return SwitchingModel()


class TestCalibrationAnchors:
    """The model reproduces the paper's Fig. 1(a) anchor points."""

    def test_reset_at_2v9_lands_near_900k(self, model):
        s = model.apply_pulse(1.0, 2.9, 0.5e-6, "reset")
        r = float(model.resistance_of(s))
        assert 0.8e6 < r < 1.0e6

    def test_reset_at_2v8_lands_near_400k(self, model):
        s = model.apply_pulse(1.0, 2.8, 0.5e-6, "reset")
        r = float(model.resistance_of(s))
        assert 0.35e6 < r < 0.47e6

    def test_half_select_disturb_is_negligible(self, model):
        disturb = model.half_select_disturb(0.5e-6)
        assert disturb < 0.01

    def test_half_select_disturb_set_polarity(self, model):
        assert model.half_select_disturb(0.5e-6, "set") < 0.01


class TestRate:
    def test_rate_increases_with_voltage(self, model):
        rates = model.rate(np.array([1.0, 2.0, 3.0]), "set")
        assert np.all(np.diff(rates) > 0)

    def test_rate_exponential_regime(self, model):
        # In the exp regime, +v0 of voltage multiplies the rate by ~e.
        d = model.device
        r1 = float(model.rate(2.5, "set"))
        r2 = float(model.rate(2.5 + d.v0_set, "set"))
        assert r2 / r1 == pytest.approx(np.e, rel=0.01)

    def test_rate_rejects_bad_polarity(self, model):
        with pytest.raises(ValueError, match="polarity"):
            model.rate(1.0, "sideways")

    def test_switching_rate_function(self):
        assert switching_rate(0.0, 10.0, 0.2) == 0.0
        assert switching_rate(1.0, 10.0, 0.2) > 0


class TestStateConversions:
    def test_endpoints(self, model):
        d = model.device
        assert model.conductance_of(0.0) == pytest.approx(d.g_off)
        assert model.conductance_of(1.0) == pytest.approx(d.g_on)

    def test_state_of_clips(self, model):
        d = model.device
        assert model.state_of(d.g_off / 2) == 0.0
        assert model.state_of(d.g_on * 2) == 1.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, s):
        model = SwitchingModel()
        g = model.conductance_of(s)
        assert model.state_of(g) == pytest.approx(s, abs=1e-9)


class TestApplyPulse:
    def test_set_moves_toward_one(self, model):
        s = model.apply_pulse(0.2, 2.9, 1e-7, "set")
        assert s > 0.2

    def test_reset_moves_toward_zero(self, model):
        s = model.apply_pulse(0.8, 2.9, 1e-7, "reset")
        assert s < 0.8

    def test_zero_width_is_identity(self, model):
        assert model.apply_pulse(0.5, 2.9, 0.0, "set") == pytest.approx(0.5)

    def test_long_pulse_saturates(self, model):
        assert model.apply_pulse(0.5, 2.9, 1.0, "set") == pytest.approx(1.0)
        assert model.apply_pulse(0.5, 2.9, 1.0, "reset") == pytest.approx(0.0)

    def test_vectorised(self, model):
        states = np.array([0.1, 0.5, 0.9])
        out = model.apply_pulse(states, 2.9, 1e-7, "set")
        assert out.shape == (3,)
        assert np.all(out > states)


class TestPulseWidthInversion:
    @given(
        s0=st.floats(min_value=0.0, max_value=0.89),
        frac=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_set_roundtrip(self, s0, frac):
        model = SwitchingModel()
        s_target = s0 + frac * (1.0 - s0 - 0.01)
        width = model.pulse_width_for(s0, s_target, 2.9, "set")
        achieved = model.apply_pulse(s0, 2.9, width, "set")
        assert achieved == pytest.approx(s_target, abs=1e-9)

    def test_reset_roundtrip(self, model):
        width = model.pulse_width_for(0.9, 0.3, 2.9, "reset")
        achieved = model.apply_pulse(0.9, 2.9, width, "reset")
        assert achieved == pytest.approx(0.3, abs=1e-12)

    def test_wrong_polarity_raises(self, model):
        with pytest.raises(ValueError, match="polarity"):
            model.pulse_width_for(0.2, 0.8, 2.9, "reset")

    def test_rail_target_raises(self, model):
        with pytest.raises(ValueError, match="rail"):
            model.pulse_width_for(0.5, 1.0, 2.9, "set")

    def test_no_move_gives_zero_width(self, model):
        assert model.pulse_width_for(0.4, 0.4, 2.9, "set") == 0.0

    def test_lower_voltage_needs_longer_pulse(self, model):
        w_hi = model.pulse_width_for(0.2, 0.6, 2.9, "set")
        w_lo = model.pulse_width_for(0.2, 0.6, 2.5, "set")
        assert w_lo > w_hi


class TestNonlinearityFactor:
    def test_full_voltage_is_unity(self, model):
        d = model.device
        assert model.nonlinearity_factor(d.v_set, "set") == pytest.approx(1.0)

    def test_degraded_voltage_slows_switching_severely(self, model):
        d = model.device
        factor = float(model.nonlinearity_factor(d.v_set * 0.5, "set"))
        # Half the voltage -> orders of magnitude slower (Section 3.2).
        assert factor < 1e-2

    def test_monotone_in_voltage(self, model):
        d = model.device
        vs = d.v_set * np.array([0.5, 0.7, 0.9, 1.0])
        factors = model.nonlinearity_factor(vs, "set")
        assert np.all(np.diff(factors) > 0)
