"""Tests for the fabricated memristor array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DeviceConfig, VariationConfig
from repro.devices.memristor import MemristorArray


def make_array(sigma=0.0, sigma_cycle=0.0, defect_rate=0.0, seed=0,
               shape=(8, 4)):
    return MemristorArray(
        shape,
        device=DeviceConfig(),
        variation=VariationConfig(
            sigma=sigma, sigma_cycle=sigma_cycle, defect_rate=defect_rate
        ),
        rng=np.random.default_rng(seed),
    )


class TestConstruction:
    def test_starts_at_hrs(self):
        array = make_array()
        assert np.allclose(array.conductance, array.device.g_off)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            MemristorArray((0, 4))

    def test_theta_fixed_at_fabrication(self):
        array = make_array(sigma=0.5)
        theta_before = array.theta.copy()
        array.program_conductance(np.full((8, 4), 1e-5))
        assert np.array_equal(array.theta, theta_before)

    def test_describe(self):
        array = make_array(sigma=0.5)
        d = array.describe()
        assert d["rows"] == 8 and d["cols"] == 4
        assert d["theta_std"] > 0


class TestOpenLoopProgramming:
    def test_ideal_array_lands_on_target(self):
        array = make_array()
        target = np.full((8, 4), 2e-5)
        achieved = array.program_conductance(target)
        assert np.allclose(achieved, target)

    def test_variation_multiplies_target(self):
        array = make_array(sigma=0.5, seed=3)
        target = np.full((8, 4), 1e-5)
        achieved = array.program_conductance(target, with_cycle_noise=False)
        expected = np.clip(
            target * np.exp(array.theta),
            array.device.g_off,
            array.device.g_on,
        )
        assert np.allclose(achieved, expected)

    def test_result_clipped_to_physical_range(self):
        array = make_array(sigma=2.0, seed=5)
        target = np.full((8, 4), 5e-5)
        achieved = array.program_conductance(target)
        assert np.all(achieved >= array.device.g_off - 1e-15)
        assert np.all(achieved <= array.device.g_on + 1e-15)

    def test_out_of_range_target_rejected(self):
        array = make_array()
        with pytest.raises(ValueError, match="g_off"):
            array.program_conductance(np.full((8, 4), 1.0))

    def test_shape_mismatch_rejected(self):
        array = make_array()
        with pytest.raises(ValueError, match="shape"):
            array.program_conductance(np.full((2, 2), 1e-5))

    def test_cycle_noise_varies_between_programmings(self):
        array = make_array(sigma_cycle=0.05)
        target = np.full((8, 4), 1e-5)
        a = array.program_conductance(target).copy()
        b = array.program_conductance(target)
        assert not np.allclose(a, b)


class TestCloseLoopUpdates:
    def test_update_moves_conductance(self):
        array = make_array()
        g0 = array.conductance.copy()
        array.update_conductance(np.full((8, 4), 1e-6))
        assert np.all(array.conductance > g0)

    def test_efficiency_scales_update(self):
        a1 = make_array()
        a2 = make_array()
        delta = np.full((8, 4), 1e-6)
        g1 = a1.update_conductance(delta, efficiency=1.0)
        g2 = a2.update_conductance(delta, efficiency=0.5)
        moved1 = g1 - a1.device.g_off
        moved2 = g2 - a2.device.g_off
        assert np.allclose(moved2, 0.5 * moved1)

    def test_update_respects_rails(self):
        array = make_array()
        array.update_conductance(np.full((8, 4), 1.0))
        assert np.allclose(array.conductance, array.device.g_on)
        array.update_conductance(np.full((8, 4), -1.0))
        assert np.allclose(array.conductance, array.device.g_off)

    def test_stuck_cells_ignore_updates(self):
        array = make_array(defect_rate=0.5, seed=2)
        stuck = array.is_stuck()
        assert np.any(stuck)
        g_before = array.conductance.copy()
        array.update_conductance(np.full((8, 4), 1e-5))
        assert np.allclose(array.conductance[stuck], g_before[stuck])

    def test_update_shape_mismatch_rejected(self):
        array = make_array()
        with pytest.raises(ValueError, match="shape"):
            array.update_conductance(np.zeros((3, 3)))


class TestReset:
    def test_reset_to_hrs(self):
        array = make_array()
        array.program_conductance(np.full((8, 4), 5e-5))
        array.reset_to_hrs()
        assert np.allclose(array.conductance, array.device.g_off)
