"""Tests for the telemetry run log."""

from __future__ import annotations

import json

from repro.runtime import RunLog, current_run_log, use_run_log


class TestRunLog:
    def test_ambient_default_is_none(self):
        assert current_run_log() is None

    def test_use_run_log_scopes(self):
        log = RunLog()
        with use_run_log(log):
            assert current_run_log() is log
        assert current_run_log() is None

    def test_experiment_accounting(self):
        log = RunLog()
        log.record_experiment("fig2", 1.5, cache_hit=False)
        log.record_experiment("fig3", 0.0, cache_hit=True)
        assert log.recomputed_experiments == 1
        assert log.cached_experiments == 1

    def test_batch_throughput(self):
        log = RunLog()
        batch = log.record_batch("mc", trials=100, seconds=2.0, jobs=4)
        assert batch.trials_per_second == 50.0
        assert log.total_trials == 100

    def test_cache_hit_batch_has_zero_throughput(self):
        log = RunLog()
        batch = log.record_batch("mc", 0, 0.01, 1, cache_hit=True)
        assert batch.trials_per_second == 0.0

    def test_time_experiment_records_duration(self):
        log = RunLog()
        with log.time_experiment("fig2") as record:
            record.cache_hit = True
        assert len(log.experiments) == 1
        assert log.experiments[0].name == "fig2"
        assert log.experiments[0].cache_hit
        assert log.experiments[0].seconds >= 0.0

    def test_summary_is_deterministic(self):
        # The embedded report section must not leak wall times.
        a, b = RunLog(), RunLog()
        a.record_experiment("fig2", 1.0, cache_hit=False, cache_key="ab" * 32)
        b.record_experiment("fig2", 99.0, cache_hit=False, cache_key="ab" * 32)
        assert a.render_summary() == b.render_summary()
        assert "1.0" not in a.render_summary()

    def test_timing_view_has_wall_times(self):
        log = RunLog()
        log.record_experiment("fig2", 1.25, cache_hit=False)
        assert "1.25s" in log.render_timing()

    def test_json_structure(self):
        log = RunLog()
        log.record_experiment("fig2", 1.0, cache_hit=True, cache_key="k")
        log.record_batch("mc", 10, 0.5, 2)
        doc = json.loads(log.to_json())
        assert doc["cached_experiments"] == 1
        assert doc["recomputed_experiments"] == 0
        assert doc["total_trials"] == 10
        assert doc["experiments"][0]["name"] == "fig2"
        assert doc["batches"][0]["jobs"] == 2

    def test_progress_callback_invoked(self):
        seen = []
        log = RunLog(progress=lambda *args: seen.append(args))
        log.report_progress("mc", 5, 10)
        assert seen == [("mc", 5, 10)]

    def test_progress_noop_without_callback(self):
        RunLog().report_progress("mc", 1, 2)  # must not raise
