"""Tests for the deterministic parallel executor."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.runtime import (
    RunLog,
    RuntimeConfig,
    chunk_bounds,
    map_trials,
    map_trials_batched,
    parallel_map,
    trial_seed_sequence,
    use_run_log,
    use_runtime,
)
from repro.runtime.executor import _item_is_picklable


def _noise_trial(rng: np.random.Generator, scale: float = 1.0):
    return rng.normal(size=3) * scale


def _noise_batch(rngs, scale: float = 1.0):
    # Same per-trial draws as _noise_trial, stacked.
    return np.stack([rng.normal(size=3) * scale for rng in rngs])


def _bad_shape_batch(rngs):
    return np.zeros(len(rngs) + 1)


def _square(x: float) -> float:
    return x * x


class TestTrialSeedSequence:
    def test_matches_spawn_tree(self):
        # The engine's O(1) construction must equal SeedSequence.spawn,
        # which is what the legacy child_rngs implementation used.
        spawned = np.random.SeedSequence(123).spawn(8)
        for i, child in enumerate(spawned):
            direct = trial_seed_sequence(123, i)
            assert (
                child.generate_state(4).tolist()
                == direct.generate_state(4).tolist()
            )

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            trial_seed_sequence(0, -1)


class TestChunkBounds:
    def test_covers_every_trial_once(self):
        for trials in (1, 2, 7, 64, 100):
            for jobs in (1, 2, 8):
                bounds = chunk_bounds(trials, jobs)
                indices = [
                    i for start, stop in bounds for i in range(start, stop)
                ]
                assert indices == list(range(trials))

    def test_explicit_chunk_size(self):
        assert chunk_bounds(10, 4, chunk_size=4) == [
            (0, 4), (4, 8), (8, 10)
        ]

    def test_partition_independent_of_jobs_with_fixed_chunk(self):
        assert chunk_bounds(20, 2, 5) == chunk_bounds(20, 16, 5)


class TestMapTrials:
    def test_identical_across_jobs(self):
        trial = functools.partial(_noise_trial, scale=2.0)
        baseline = map_trials(trial, 23, seed=7, jobs=1)
        for jobs in (2, 4):
            assert np.array_equal(
                baseline, map_trials(trial, 23, seed=7, jobs=jobs)
            )

    def test_identical_across_chunk_sizes(self):
        trial = functools.partial(_noise_trial)
        a = map_trials(trial, 17, seed=3, jobs=1, chunk_size=1)
        b = map_trials(trial, 17, seed=3, jobs=2, chunk_size=5)
        assert np.array_equal(a, b)

    def test_matches_legacy_spawn_tree(self):
        values = map_trials(
            functools.partial(_noise_trial), 9, seed=11, jobs=1
        )
        legacy = np.asarray([
            _noise_trial(np.random.default_rng(s))
            for s in np.random.SeedSequence(11).spawn(9)
        ])
        assert np.array_equal(values, legacy)

    def test_closure_falls_back_to_serial(self):
        # Lambdas cannot cross a process boundary; they must still run.
        values = map_trials(lambda rng: rng.random(), 6, seed=1, jobs=4)
        assert values.shape == (6,)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            map_trials(functools.partial(_noise_trial), 0)

    def test_reads_ambient_jobs(self):
        trial = functools.partial(_noise_trial)
        baseline = map_trials(trial, 8, seed=2, jobs=1)
        with use_runtime(RuntimeConfig(jobs=2)):
            ambient = map_trials(trial, 8, seed=2)
        assert np.array_equal(baseline, ambient)

    def test_progress_reaches_total(self):
        seen = []
        log = RunLog(progress=lambda label, done, total:
                     seen.append((done, total)))
        with use_run_log(log):
            map_trials(functools.partial(_noise_trial), 10, seed=0,
                       jobs=1, chunk_size=4)
        assert seen[-1] == (10, 10)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_records_batch_telemetry(self):
        log = RunLog()
        with use_run_log(log):
            map_trials(functools.partial(_noise_trial), 5, seed=0,
                       jobs=1, label="unit")
        assert len(log.batches) == 1
        assert log.batches[0].label == "unit"
        assert log.batches[0].trials == 5


class TestMapTrialsBatched:
    def test_bit_identical_to_looped(self):
        looped = map_trials(
            functools.partial(_noise_trial, scale=2.0), 23, seed=7, jobs=1
        )
        batched = map_trials_batched(
            functools.partial(_noise_batch, scale=2.0), 23, seed=7, jobs=1
        )
        assert np.array_equal(looped, batched)

    def test_identical_across_jobs_and_chunk_sizes(self):
        batch = functools.partial(_noise_batch, scale=0.5)
        baseline = map_trials_batched(batch, 19, seed=5, jobs=1, chunk_size=1)
        for jobs in (1, 2, 4):
            for chunk_size in (1, 5, None):
                assert np.array_equal(
                    baseline,
                    map_trials_batched(
                        batch, 19, seed=5, jobs=jobs, chunk_size=chunk_size
                    ),
                )

    def test_bad_leading_axis_rejected(self):
        with pytest.raises(ValueError, match="leading trial axis"):
            map_trials_batched(_bad_shape_batch, 6, seed=0, jobs=1)

    def test_closure_falls_back_to_serial(self):
        values = map_trials_batched(
            lambda rngs: np.stack([rng.random(2) for rng in rngs]),
            6, seed=1, jobs=4,
        )
        assert values.shape == (6, 2)

    def test_records_batched_kernel_telemetry(self):
        log = RunLog()
        with use_run_log(log):
            map_trials_batched(
                functools.partial(_noise_batch), 9, seed=0, jobs=1,
                chunk_size=4, label="unit-batched",
            )
        assert len(log.batches) == 1
        batch = log.batches[0]
        assert batch.label == "unit-batched"
        assert batch.kernel == "batched"
        assert batch.chunk_size == 4

    def test_looped_kernel_telemetry(self):
        log = RunLog()
        with use_run_log(log):
            map_trials(functools.partial(_noise_trial), 5, seed=0, jobs=1)
        assert log.batches[0].kernel == "loop"
        assert log.batches[0].chunk_size > 0


class TestParallelMap:
    def test_preserves_order(self):
        items = [3.0, 1.0, 2.0, 5.0]
        assert parallel_map(_square, items, jobs=1) == [9.0, 1.0, 4.0, 25.0]

    def test_identical_across_jobs(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=3
        )

    def test_closure_falls_back_to_serial(self):
        offset = 10
        assert parallel_map(lambda v: v + offset, [1, 2], jobs=4) == [11, 12]

    def test_unpicklable_item_falls_back_to_serial(self):
        items = [{"fn": lambda v: v}, {"fn": None}]
        out = parallel_map(lambda d: d["fn"] is None, items, jobs=4)
        assert out == [False, True]


class TestItemPicklability:
    def test_cheap_scalars_accepted_without_pickling(self):
        for item in (None, True, 3, 2.5, "s", b"b", np.float64(1.0)):
            assert _item_is_picklable(item)

    def test_numeric_arrays_accepted(self):
        assert _item_is_picklable(np.zeros(4))

    def test_object_arrays_probed(self):
        arr = np.empty(1, dtype=object)
        arr[0] = lambda: None
        assert not _item_is_picklable(arr)

    def test_shallow_containers_recurse(self):
        assert _item_is_picklable((1, [2.0, "x"], {"k": 3}))
        assert not _item_is_picklable((1, lambda: None))
