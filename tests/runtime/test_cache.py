"""Tests for the artifact cache: hits, misses, invalidation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runtime import (
    ArtifactCache,
    RuntimeConfig,
    get_cache,
    stable_key,
    use_runtime,
)


@dataclasses.dataclass(frozen=True)
class FakeTrialConfig:
    sigma: float = 0.5
    devices: int = 100


@dataclasses.dataclass(frozen=True)
class OtherConfig:
    sigma: float = 0.5
    devices: int = 100


class TestStableKey:
    def test_deterministic(self):
        cfg = FakeTrialConfig()
        assert stable_key("mc", cfg) == stable_key("mc", cfg)

    def test_config_change_invalidates(self):
        assert stable_key("mc", FakeTrialConfig()) != stable_key(
            "mc", FakeTrialConfig(sigma=0.6)
        )

    def test_version_change_invalidates(self):
        cfg = FakeTrialConfig()
        assert stable_key("mc", cfg, version="1.0.0") != stable_key(
            "mc", cfg, version="1.0.1"
        )

    def test_kind_namespaces(self):
        cfg = FakeTrialConfig()
        assert stable_key("mc", cfg) != stable_key("section", cfg)

    def test_class_name_distinguishes_identical_fields(self):
        assert stable_key("mc", FakeTrialConfig()) != stable_key(
            "mc", OtherConfig()
        )

    def test_array_contents_hashed(self):
        a = {"w": np.arange(6.0)}
        b = {"w": np.arange(6.0)}
        c = {"w": np.arange(6.0) + 1e-12}
        assert stable_key("mc", a) == stable_key("mc", b)
        assert stable_key("mc", a) != stable_key("mc", c)

    def test_float_precision_preserved(self):
        assert stable_key("mc", {"x": 0.1}) != stable_key(
            "mc", {"x": 0.1 + 1e-16}
        ) or (0.1 == 0.1 + 1e-16)  # equal floats may share a key

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError, match="stable cache key"):
            stable_key("mc", object())


class TestArtifactCache:
    def test_json_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_key("section", {"name": "fig2"})
        assert cache.get_json(key) is None
        cache.put_json(key, {"text": "hello"})
        assert cache.get_json(key) == {"text": "hello"}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_array_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_key("mc", FakeTrialConfig())
        values = np.random.default_rng(0).normal(size=(7, 2))
        assert cache.get_arrays(key) is None
        cache.put_arrays(key, values=values)
        stored = cache.get_arrays(key)
        assert np.array_equal(stored["values"], values)

    def test_different_keys_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        k1 = stable_key("mc", FakeTrialConfig())
        k2 = stable_key("mc", FakeTrialConfig(devices=101))
        cache.put_json(k1, {"v": 1})
        assert cache.get_json(k2) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = stable_key("section", {"name": "fig3"})
        path = cache.put_json(key, {"text": "ok"})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get_json(key) is None


class TestAmbientCache:
    def test_disabled_by_default(self):
        assert get_cache() is None

    def test_enabled_with_cache_dir(self, tmp_path):
        with use_runtime(RuntimeConfig(cache_dir=tmp_path)):
            cache = get_cache()
            assert cache is not None
            assert cache.root == tmp_path

    def test_no_cache_flag_wins(self, tmp_path):
        with use_runtime(
            RuntimeConfig(cache_dir=tmp_path, use_cache=False)
        ):
            assert get_cache() is None


class TestCacheMaintenance:
    def fill(self, cache: ArtifactCache, n: int = 4) -> list[str]:
        keys = []
        for i in range(n):
            key = stable_key("mc", {"entry": i})
            cache.put_json(key, {"i": i})
            cache.put_arrays(key, values=np.arange(64) + i)
            keys.append(key)
        return keys

    def test_stats_counts_files_keys_and_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        self.fill(cache, 3)
        stats = cache.stats()
        assert stats["files"] == 6
        assert stats["keys"] == 3
        assert stats["by_suffix"] == {".json": 3, ".npz": 3}
        assert stats["total_bytes"] > 0
        assert stats["root"] == str(tmp_path)

    def test_stats_on_empty_cache(self, tmp_path):
        stats = ArtifactCache(tmp_path / "nope").stats()
        assert stats["files"] == 0
        assert stats["keys"] == 0
        assert stats["total_bytes"] == 0

    def test_prune_evicts_oldest_whole_artifacts(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        keys = self.fill(cache, 4)
        # Age the first two artifacts so eviction order is unambiguous.
        for age, key in ((400, keys[0]), (300, keys[1])):
            for suffix in (".json", ".npz"):
                path = cache._path(key, suffix)
                stamp = path.stat().st_mtime - age
                os.utime(path, (stamp, stamp))
        def group_bytes(key: str) -> int:
            return sum(
                cache._path(key, s).stat().st_size
                for s in (".json", ".npz")
            )

        # Cap sized so exactly the two aged artifacts must go.
        cap_bytes = (
            cache.stats()["total_bytes"]
            - group_bytes(keys[0])
            - group_bytes(keys[1])
        )
        target_mb = (cap_bytes + 1) / (1024 * 1024)
        result = cache.prune(target_mb)
        assert result["removed_keys"] == 2
        assert result["removed_files"] == 4
        assert result["freed_bytes"] > 0
        assert result["total_bytes"] <= target_mb * 1024 * 1024
        # Both halves of each evicted artifact are gone; the newest
        # artifacts survive intact.
        assert cache.get_json(keys[0]) is None
        assert cache.get_arrays(keys[0]) is None
        cache.misses = 0
        assert cache.get_json(keys[3]) == {"i": 3}
        assert cache.get_arrays(keys[3]) is not None

    def test_prune_noop_when_under_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = self.fill(cache, 2)
        result = cache.prune(1000.0)
        assert result["removed_keys"] == 0
        assert result["freed_bytes"] == 0
        assert cache.get_json(keys[0]) is not None

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        self.fill(cache, 3)
        result = cache.prune(0.0)
        assert result["total_bytes"] == 0
        assert cache.stats()["files"] == 0

    def test_prune_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError, match="max_size_mb"):
            ArtifactCache(tmp_path).prune(-1.0)
