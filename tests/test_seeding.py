"""Seed-discipline helpers: every accepted rng form, plus the fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seeding import DEFAULT_FALLBACK_SEED, ensure_rng, fallback_rng


class TestEnsureRng:
    def test_generator_passes_through_unchanged(self):
        rng = np.random.default_rng(5)
        assert ensure_rng(rng, "test.api") is rng

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123, "test.api")
        b = ensure_rng(123, "test.api")
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(seq, "test.api")
        b = ensure_rng(np.random.SeedSequence(7), "test.api")
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_bit_generator_wrapped_without_reseeding(self):
        # A BitGenerator must be adopted as-is: its stream position is
        # preserved, not restarted from some derived seed.
        reference = np.random.Generator(np.random.PCG64(99))
        reference.integers(1 << 30, size=3)  # advance the stream

        bitgen = np.random.PCG64(99)
        np.random.Generator(bitgen).integers(1 << 30, size=3)
        wrapped = ensure_rng(bitgen, "test.api")
        assert isinstance(wrapped, np.random.Generator)
        assert wrapped.bit_generator is bitgen
        assert wrapped.integers(1 << 30) == reference.integers(1 << 30)

    def test_none_warns_and_uses_fixed_fallback_seed(self):
        with pytest.warns(DeprecationWarning, match="test.api"):
            rng = ensure_rng(None, "test.api")
        expected = np.random.default_rng(DEFAULT_FALLBACK_SEED)
        assert rng.integers(1 << 30) == expected.integers(1 << 30)

    def test_none_fallback_is_reproducible_across_calls(self):
        with pytest.warns(DeprecationWarning):
            a = ensure_rng(None, "test.api")
        with pytest.warns(DeprecationWarning):
            b = ensure_rng(None, "test.api")
        assert a.integers(1 << 30) == b.integers(1 << 30)


class TestFallbackRng:
    def test_warning_names_the_calling_api(self):
        with pytest.warns(DeprecationWarning, match="repro.some.api"):
            fallback_rng("repro.some.api")
