"""Scheduler behaviour: batching, backpressure, deadlines, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.runtime.telemetry import RunLog
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    ServeOverloadedError,
)


class FakeEngine:
    """Deterministic stand-in engine: scores = inputs summed per row."""

    def __init__(self, delay_s: float = 0.0, gate: threading.Event | None = None):
        self.delay_s = delay_s
        self.gate = gate
        self.entered = threading.Event()
        self.batch_sizes: list[int] = []

    @property
    def n_features(self) -> int:
        return 4

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.entered.set()
        if self.gate is not None:
            self.gate.wait(timeout=5.0)
        if self.delay_s:
            time.sleep(self.delay_s)
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.batch_sizes.append(x.shape[0])
        return np.stack([x.sum(axis=1), -x.sum(axis=1)], axis=1)


class TestScheduling:
    def test_results_match_direct_forward(self):
        engine = FakeEngine()
        log = RunLog()
        rng = np.random.default_rng(0)
        queries = rng.uniform(size=(20, 4))
        with BatchScheduler(engine, max_batch=8, log=log) as sched:
            futures = [sched.submit(q) for q in queries]
            results = np.stack([f.result(timeout=5.0) for f in futures])
        direct = np.stack([FakeEngine().forward(q)[0] for q in queries])
        assert np.array_equal(results, direct)
        assert len(log.requests) == 20
        assert log.dropped_requests == 0

    def test_requests_coalesce_into_batches(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        with BatchScheduler(engine, max_batch=16, max_queue=64) as sched:
            futures = [sched.submit(np.ones(4)) for _ in range(12)]
            gate.set()
            for f in futures:
                f.result(timeout=5.0)
        # The gate held the worker on the first request, so the other
        # 11 piled up and were served in (at most) a couple of batches.
        assert max(engine.batch_sizes) > 1

    def test_full_queue_rejects_with_retry_after(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(engine, max_batch=4, max_queue=2)
        try:
            # At most one request can be in flight (held at the gate)
            # and two queued; seven submissions must overflow.
            with pytest.raises(ServeOverloadedError) as excinfo:
                for _ in range(7):
                    sched.submit(np.ones(4))
            assert excinfo.value.retry_after_s > 0
        finally:
            gate.set()
            sched.shutdown()

    def test_cold_start_overload_respects_retry_floor(self):
        # A queue that fills before the first batch ever completes has
        # no throughput sample; the hint must fall back to the
        # configured floor, never 0.0s.
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(
            engine, max_batch=4, max_queue=2, min_retry_after_s=0.25
        )
        try:
            assert sched._batch_seconds is None  # truly cold
            with pytest.raises(ServeOverloadedError) as excinfo:
                for _ in range(7):
                    sched.submit(np.ones(4))
            assert excinfo.value.retry_after_s >= 0.25
        finally:
            gate.set()
            sched.shutdown()

    def test_warm_overload_hint_never_below_floor(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(
            engine, max_batch=4, max_queue=2, min_retry_after_s=0.5
        )
        try:
            first = sched.submit(np.ones(4))
            assert engine.entered.wait(timeout=5.0)
            gate.set()
            assert first.result(timeout=5.0) is not None
            # The EMA now holds a (tiny) real sample; the floor still
            # bounds the hint from below.
            assert sched._batch_seconds is not None
            gate.clear()
            with pytest.raises(ServeOverloadedError) as excinfo:
                for _ in range(7):
                    sched.submit(np.ones(4))
            assert excinfo.value.retry_after_s >= 0.5
        finally:
            gate.set()
            sched.shutdown()

    def test_retry_floor_validated(self):
        with pytest.raises(ValueError, match="min_retry_after_s"):
            BatchScheduler(FakeEngine(), min_retry_after_s=0.0)

    def test_depth_reports_queue_backlog(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(engine, max_batch=1, max_queue=8)
        try:
            sched.submit(np.ones(4))
            assert engine.entered.wait(timeout=5.0)
            sched.submit(np.ones(4))
            sched.submit(np.ones(4))
            assert sched.depth == 2
        finally:
            gate.set()
            sched.shutdown()

    def test_label_stamped_on_request_records(self):
        log = RunLog()
        with BatchScheduler(
            FakeEngine(), log=log, label="shard3/r1"
        ) as sched:
            sched.predict(np.ones(4), timeout=5.0)
        assert [r.label for r in log.requests] == ["shard3/r1"]
        assert "shard3/r1" in log.label_summary()

    def test_expired_deadline_drops_request(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        log = RunLog()
        sched = BatchScheduler(engine, max_batch=8, log=log)
        blocker = sched.submit(np.ones(4))
        # Wait until the worker is inside forward() so the doomed
        # request lands in the *next* batch, after its deadline passed.
        assert engine.entered.wait(timeout=5.0)
        doomed = sched.submit(np.ones(4), deadline_s=0.01)
        time.sleep(0.05)
        gate.set()
        assert blocker.result(timeout=5.0) is not None
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5.0)
        sched.shutdown()
        assert log.dropped_requests == 1
        assert any(not r.ok for r in log.requests)

    def test_deadline_miss_counter_tracks_drops(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(engine, max_batch=8)
        assert sched.deadline_misses == 0
        blocker = sched.submit(np.ones(4))
        assert engine.entered.wait(timeout=5.0)
        doomed = [
            sched.submit(np.ones(4), deadline_s=0.01) for _ in range(3)
        ]
        time.sleep(0.05)
        gate.set()
        assert blocker.result(timeout=5.0) is not None
        for future in doomed:
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5.0)
        sched.shutdown()
        assert sched.deadline_misses == 3

    def test_graceful_shutdown_answers_queued_requests(self):
        gate = threading.Event()
        engine = FakeEngine(gate=gate)
        sched = BatchScheduler(engine, max_batch=2, max_queue=64)
        futures = [sched.submit(np.ones(4)) for _ in range(10)]
        gate.set()
        sched.shutdown(timeout=5.0)
        assert all(f.result(timeout=0.0) is not None for f in futures)
        with pytest.raises(RuntimeError, match="shut down"):
            sched.submit(np.ones(4))

    def test_concurrent_submit_and_shutdown_strands_no_future(self):
        # Regression: submit() used to check _closed and enqueue in two
        # separate steps, so a request could slip into the queue after
        # shutdown's drain decision and hang forever.  The check+put is
        # now atomic under the state lock: every submit either raises
        # "shut down" or returns a future that resolves.
        for _ in range(5):
            engine = FakeEngine()
            sched = BatchScheduler(engine, max_batch=4, max_queue=64)
            start = threading.Barrier(3)
            futures: list = []
            errors: list = []

            def submitter():
                start.wait(timeout=5.0)
                for _ in range(50):
                    try:
                        futures.append(sched.submit(np.ones(4)))
                    except RuntimeError:
                        errors.append("closed")
                        return

            def closer():
                start.wait(timeout=5.0)
                time.sleep(0.002)
                sched.shutdown(timeout=5.0)

            threads = [
                threading.Thread(target=submitter),
                threading.Thread(target=submitter),
                threading.Thread(target=closer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)
            # Every accepted future resolves; none is stranded.
            for f in futures:
                assert f.result(timeout=5.0) is not None

    def test_engine_error_propagates_to_futures(self):
        class BrokenEngine(FakeEngine):
            def forward(self, x):
                raise ValueError("boom")

        with BatchScheduler(BrokenEngine(), max_batch=4) as sched:
            future = sched.submit(np.ones(4))
            with pytest.raises(ValueError, match="boom"):
                future.result(timeout=5.0)

    def test_on_batch_hook_runs_after_each_batch(self):
        calls: list[int] = []
        engine = FakeEngine()
        sched = BatchScheduler(
            engine, max_batch=4, on_batch=lambda: calls.append(1)
        )
        with sched:
            for _ in range(3):
                sched.predict(np.ones(4), timeout=5.0)
        assert len(calls) == sched.batches_served
        assert len(calls) >= 3

    def test_latency_percentiles_recorded(self):
        log = RunLog()
        with BatchScheduler(FakeEngine(), log=log) as sched:
            for _ in range(10):
                sched.predict(np.ones(4), timeout=5.0)
        summary = log.serve_summary()
        assert summary["requests"] == 10
        assert summary["dropped"] == 0
        assert 0 < summary["p50"] <= summary["p99"]
