"""Drift monitoring and the re-pretest + remap repair round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.defects import STUCK_AT_HRS, STUCK_AT_LRS
from repro.devices.retention import RetentionConfig, age_pair
from repro.runtime.telemetry import RunLog
from repro.serve.artifact import ProgramConfig, program_array
from repro.serve.engine import InferenceEngine
from repro.serve.health import DriftMonitor, DriftPolicy
from repro.serve.service import CrossbarService


@pytest.fixture(scope="module")
def artifact():
    return program_array(
        ProgramConfig(
            scheme="vortex", image_size=7, n_train=200, sigma=0.15,
            seed=5, redundancy=12,
        )
    )


def drift_the_pair(pair, stuck=((3, 2), (10, 5))) -> None:
    """Heavy retention aging plus a couple of stuck-open cells."""
    age_pair(
        pair, 3e5,
        RetentionConfig(nu_median=0.05, nu_sigma=0.5),
        np.random.default_rng(11),
    )
    defects = pair.positive.array.defects.copy()
    for row, col in stuck:
        defects[row, col] = STUCK_AT_HRS
    pair.positive.array.defects = defects


class TestDriftPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="threshold"):
            DriftPolicy(threshold=0.0)
        with pytest.raises(ValueError, match="check_every"):
            DriftPolicy(check_every=0)


class TestDriftMonitor:
    def test_fresh_restore_has_zero_discrepancy(self, artifact):
        monitor = DriftMonitor(
            InferenceEngine.from_artifact(artifact),
            probes=artifact.probes,
            baseline=artifact.baseline,
            log=RunLog(),
        )
        assert monitor.discrepancy() == 0.0
        assert monitor.check() is None
        assert monitor.log.drift_events == []

    def test_alert_without_repair_path(self, artifact):
        engine = InferenceEngine.from_artifact(artifact)
        drift_the_pair(engine.target)
        log = RunLog()
        monitor = DriftMonitor(
            engine, artifact.probes, artifact.baseline,
            policy=DriftPolicy(threshold=0.08), log=log,
        )
        event = monitor.check()
        assert event is not None and event.action == "alert"
        assert event.discrepancy > 0.08
        assert event.recovered_discrepancy is None

    def test_cadence_respects_check_every(self, artifact):
        engine = InferenceEngine.from_artifact(artifact)
        drift_the_pair(engine.target)
        log = RunLog()
        monitor = DriftMonitor(
            engine, artifact.probes, artifact.baseline,
            policy=DriftPolicy(threshold=0.08, check_every=4), log=log,
        )
        for _ in range(3):
            monitor()
        assert log.drift_events == []  # not yet at the 4th batch
        monitor()
        assert len(log.drift_events) == 1

    def test_probe_baseline_shape_mismatch_rejected(self, artifact):
        with pytest.raises(ValueError, match="baseline"):
            DriftMonitor(
                InferenceEngine.from_artifact(artifact),
                probes=artifact.probes,
                baseline=artifact.baseline[:-1],
            )


class TestRemapRoundTrip:
    """Retention drift x stuck-at defects x AMP remap, end to end."""

    def test_drift_triggers_exactly_one_recovering_remap(self, artifact):
        log = RunLog()
        service = CrossbarService(
            artifact,
            policy=DriftPolicy(threshold=0.08, check_every=2),
            log=log,
        )
        try:
            assert service.monitor.discrepancy() == 0.0
            drift_the_pair(service.pair)
            assert service.monitor.discrepancy() > 0.08
            for i in range(8):
                service.predict(
                    artifact.probes[i % len(artifact.probes)],
                    timeout=30.0,
                )
        finally:
            service.close()
        remaps = [e for e in log.drift_events if e.action == "remap"]
        assert len(remaps) == 1
        event = remaps[0]
        assert event.discrepancy > 0.08
        assert event.recovered_discrepancy is not None
        assert event.recovered_discrepancy < 0.08
        # The re-pretest saw both injected stuck-at-HRS cells.
        assert event.defects["stuck_at_hrs"] >= 2
        summary = log.serve_summary()
        assert summary["remaps"] == 1
        assert summary["dropped"] == 0

    def test_remap_avoids_stuck_cells_with_redundancy(self, artifact):
        service = CrossbarService(
            artifact, policy=DriftPolicy(threshold=0.08)
        )
        try:
            # Kill an entire physical row of the positive array: AMP
            # must route every logical row away from it.
            dead_row = int(artifact.assignment[0])
            defects = service.pair.positive.array.defects.copy()
            defects[dead_row, :] = STUCK_AT_LRS
            service.pair.positive.array.defects = defects
            service.remap()
            assert dead_row not in service.engine.mapping.assignment
        finally:
            service.close()
