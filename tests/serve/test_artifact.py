"""ProgrammedArray snapshots: persistence and exact reconstruction."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runtime.cache import ArtifactCache
from repro.serve.artifact import (
    ProgramConfig,
    ProgrammedArray,
    artifact_key,
    program_array,
)
from repro.serve.engine import InferenceEngine


@pytest.fixture(scope="module")
def vortex_artifact() -> ProgrammedArray:
    return program_array(
        ProgramConfig(
            scheme="vortex", image_size=7, n_train=150, sigma=0.3,
            seed=7, redundancy=6,
        )
    )


class TestArtifactKey:
    def test_key_is_deterministic(self):
        cfg = ProgramConfig(seed=3)
        assert artifact_key(cfg) == artifact_key(ProgramConfig(seed=3))

    def test_any_field_change_changes_key(self):
        base = ProgramConfig()
        for change in (
            {"scheme": "old"}, {"sigma": 0.4}, {"seed": 1},
            {"redundancy": 9}, {"ir_mode": "nodal"},
        ):
            assert artifact_key(
                dataclasses.replace(base, **change)
            ) != artifact_key(base)


class TestProgramArray:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            program_array(ProgramConfig(scheme="magic"))

    def test_identical_configs_produce_identical_artifacts(self):
        cfg = ProgramConfig(
            scheme="old", image_size=7, n_train=100, seed=2,
        )
        a = program_array(cfg)
        b = program_array(cfg)
        assert np.array_equal(a.g_pos, b.g_pos)
        assert np.array_equal(a.baseline, b.baseline)

    def test_vortex_artifact_is_complete(self, vortex_artifact):
        art = vortex_artifact
        assert art.scheme == "vortex"
        assert art.n_physical == art.g_pos.shape[0]
        assert art.n_logical == art.weights.shape[0]
        assert art.n_physical > art.n_logical  # redundancy rows
        assert art.probes.shape[1] == art.n_logical
        assert art.baseline.shape == (art.probes.shape[0], 10)
        assert "gamma" in art.metadata
        assert art.metadata["crossbar"]["rows"] == art.n_physical


class TestRoundTrip:
    def test_save_load_round_trip(self, vortex_artifact, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(ProgramConfig())
        vortex_artifact.save(cache, key)
        loaded = ProgrammedArray.load(cache, key)
        for field in (
            "weights", "assignment", "g_pos", "g_neg", "theta_pos",
            "theta_neg", "defects_pos", "defects_neg", "x_mean",
            "probes", "baseline",
        ):
            assert np.array_equal(
                getattr(loaded, field), getattr(vortex_artifact, field)
            ), field
        assert loaded.scheme == vortex_artifact.scheme
        assert loaded.metadata == vortex_artifact.metadata

    def test_load_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no programmed-array"):
            ProgrammedArray.load(ArtifactCache(tmp_path), "0" * 64)

    def test_restored_pair_reproduces_baseline_exactly(
        self, vortex_artifact, tmp_path
    ):
        # The acceptance contract of the artifact layer: a serving
        # process reconstructs the programmed hardware bit-for-bit, so
        # replaying the probes reproduces the programming-time
        # baseline with zero discrepancy.
        cache = ArtifactCache(tmp_path)
        key = vortex_artifact.save(cache, artifact_key(ProgramConfig()))
        loaded = ProgrammedArray.load(cache, key)
        engine = InferenceEngine.from_artifact(loaded)
        assert np.array_equal(
            engine.forward(loaded.probes), loaded.baseline
        )

    def test_restored_pair_preserves_theta_and_defects(
        self, vortex_artifact
    ):
        pair = vortex_artifact.build_pair()
        assert np.array_equal(
            pair.positive.array.theta, vortex_artifact.theta_pos
        )
        assert np.array_equal(
            pair.negative.array.defects, vortex_artifact.defects_neg
        )
        assert np.array_equal(
            pair.positive.array.conductance, vortex_artifact.g_pos
        )
