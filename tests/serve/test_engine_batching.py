"""Batched reads must be bit-identical to looping single-vector reads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import CrossbarConfig, VariationConfig
from repro.core.amp import RowMapping
from repro.serve.engine import InferenceEngine
from repro.xbar.crossbar import IR_MODES, Crossbar
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar


def make_crossbar(rows=6, cols=4, r_wire=2.5, seed=0) -> Crossbar:
    xbar = Crossbar(
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=r_wire),
        variation=VariationConfig(sigma=0.3),
        rng=np.random.default_rng(seed),
    )
    rng = np.random.default_rng(seed + 1)
    d = xbar.device
    xbar.program(
        rng.uniform(d.g_off, d.g_on, size=(rows, cols)),
        with_cycle_noise=False,
    )
    return xbar


class TestBatchedReadEquivalence:
    """The tentpole contract: one batched read == s single reads."""

    @pytest.mark.parametrize("ir_mode", IR_MODES)
    @given(
        x=arrays(
            float, (5, 6),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_read_matches_looped_read(self, ir_mode, x):
        xbar = make_crossbar()
        batched = xbar.read(x, ir_mode)
        looped = np.stack([xbar.read(xi, ir_mode) for xi in x])
        assert batched.shape == (5, 4)
        assert np.array_equal(batched, looped)

    @pytest.mark.parametrize("ir_mode", IR_MODES)
    def test_single_vector_shape_preserved(self, ir_mode):
        xbar = make_crossbar()
        x = np.linspace(0.0, 1.0, 6)
        assert xbar.read(x, ir_mode).shape == (4,)

    def test_nodal_cache_invalidated_by_reprogramming(self):
        xbar = make_crossbar()
        x = np.linspace(0.0, 1.0, 6)
        before = xbar.read(x, "nodal")
        d = xbar.device
        xbar.program(
            np.full(xbar.shape, 0.5 * (d.g_on + d.g_off)),
            with_cycle_noise=False,
        )
        after = xbar.read(x, "nodal")
        fresh = Crossbar(
            config=xbar.config, rng=np.random.default_rng(9)
        )
        fresh.array.restore_state(xbar.conductance)
        assert not np.array_equal(before, after)
        assert np.allclose(after, fresh.read(x, "nodal"))

    def test_nodal_cache_invalidated_by_defect_injection(self):
        xbar = make_crossbar()
        x = np.full(6, 0.7)
        before = xbar.read(x, "nodal")
        defects = xbar.array.defects.copy()
        defects[2, 1] = -1  # stuck at HRS
        xbar.array.defects = defects
        after = xbar.read(x, "nodal")
        assert not np.array_equal(before, after)


class TestInferenceEngine:
    def make_pair(self, rows=8, cols=4, seed=1) -> DifferentialCrossbar:
        pair = DifferentialCrossbar(
            scaler=WeightScaler(1.0),
            config=CrossbarConfig(rows=rows, cols=cols, r_wire=0.0),
            variation=VariationConfig(sigma=0.2),
            rng=np.random.default_rng(seed),
        )
        rng = np.random.default_rng(seed + 1)
        pair.program_weights(
            rng.uniform(-1.0, 1.0, size=(rows, cols)),
            with_cycle_noise=False,
        )
        return pair

    def test_microbatching_is_invisible(self):
        pair = self.make_pair()
        x = np.random.default_rng(2).uniform(0.0, 1.0, size=(13, 8))
        one_shot = InferenceEngine(pair, microbatch=64).forward(x)
        chunked = InferenceEngine(pair, microbatch=3).forward(x)
        assert np.array_equal(one_shot, chunked)

    def test_mapping_routes_logical_inputs(self):
        pair = self.make_pair(rows=8)
        mapping = RowMapping(
            assignment=np.array([5, 2, 7, 0, 1]), n_physical=8
        )
        engine = InferenceEngine(pair, mapping=mapping)
        assert engine.n_features == 5
        x = np.random.default_rng(3).uniform(0.0, 1.0, size=(4, 5))
        direct = pair.matvec(mapping.inputs_to_physical(x), "ideal")
        assert np.array_equal(engine.forward(x), direct)

    def test_predict_returns_argmax(self):
        pair = self.make_pair()
        engine = InferenceEngine(pair)
        x = np.random.default_rng(4).uniform(0.0, 1.0, size=(6, 8))
        scores = engine.forward(x)
        assert np.array_equal(
            engine.predict(x), np.argmax(scores, axis=1)
        )
        assert engine.predict(x[0]) == int(np.argmax(scores[0]))

    def test_width_mismatch_rejected(self):
        engine = InferenceEngine(self.make_pair())
        with pytest.raises(ValueError, match="input width"):
            engine.forward(np.zeros(5))

    def test_replace_mapping_checks_width(self):
        pair = self.make_pair(rows=8)
        engine = InferenceEngine(
            pair,
            mapping=RowMapping(
                assignment=np.arange(5), n_physical=8
            ),
        )
        with pytest.raises(ValueError, match="logical rows"):
            engine.replace_mapping(
                RowMapping(assignment=np.arange(6), n_physical=8)
            )
