"""Pipeline planning: configs, cache keys, programming, persistence."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.nn.bsb import BSBConfig
from repro.nn.mlp import MLPConfig
from repro.pipeline import (
    PipelineArtifact,
    PipelineConfig,
    bsb_prototypes,
    offline_engine,
    pipeline_key,
    program_pipeline,
    trained_weights_key,
)
from repro.runtime.cache import ArtifactCache, stable_key


class TestPipelineConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PipelineConfig(kind="rnn")
        with pytest.raises(ValueError, match="image_size"):
            PipelineConfig(image_size=9)
        with pytest.raises(ValueError, match="hidden"):
            PipelineConfig(hidden=0)
        with pytest.raises(ValueError, match="n_probes"):
            PipelineConfig(n_train=10, n_probes=11)
        with pytest.raises(ValueError, match="n_prototypes"):
            PipelineConfig(kind="bsb", n_prototypes=11)
        with pytest.raises(ValueError, match="ir_mode"):
            PipelineConfig(ir_mode="magic")

    def test_frozen_and_hashable(self):
        config = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.sigma = 0.5
        assert hash(config) == hash(PipelineConfig())

    def test_training_sub_configs_are_cache_keyable(self):
        # Satellite: the frozen training recipes must flow through
        # stable_key unchanged, so trained weights cache by config.
        config = PipelineConfig()
        assert isinstance(config.mlp_config(), MLPConfig)
        assert isinstance(config.bsb_config(), BSBConfig)
        key = stable_key("t", {
            "mlp": config.mlp_config(), "bsb": config.bsb_config(),
        })
        assert key == stable_key("t", {
            "mlp": config.mlp_config(), "bsb": config.bsb_config(),
        })

    def test_dataset_matches_geometry(self, mlp_config):
        data = mlp_config.dataset()
        assert data.n_features == mlp_config.n_features
        assert data.x_train.shape[0] == mlp_config.n_train


class TestKeys:
    def test_pipeline_key_stable_and_field_sensitive(self):
        a = PipelineConfig(seed=1)
        assert pipeline_key(a) == pipeline_key(PipelineConfig(seed=1))
        assert pipeline_key(a) != pipeline_key(PipelineConfig(seed=2))
        assert pipeline_key(a) != pipeline_key(
            PipelineConfig(seed=1, sigma=0.3)
        )

    def test_weights_key_ignores_fabric_fields(self):
        # Retraining is skipped when only the hardware changes.
        base = PipelineConfig(seed=1)
        assert trained_weights_key(base) == trained_weights_key(
            PipelineConfig(seed=1, sigma=0.9, tile_rows=8,
                           ir_mode="nodal", n_probes=4)
        )
        assert trained_weights_key(base) != trained_weights_key(
            PipelineConfig(seed=1, hidden=8)
        )
        assert trained_weights_key(base) != trained_weights_key(
            PipelineConfig(seed=1, kind="bsb")
        )


class TestBSBPrototypes:
    def test_bipolar_and_deterministic(self, bsb_config):
        data = bsb_config.dataset()
        protos = bsb_prototypes(data, bsb_config.n_prototypes)
        assert protos.shape == (
            bsb_config.n_prototypes, bsb_config.n_features
        )
        assert np.all(np.isin(protos, (-1.0, 1.0)))
        assert np.array_equal(
            protos, bsb_prototypes(data, bsb_config.n_prototypes)
        )

    def test_prototypes_are_distinct(self, bsb_config):
        protos = bsb_prototypes(
            bsb_config.dataset(), bsb_config.n_prototypes
        )
        for i in range(len(protos)):
            for j in range(i + 1, len(protos)):
                assert not np.array_equal(protos[i], protos[j])


class TestProgramPipeline:
    def test_mlp_stack_shapes(self, mlp_config, mlp_artifact):
        n = mlp_config.n_features
        assert mlp_artifact.n_layers == 2
        assert mlp_artifact.shapes == [
            (n, mlp_config.hidden), (mlp_config.hidden, 10),
        ]
        assert mlp_artifact.activation == {"kind": "relu_clip"}
        assert mlp_artifact.hidden_gain > 0
        w = mlp_artifact.mlp_weights()
        assert mlp_artifact.scales[0] == float(np.max(np.abs(w.w1)))
        assert mlp_artifact.scales[1] == float(np.max(np.abs(w.w2)))

    def test_bsb_stack_shapes(self, bsb_config, bsb_artifact):
        n = bsb_config.n_features
        assert bsb_artifact.n_layers == 1
        assert bsb_artifact.shapes == [(n, n)]
        assert bsb_artifact.activation["kind"] == "bsb"
        assert bsb_artifact.prototypes.shape == (
            bsb_config.n_prototypes, n
        )
        assert isinstance(bsb_artifact.bsb_dynamics(), BSBConfig)

    def test_kind_helpers_reject_wrong_kind(
        self, mlp_artifact, bsb_artifact
    ):
        with pytest.raises(ValueError, match="MLP"):
            bsb_artifact.mlp_weights()
        with pytest.raises(ValueError, match="BSB"):
            mlp_artifact.bsb_dynamics()

    def test_dataset_geometry_validated(self, mlp_config):
        wider = dataclasses.replace(mlp_config, image_size=14)
        with pytest.raises(ValueError, match="features"):
            program_pipeline(wider, dataset=mlp_config.dataset())

    def test_deterministic_reprogramming(self, mlp_config, mlp_artifact):
        again = program_pipeline(mlp_config)
        for a, b in zip(mlp_artifact.layers, again.layers):
            for sa, sb in zip(a.shards, b.shards):
                assert np.array_equal(sa.g_pos, sb.g_pos)
                assert np.array_equal(sa.baseline, sb.baseline)
        assert again.hidden_gain == mlp_artifact.hidden_gain


class TestPersistence:
    def test_round_trip_is_bit_identical(
        self, tmp_path, mlp_config, mlp_artifact
    ):
        cache = ArtifactCache(tmp_path)
        key = mlp_artifact.save(cache, pipeline_key(mlp_config))
        loaded = PipelineArtifact.load(cache, key)
        assert loaded.config == mlp_config
        assert loaded.scales == mlp_artifact.scales
        assert loaded.hidden_gain == mlp_artifact.hidden_gain
        assert loaded.activation == mlp_artifact.activation
        for a, b in zip(
            mlp_artifact.layer_weights, loaded.layer_weights
        ):
            assert np.array_equal(a, b)
        x = mlp_config.dataset().x_test[:16]
        assert np.array_equal(
            offline_engine(loaded).forward(x),
            offline_engine(mlp_artifact).forward(x),
        )

    def test_bsb_round_trip_keeps_prototypes(
        self, tmp_path, bsb_config, bsb_artifact
    ):
        cache = ArtifactCache(tmp_path)
        key = bsb_artifact.save(cache, pipeline_key(bsb_config))
        loaded = PipelineArtifact.load(cache, key)
        assert np.array_equal(loaded.prototypes, bsb_artifact.prototypes)
        assert loaded.bsb_dynamics() == bsb_artifact.bsb_dynamics()

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="pipeline"):
            PipelineArtifact.load(ArtifactCache(tmp_path), "deadbeef")

    def test_program_with_cache_stores_and_restores(
        self, tmp_path, mlp_config
    ):
        cache = ArtifactCache(tmp_path)
        artifact = program_pipeline(mlp_config, cache=cache)
        loaded = PipelineArtifact.load(cache, pipeline_key(mlp_config))
        x = mlp_config.dataset().x_test[:8]
        assert np.array_equal(
            offline_engine(loaded).forward(x),
            offline_engine(artifact).forward(x),
        )

    def test_trained_weights_cached_across_fabrics(
        self, tmp_path, mlp_config
    ):
        # Same training recipe, different fabric: the second program
        # call must reuse the cached software weights bit for bit.
        cache = ArtifactCache(tmp_path)
        first = program_pipeline(mlp_config, cache=cache)
        sibling = dataclasses.replace(mlp_config, sigma=0.4)
        second = program_pipeline(sibling, cache=cache)
        for a, b in zip(first.layer_weights, second.layer_weights):
            assert np.array_equal(a, b)
