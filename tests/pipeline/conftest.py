"""Shared pipeline fixtures: small programmed stacks, built once."""

from __future__ import annotations

import pytest

from repro.pipeline import PipelineConfig, program_pipeline

MLP_CONFIG = PipelineConfig(
    kind="mlp", image_size=7, n_train=120, hidden=12, epochs=40,
    sigma=0.2, tile_rows=20, seed=3, n_probes=8,
)
BSB_CONFIG = PipelineConfig(
    kind="bsb", image_size=7, n_train=120, n_prototypes=4,
    sigma=0.2, tile_rows=25, seed=5, n_probes=8,
)


@pytest.fixture(scope="session")
def mlp_config() -> PipelineConfig:
    return MLP_CONFIG


@pytest.fixture(scope="session")
def bsb_config() -> PipelineConfig:
    return BSB_CONFIG


@pytest.fixture(scope="session")
def mlp_artifact():
    """A small two-layer MLP pipeline, programmed once per session."""
    return program_pipeline(MLP_CONFIG)


@pytest.fixture(scope="session")
def bsb_artifact():
    """A small BSB recall pipeline, programmed once per session."""
    return program_pipeline(BSB_CONFIG)
