"""Served pipelines: bit-identity, telemetry, health, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.retention import RetentionConfig, age_pair
from repro.pipeline import PipelineService, offline_engine
from repro.runtime.telemetry import RunLog
from repro.serve.health import DriftPolicy


class TestServedMLP:
    def test_served_equals_offline_bit_for_bit(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:16]
        expected = offline_engine(mlp_artifact).forward(x)
        with PipelineService(mlp_artifact) as service:
            assert np.array_equal(service.forward(x, timeout=30.0),
                                  expected)

    def test_ir_mode_override_tracks_offline(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:8]
        expected = offline_engine(
            mlp_artifact, ir_mode="fixed_point"
        ).forward(x)
        with PipelineService(
            mlp_artifact, ir_mode="fixed_point"
        ) as service:
            assert np.array_equal(service.forward(x, timeout=30.0),
                                  expected)

    @pytest.mark.parametrize("solver", ["lu", "schur", "cg"])
    def test_nodal_solver_knob_serves_every_solver(
        self, mlp_config, mlp_artifact, solver
    ):
        # The end-to-end acceptance smoke: a whole served pipeline in
        # ir_mode="nodal" under each nodal solver.  lu matches the
        # offline engine exactly; the fast solvers stay within their
        # documented bounds, far inside the ADC step.
        x = mlp_config.dataset().x_test[:4]
        expected = offline_engine(
            mlp_artifact, ir_mode="nodal"
        ).forward(x)
        with PipelineService(
            mlp_artifact, ir_mode="nodal", nodal_solver=solver
        ) as service:
            out = service.forward(x, timeout=60.0)
        if solver == "lu":
            assert np.array_equal(out, expected)
        else:
            np.testing.assert_allclose(
                out, expected, rtol=1e-6, atol=1e-8
            )

    def test_replicas_do_not_change_results(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:8]
        expected = offline_engine(mlp_artifact).forward(x)
        with PipelineService(mlp_artifact, replicas=2) as service:
            assert np.array_equal(service.forward(x, timeout=30.0),
                                  expected)

    def test_predict_single_query(self, mlp_config, mlp_artifact):
        x = mlp_config.dataset().x_test[0]
        expected = offline_engine(mlp_artifact).predict(x)
        with PipelineService(mlp_artifact) as service:
            assert np.array_equal(
                service.predict(x, timeout=30.0), expected
            )


class TestServedBSB:
    def test_recall_equals_offline_bit_for_bit(self, bsb_artifact):
        offline = offline_engine(bsb_artifact)
        with PipelineService(bsb_artifact) as service:
            for proto in bsb_artifact.prototypes[:2]:
                probe = proto.copy()
                probe[:5] = -probe[:5]
                expected = offline.recall(probe)
                got = service.recall(probe, timeout=30.0)
                assert np.array_equal(got.state, expected.state)
                assert got.iterations == expected.iterations
                assert got.converged == expected.converged

    def test_forward_returns_states_and_counts_recalls(
        self, bsb_artifact
    ):
        with PipelineService(bsb_artifact) as service:
            probes = bsb_artifact.prototypes[:2]
            states = service.forward(probes, timeout=30.0)
            assert states.shape == probes.shape
            status = service.status()
            assert status["recall"]["recalls"] == 2
            assert status["recall"]["converged"] == 2


class TestTelemetry:
    def test_status_inventory(self, mlp_artifact):
        with PipelineService(mlp_artifact) as service:
            status = service.status()
        assert status["kind"] == "mlp"
        assert status["n_layers"] == 2
        assert status["ir_mode"] == mlp_artifact.config.ir_mode
        assert len(status["layers"]) == 2
        for i, layer in enumerate(status["layers"]):
            assert layer["layer"] == i
            assert layer["shape"] == list(mlp_artifact.shapes[i])
            assert layer["scale"] == mlp_artifact.scales[i]
        # Every lane is inventoried with its queue counters, and the
        # labels carry the layer prefix the run log aggregates by.
        assert status["deadline_misses"] == 0
        for name, lane in status["queues"].items():
            assert name.startswith("layer")
            assert lane["depth"] == 0
            assert lane["deadline_misses"] == 0

    def test_stats_split_by_stage(self, mlp_config, mlp_artifact):
        log = RunLog()
        x = mlp_config.dataset().x_test[:6]
        with PipelineService(mlp_artifact, log=log) as service:
            service.forward(x, timeout=30.0)
            stats = service.stats()
        assert set(stats["stages"]) == {"layer0", "layer1"}
        for stage in stats["stages"].values():
            assert stage["answered"] >= 6
            assert stage["dropped"] == 0
            assert stage["mean_latency_s"] > 0.0

    def test_bsb_stats_carry_recall_summary(self, bsb_artifact):
        with PipelineService(bsb_artifact) as service:
            service.recall(bsb_artifact.prototypes[0], timeout=30.0)
            stats = service.stats()
        assert stats["recall"]["recalls"] == 1


class TestHealth:
    def test_drifted_layer_replica_recovers(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:4]
        expected = offline_engine(mlp_artifact).forward(x)
        with PipelineService(
            mlp_artifact, replicas=2,
            policy=DriftPolicy(threshold=0.05),
        ) as service:
            victim = service.layer_services[1].groups[0].replicas[0]
            age_pair(
                victim.engine.target, 3e5,
                RetentionConfig(nu_median=0.05, nu_sigma=0.5),
                np.random.default_rng(11),
            )
            events = service.run_recovery_cycle()
            assert set(events) == {"layer0", "layer1"}
            assert events["layer0"] == []
            assert [e.action for e in events["layer1"]] == ["reprogram"]
            # Post-recovery traffic is exact again.
            assert np.array_equal(
                service.forward(x, timeout=30.0), expected
            )

    def test_killed_replica_is_covered_by_its_sibling(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:4]
        expected = offline_engine(mlp_artifact).forward(x)
        with PipelineService(mlp_artifact, replicas=2) as service:
            service.kill_replica(layer=0, shard=0, replica=0)
            assert np.array_equal(
                service.forward(x, timeout=30.0), expected
            )


class TestLifecycle:
    def test_close_refuses_new_work(self, mlp_artifact):
        service = PipelineService(mlp_artifact)
        service.close()
        with pytest.raises(RuntimeError):
            service.predict(
                np.zeros(mlp_artifact.shapes[0][0]), timeout=5.0
            )
