"""Engine semantics: staged chain, recall loop, offline bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.bsb import bsb_recall
from repro.nn.mlp import MLPOnCrossbars
from repro.pipeline import (
    DirectLane,
    PipelineEngine,
    offline_engine,
    stage_activation,
)
from repro.xbar.crossbar import IR_MODES


class TestStageActivation:
    def test_matches_reference_expression(self, rng):
        out = rng.normal(size=(5, 8))
        gain = 0.7
        expected = np.clip(np.maximum(out, 0.0) * gain, 0.0, 1.0)
        assert np.array_equal(stage_activation(out, gain), expected)

    def test_backend_string_accepted(self, rng):
        out = rng.normal(size=(3, 4))
        assert np.array_equal(
            stage_activation(out, 0.5, xp="numpy"),
            stage_activation(out, 0.5),
        )


class TestValidation:
    def test_engine_rejects_bad_wiring(self, mlp_artifact):
        lane = DirectLane(mlp_artifact.layers[0].build_tiled())
        with pytest.raises(ValueError, match="lane"):
            PipelineEngine(lanes=[], scales=[])
        with pytest.raises(ValueError, match="scales"):
            PipelineEngine(lanes=[lane], scales=[1.0, 2.0])
        with pytest.raises(ValueError, match="kind"):
            PipelineEngine(lanes=[lane], scales=[1.0], kind="rnn")
        with pytest.raises(ValueError, match="dynamics"):
            PipelineEngine(lanes=[lane], scales=[1.0], kind="bsb")

    def test_bsb_engine_is_single_layer(self, bsb_artifact):
        lane = DirectLane(bsb_artifact.layers[0].build_tiled())
        with pytest.raises(ValueError, match="single"):
            PipelineEngine(
                lanes=[lane, lane], scales=[1.0, 1.0], kind="bsb",
                dynamics=bsb_artifact.bsb_dynamics(),
            )

    def test_recall_rejected_on_mlp(self, mlp_artifact):
        engine = offline_engine(mlp_artifact)
        with pytest.raises(ValueError, match="BSB"):
            engine.submit_recall(np.zeros(49))


class TestDirectLane:
    def test_answers_immediately_and_ignores_deadline(
        self, mlp_artifact
    ):
        fleet = mlp_artifact.layers[0]
        lane = DirectLane(fleet.build_tiled(), "ideal")
        x = np.full(fleet.shape[0], 0.5)
        future = lane.submit(x, deadline_s=0.0)
        assert future.done()
        assert np.array_equal(
            future.result(), fleet.build_tiled().matvec(x, "ideal")
        )


class TestMLPOfflineIdentity:
    @pytest.mark.parametrize("ir_mode", IR_MODES)
    def test_forward_matches_mlp_on_crossbars(
        self, mlp_config, mlp_artifact, ir_mode
    ):
        # The tentpole contract, per read model: the staged engine over
        # restored tiles equals the offline two-crossbar deployment
        # float for float.
        x = mlp_config.dataset().x_test[:12]
        reference = MLPOnCrossbars(
            mlp_artifact.mlp_weights(),
            mlp_artifact.layers[0].build_tiled(),
            mlp_artifact.layers[1].build_tiled(),
            hidden_gain=mlp_artifact.hidden_gain,
        )
        engine = offline_engine(mlp_artifact, ir_mode=ir_mode)
        assert np.array_equal(
            engine.forward(x), reference.scores(x, ir_mode)
        )

    def test_single_query_matches_batch_row(
        self, mlp_config, mlp_artifact
    ):
        x = mlp_config.dataset().x_test[:6]
        engine = offline_engine(mlp_artifact)
        batch = engine.forward(x)
        for i, row in enumerate(x):
            assert np.array_equal(engine.predict(row), batch[i])


class TestBSBOfflineIdentity:
    def test_recall_matches_bipolar_hardware_loop(
        self, bsb_config, bsb_artifact
    ):
        # The engine's phase-split recall must replay the offline
        # hardware loop exactly: same states, same iteration counts.
        tiled = bsb_artifact.layers[0].build_tiled()
        scale = bsb_artifact.scales[0]
        mode = bsb_config.ir_mode

        def hw_matvec(v):
            pos = tiled.matvec(np.clip(v, 0.0, 1.0), mode)
            neg = tiled.matvec(np.clip(-v, 0.0, 1.0), mode)
            return (pos - neg) * scale

        engine = offline_engine(bsb_artifact)
        rng = np.random.default_rng(7)
        for proto in bsb_artifact.prototypes:
            probe = proto * rng.choice(
                [1.0, -1.0], size=proto.size, p=[0.9, 0.1]
            )
            expected = bsb_recall(
                probe, bsb_artifact.bsb_dynamics(), matvec=hw_matvec
            )
            got = engine.recall(probe)
            assert np.array_equal(got.state, expected.state)
            assert got.iterations == expected.iterations
            assert got.converged == expected.converged

    def test_submit_resolves_to_state_vector(self, bsb_artifact):
        engine = offline_engine(bsb_artifact)
        probe = bsb_artifact.prototypes[0]
        assert np.array_equal(
            engine.submit(probe).result(timeout=5.0),
            engine.recall(probe).state,
        )

    def test_recall_stats_accumulate(self, bsb_artifact):
        engine = offline_engine(bsb_artifact)
        assert engine.recall_stats()["recalls"] == 0
        for proto in bsb_artifact.prototypes[:2]:
            engine.recall(proto)
        stats = engine.recall_stats()
        assert stats["recalls"] == 2
        assert stats["converged"] == 2
        assert stats["mean_iterations"] >= 1.0
