"""Engine behaviour: suppressions, CLI exit codes, JSON schema."""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, parse_suppressions
from repro.lint.cli import JSON_SCHEMA_VERSION, main

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_inline_directives_cover_every_finding(self):
        result = lint_paths([FIXTURES / "suppressed.py"])
        assert result.violations == ()
        assert len(result.suppressed) == 4
        assert {v.code for v in result.suppressed} == {"REP001", "REP004"}

    def test_file_wide_directive(self):
        result = lint_paths([FIXTURES / "file_disabled.py"])
        # Both REP001 findings are file-disabled; REP004 still fires.
        assert [v.code for v in result.violations] == ["REP004"]
        assert [v.code for v in result.suppressed] == ["REP001", "REP001"]

    def test_directive_on_other_line_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "# repro-lint: disable=REP001\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        from repro.lint import lint_sources

        result = lint_sources([("f.py", source)])
        assert [v.code for v in result.violations] == ["REP001"]

    def test_directive_inside_string_is_ignored(self):
        smap = parse_suppressions(
            's = "# repro-lint: disable=REP001"\n'
        )
        assert smap.by_line == {}
        assert smap.file_wide == frozenset()

    def test_unknown_codes_are_dropped(self):
        smap = parse_suppressions("x = 1  # repro-lint: disable=REP999\n")
        assert smap.by_line == {}
        assert smap.unknown == ((1, "REP999"),)

    def test_multi_code_inline_directive(self):
        # One directive, several codes: all suppressed on that line.
        source = (
            "import numpy as np\n"
            "def f(items=[], xp=np):\n"
            "    return np.einsum('i->', xp.asarray(items))"
            "  # repro-lint: disable=REP004,REP006\n"
        )
        from repro.lint import lint_sources

        result = lint_sources([("f.py", source)])
        assert [v.code for v in result.violations] == ["REP004"]
        assert [v.code for v in result.suppressed] == ["REP006"]

    def test_multi_code_directive_with_spaces_and_case(self):
        smap = parse_suppressions(
            "x = 1  # repro-lint: disable=rep007 , REP009\n"
        )
        assert smap.by_line == {1: frozenset({"REP007", "REP009"})}
        assert smap.unknown == ()

    def test_unknown_code_surfaces_as_rep000(self):
        from repro.lint import lint_sources

        result = lint_sources(
            [("f.py", "x = 1  # repro-lint: disable=REP777\n")]
        )
        assert [v.code for v in result.violations] == ["REP000"]
        assert "REP777" in result.violations[0].message
        # REP000 is never suppressible, even by disable=all.
        result = lint_sources(
            [("f.py", "x = 1  # repro-lint: disable=all,REP777\n")]
        )
        assert [v.code for v in result.violations] == ["REP000"]

    def test_mixed_known_and_unknown_codes(self):
        smap = parse_suppressions(
            "x = 1  # repro-lint: disable=REP001,REP998\n"
        )
        assert smap.by_line == {1: frozenset({"REP001"})}
        assert smap.unknown == ((1, "REP998"),)

    def test_file_level_suppression_covers_cross_module_rules(self):
        # A project-wide REP007 finding attaches to the class's file;
        # a file-wide directive there suppresses it like any per-file
        # rule.
        source = (
            "# repro-lint: disable-file=REP007\n"
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._x = 0\n"
            "        self._t = threading.Thread(target=self._run)\n"
            "        self._t.start()\n"
            "    def _run(self):\n"
            "        self._x += 1\n"
            "    def value(self):\n"
            "        return self._x\n"
            "    def close(self):\n"
            "        self._t.join()\n"
        )
        from repro.lint import lint_sources

        clean = lint_sources([("c.py", source)])
        assert clean.violations == ()
        assert [v.code for v in clean.suppressed] == ["REP007"]
        dirty = lint_sources(
            [("c.py", source.replace("# repro-lint: disable-file=REP007\n", ""))]
        )
        assert [v.code for v in dirty.violations] == ["REP007"]


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert main([str(FIXTURES / "rep001_good.py")]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "name", ["rep001_bad.py", "rep002_bad.py", "rep003_bad.py",
                 "rep004_bad.py", "rep005_bad.py"]
    )
    def test_exit_nonzero_on_each_rule_fixture(self, name, capsys):
        assert main([str(FIXTURES / name)]) == 1
        capsys.readouterr()

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["definitely/not/a/path.py"]) == 2
        assert "error" in capsys.readouterr().err

    def test_text_output_format(self, capsys):
        main([str(FIXTURES / "rep004_bad.py"), "--statistics"])
        out = capsys.readouterr().out
        assert "rep004_bad.py:6:" in out
        assert "REP004: 6" in out
        assert "6 violations (0 suppressed, 0 baselined) in 1 files" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out

    def test_unknown_select_code_errors(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "rep001_good.py"), "--select", "REP9"])


class TestJsonOutput:
    def test_schema(self, capsys):
        exit_code = main(
            [str(FIXTURES / "rep005_bad.py"), "--format", "json"]
        )
        assert exit_code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == JSON_SCHEMA_VERSION
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"REP005": 3}
        assert doc["suppressed"] == []
        first = doc["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}
        assert first["code"] == "REP005"
        assert isinstance(first["line"], int)

    def test_clean_document(self, capsys):
        assert main(
            [str(FIXTURES / "rep002_good.py"), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["violations"] == []

    def test_suppressions_are_reported(self, capsys):
        main([str(FIXTURES / "suppressed.py"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert len(doc["suppressed"]) == 4

    def test_output_is_deterministic(self, capsys):
        main([str(FIXTURES), "--format", "json"])
        first = capsys.readouterr().out
        main([str(FIXTURES), "--format", "json"])
        second = capsys.readouterr().out
        assert first == second


class TestGithubFormat:
    def test_error_annotations(self, capsys):
        exit_code = main(
            [str(FIXTURES / "rep005_bad.py"), "--format", "github"]
        )
        assert exit_code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        errors = [ln for ln in lines if ln.startswith("::error ")]
        assert len(errors) == 3
        assert "file=" in errors[0]
        assert "line=7" in errors[0]
        assert "title=REP005" in errors[0]
        assert errors[0].count("::") == 2  # command + data separator
        assert lines[-1].startswith("::notice::repro-lint: 3 violations")

    def test_clean_emits_only_the_notice(self, capsys):
        assert main(
            [str(FIXTURES / "rep001_good.py"), "--format", "github"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("::notice::repro-lint: 0 violations")

    def test_message_special_characters_are_escaped(self):
        from repro.lint.cli import _render_github
        from repro.lint.engine import LintResult
        from repro.lint.violation import Violation

        result = LintResult(
            violations=(
                Violation(
                    path="a,b:c.py", line=1, col=1, code="REP001",
                    message="bad\nnews: 100%",
                ),
            ),
            suppressed=(),
            files_checked=1,
        )
        out = _render_github(result)
        assert "file=a%2Cb%3Ac.py" in out
        assert "bad%0Anews: 100%25" in out


class TestJobs:
    def test_parallel_matches_serial(self):
        serial = lint_paths([FIXTURES])
        parallel = lint_paths([FIXTURES], jobs=4)
        assert serial == parallel

    def test_cli_jobs_flag(self, capsys):
        assert main([str(FIXTURES / "rep001_good.py"), "--jobs", "2"]) == 0
        capsys.readouterr()


class TestBaseline:
    def test_round_trip_masks_known_findings(self, tmp_path, capsys):
        baseline_file = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rep004_bad.py")
        assert main([fixture, "--write-baseline", str(baseline_file)]) == 0
        capsys.readouterr()
        # With the baseline, the same findings no longer fail the run.
        assert main(
            [fixture, "--baseline", str(baseline_file), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["violations"] == []
        assert len(doc["baselined"]) == 6

    def test_new_findings_still_fail(self, tmp_path, capsys):
        baseline_file = tmp_path / "baseline.json"
        assert main(
            [str(FIXTURES / "rep004_bad.py"),
             "--write-baseline", str(baseline_file)]
        ) == 0
        capsys.readouterr()
        # A file the baseline has never seen still fails.
        assert main(
            [str(FIXTURES / "rep004_bad.py"),
             str(FIXTURES / "rep005_bad.py"),
             "--baseline", str(baseline_file)]
        ) == 1
        capsys.readouterr()

    def test_duplicate_findings_beyond_budget_fail(self, tmp_path):
        from repro.lint import lint_sources, load_baseline, write_baseline
        from repro.lint.violation import Violation

        v = Violation(
            path="f.py", line=1, col=1, code="REP004", message="m"
        )
        path = tmp_path / "b.json"
        write_baseline(path, [v])
        baseline = load_baseline(path)
        assert baseline.absorb(v) is True
        # Second identical finding exceeds the recorded count.
        assert baseline.absorb(v) is False

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(
            [str(FIXTURES / "rep001_good.py"), "--baseline", str(bad)]
        ) == 2
        assert "baseline" in capsys.readouterr().err
