"""Engine behaviour: suppressions, CLI exit codes, JSON schema."""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, parse_suppressions
from repro.lint.cli import JSON_SCHEMA_VERSION, main

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_inline_directives_cover_every_finding(self):
        result = lint_paths([FIXTURES / "suppressed.py"])
        assert result.violations == ()
        assert len(result.suppressed) == 4
        assert {v.code for v in result.suppressed} == {"REP001", "REP004"}

    def test_file_wide_directive(self):
        result = lint_paths([FIXTURES / "file_disabled.py"])
        # Both REP001 findings are file-disabled; REP004 still fires.
        assert [v.code for v in result.violations] == ["REP004"]
        assert [v.code for v in result.suppressed] == ["REP001", "REP001"]

    def test_directive_on_other_line_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "# repro-lint: disable=REP001\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        from repro.lint import lint_sources

        result = lint_sources([("f.py", source)])
        assert [v.code for v in result.violations] == ["REP001"]

    def test_directive_inside_string_is_ignored(self):
        smap = parse_suppressions(
            's = "# repro-lint: disable=REP001"\n'
        )
        assert smap.by_line == {}
        assert smap.file_wide == frozenset()

    def test_unknown_codes_are_dropped(self):
        smap = parse_suppressions("x = 1  # repro-lint: disable=REP999\n")
        assert smap.by_line == {}


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert main([str(FIXTURES / "rep001_good.py")]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "name", ["rep001_bad.py", "rep002_bad.py", "rep003_bad.py",
                 "rep004_bad.py", "rep005_bad.py"]
    )
    def test_exit_nonzero_on_each_rule_fixture(self, name, capsys):
        assert main([str(FIXTURES / name)]) == 1
        capsys.readouterr()

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["definitely/not/a/path.py"]) == 2
        assert "error" in capsys.readouterr().err

    def test_text_output_format(self, capsys):
        main([str(FIXTURES / "rep004_bad.py"), "--statistics"])
        out = capsys.readouterr().out
        assert "rep004_bad.py:6:" in out
        assert "REP004: 6" in out
        assert "6 violations (0 suppressed) in 1 files" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out

    def test_unknown_select_code_errors(self):
        with pytest.raises(SystemExit):
            main([str(FIXTURES / "rep001_good.py"), "--select", "REP9"])


class TestJsonOutput:
    def test_schema(self, capsys):
        exit_code = main(
            [str(FIXTURES / "rep005_bad.py"), "--format", "json"]
        )
        assert exit_code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == JSON_SCHEMA_VERSION
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"REP005": 3}
        assert doc["suppressed"] == []
        first = doc["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}
        assert first["code"] == "REP005"
        assert isinstance(first["line"], int)

    def test_clean_document(self, capsys):
        assert main(
            [str(FIXTURES / "rep002_good.py"), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["violations"] == []

    def test_suppressions_are_reported(self, capsys):
        main([str(FIXTURES / "suppressed.py"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert len(doc["suppressed"]) == 4

    def test_output_is_deterministic(self, capsys):
        main([str(FIXTURES), "--format", "json"])
        first = capsys.readouterr().out
        main([str(FIXTURES), "--format", "json"])
        second = capsys.readouterr().out
        assert first == second
