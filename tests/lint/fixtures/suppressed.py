"""Suppression fixture: every finding here carries a directive."""

import numpy as np


def sanctioned_entropy():
    # A genuine entry point that wants OS entropy, reviewed and waived.
    return np.random.default_rng()  # repro-lint: disable=REP001


def waived_mutable_default(values=[]):  # repro-lint: disable=REP004
    return values


def multi_code_line(tags={"a"}):  # repro-lint: disable=REP004,REP001
    return tags


def all_codes_line(acc=[]):  # repro-lint: disable=all
    return acc
