"""REP002 negative fixture: picklable callables only."""

import functools

from repro.analysis.montecarlo import run_monte_carlo
from repro.runtime.executor import map_trials, parallel_map


def _trial(rng, scale=1.0):
    return rng.normal() * scale


def module_level():
    return run_monte_carlo(_trial, trials=4)


def partial_over_module_level():
    return map_trials(functools.partial(_trial, scale=2.0), 4)


def partial_assigned_to_name():
    fn = functools.partial(_trial, scale=3.0)
    return parallel_map(fn, [1, 2, 3])


def unknown_name_is_not_flagged(trial_from_caller):
    # The linter only reports what it can prove; an opaque name passes.
    return run_monte_carlo(trial_from_caller, trials=4)
