"""REP007 positives: worker/API shared state without a consistent lock."""

import threading


class UnguardedCounter:
    """Worker writes, public API reads, no lock anywhere."""

    def __init__(self):
        self._count = 0
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        self._count += 1

    def count(self):
        return self._count

    def close(self):
        self._worker.join()


class InconsistentLock:
    """Locked on the worker side only: the API read races anyway."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latest = None
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        with self._lock:
            self._latest = 1.0

    def latest(self):
        return self._latest

    def close(self):
        self._worker.join()


class AnnotatedWorker:
    """Thread root via annotation, not Thread(target=...)."""

    def __init__(self, pool):
        self._pending = []
        self._worker = pool.spawn(self._drain)

    def _drain(self):  # repro-lint: thread=worker
        self._pending.clear()

    def add(self, item):
        self._pending.append(item)

    def close(self):
        self._worker.join()
