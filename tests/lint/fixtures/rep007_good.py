"""REP007 negatives: guarded, declared-atomic, or not actually shared."""

import threading


class GuardedCounter:
    """Every cross-thread access holds the same lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        with self._lock:
            self._count += 1

    def count(self):
        with self._lock:
            return self._count

    def close(self):
        self._worker.join()


class DeclaredAtomic:
    """Single-writer monotonic flag, declared where initialised."""

    def __init__(self):
        self.alive = True  # repro-lint: atomic
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        if self.alive:
            pass

    def kill(self):
        self.alive = False

    def close(self):
        self._worker.join()


class DeclaredGuarded:
    """guarded-by declaration names the protecting lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latest = None  # guarded-by: _lock
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        with self._lock:
            self._latest = 1.0

    def latest(self):
        # Deliberately lock-free: the guarded-by declaration is the
        # reviewed waiver the rule honours.
        return self._latest

    def close(self):
        self._worker.join()


class NoThreads:
    """Mutable state, but everything runs on the caller thread."""

    def __init__(self):
        self._count = 0

    def bump(self):
        self._count += 1

    def count(self):
        return self._count
