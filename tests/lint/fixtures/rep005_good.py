"""REP005 negative fixture: narrow or handled exceptions."""


def narrow_except():
    try:
        return 1 / 0
    except ZeroDivisionError:
        return float("inf")


def broad_but_handled():
    try:
        return 1 / 0
    except Exception:
        return None  # handled: a value is produced, not silence


def narrow_pass_is_fine():
    try:
        import does_not_exist  # noqa: F401
    except ImportError:
        pass
