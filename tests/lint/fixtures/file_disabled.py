"""File-wide suppression fixture."""
# repro-lint: disable-file=REP001

import numpy as np


def first():
    return np.random.default_rng()


def second():
    return np.random.default_rng()


def still_flagged(values=[]):  # REP004 is not file-disabled
    return values
