"""REP004 positive fixture: mutable default arguments."""

import collections


def list_default(values=[]):  # line 6
    return values


def dict_default(mapping={}):  # line 10
    return mapping


def set_default(tags={"a"}):  # line 14
    return tags


def call_default(items=list()):  # noqa: C408 - line 18
    return items


def defaultdict_default(table=collections.defaultdict(list)):  # line 22
    return table


def kwonly_default(*, acc=[]):  # line 26
    return acc
