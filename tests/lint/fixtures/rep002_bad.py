"""REP002 positive fixture: unpicklable callables into executor APIs."""

import functools
from functools import partial

from repro.analysis.montecarlo import run_monte_carlo
from repro.runtime.executor import map_trials, parallel_map


def literal_lambda():
    return run_monte_carlo(lambda rng: rng.normal(), trials=4)  # line 11


def lambda_via_name():
    trial = lambda rng: rng.normal()  # noqa: E731
    return map_trials(trial, 4)  # line 16


def nested_function():
    def trial(rng):
        return rng.normal()

    return run_monte_carlo(trial, trials=4)  # line 23


def partial_over_lambda():
    fn = functools.partial(lambda x, k: x + k, k=2)
    return parallel_map(fn, [1, 2, 3])  # line 28


def partial_literal_over_nested():
    def inner(x, k):
        return x + k

    return parallel_map(partial(inner, k=2), [1, 2, 3])  # line 35


def keyword_lambda():
    return map_trials(trial=lambda rng: rng.normal(), trials=4)  # line 39
