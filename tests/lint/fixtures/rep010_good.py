"""REP010 negatives: forwarded backends and host-boundary conversions."""

import numpy as np


def _host_helper(x):
    return np.exp(x)


def _ported_helper(x, xp=np):
    return xp.exp(x)


def to_numpy(x):
    return np.asarray(x)


def forwards_keyword(x, xp=np):
    return _ported_helper(x, xp=xp)


def forwards_positional(x, xp=np):
    return _ported_helper(x, xp)


def converts_at_boundary(x, xp=np):
    # The host helper runs on explicitly-converted host data and the
    # result is converted back: the sanctioned porting idiom.
    return xp.asarray(_host_helper(to_numpy(x)))


def host_caller(x):
    # No backend parameter: free to use host helpers directly.
    return _host_helper(x)
