"""REP006 positive fixture: numpy calls inside backend-aware kernels."""

import numpy as np
import numpy as onp

from repro.backend import resolve_backend


def kernel_with_xp(x, xp=None):
    bk = resolve_backend(xp)
    y = np.exp(bk.asarray(x))  # line 11: np op despite xp param
    return np.sum(y, axis=0)  # line 12: another one


def kernel_with_backend(x, backend=None):
    return np.einsum("ij,jk->ik", x, x)  # line 16: aliased below too


def kernel_with_alias(x, backend=None):
    return onp.clip(x, 0.0, 1.0)  # line 20: through a numpy alias
