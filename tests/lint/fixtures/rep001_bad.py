"""REP001 positive fixture: every unseeded-randomness form."""

import numpy as np
import numpy.random as npr
from numpy import random as nrandom
from numpy.random import RandomState, default_rng


def unseeded_attribute():
    return np.random.default_rng()  # line 10: unseeded via np.random


def unseeded_direct():
    return default_rng()  # line 14: unseeded via from-import


def unseeded_module_alias():
    return npr.default_rng()  # line 18: unseeded via numpy.random alias


def unseeded_from_numpy_import_random():
    return nrandom.default_rng()  # line 22


def legacy_randomstate():
    return RandomState(42)  # line 26: legacy even when seeded


def legacy_randomstate_attribute():
    return np.random.RandomState()  # line 30


def global_state_draw():
    np.random.seed(0)  # line 34: global seeding
    return np.random.normal(0.0, 1.0, size=3)  # line 35: global draw
