"""REP006 negative fixture: the allowed shapes of backend-aware code."""

import numpy as np

from repro.backend import resolve_backend


def ported_kernel(x, xp=None):
    # Routing through the namespace object is the whole point.
    bk = resolve_backend(xp)
    y = bk.exp(bk.asarray(x))
    return bk.sum(y, axis=0)


def boundary_conversions(x, backend=None):
    bk = resolve_backend(backend)
    # asarray/nonzero are the host boundary, deliberately exempt.
    host = np.asarray(bk.to_numpy(x))
    return bk.asarray(host[np.nonzero(host > 0)])


def plain_numpy_helper(x):
    # No xp/backend parameter: ordinary numpy code is untouched.
    return np.exp(np.sum(x, axis=0))
