"""REP010 positives: backend purity broken across call boundaries."""

import numpy as np


def _host_helper(x):
    return np.exp(x)


def _indirect_helper(x):
    return _host_helper(x) * 2


def _ported_helper(x, xp=np):
    return xp.exp(x)


def calls_numpy_helper(x, xp=np):
    return _host_helper(x)


def calls_numpy_transitively(x, xp=np):
    return _indirect_helper(x)


def drops_the_backend(x, xp=np):
    # The callee is backend-aware but the namespace is not forwarded,
    # so it silently falls back to numpy.
    return _ported_helper(x)
