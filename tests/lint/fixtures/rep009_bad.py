"""REP009 positives: order-unstable accumulation in backend-aware kernels."""

import numpy as np


def blas_product(x, w, xp=np):
    return x @ w


def inplace_blas(acc, w, xp=np):
    acc @= w
    return acc


def builtin_sum_reduce(blocks, xp=np):
    return sum(blocks)


def accumulation_loop(parts, n, xp=np):
    total = xp.zeros(n)
    for part in parts:
        total += part
    return total
