"""REP008 positives: leaked threads and incomplete service surfaces."""

import threading

from repro.serve.protocol import ServiceLifecycle


class NeverJoined:
    """Starts a worker and has no join anywhere."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def close(self):
        pass


class JoinedOffPath:
    """Joins, but only from a method nothing lifecycle-ish reaches."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def reap(self):
        self._worker.join()


class FireAndForget:
    """Starts a thread it keeps no reference to: unjoinable."""

    def __init__(self):
        threading.Thread(target=self._run).start()

    def _run(self):
        pass


class HalfService(ServiceLifecycle):
    """Claims the lifecycle mixin but misses most of the surface."""

    def submit(self, x, deadline_s=None):
        raise NotImplementedError

    def drain(self, timeout=None):
        pass
