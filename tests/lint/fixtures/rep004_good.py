"""REP004 negative fixture: immutable defaults only."""


def none_default(values=None):
    return values if values is not None else []


def tuple_default(shape=(2, 3)):
    return shape


def scalar_defaults(count=0, name="x", flag=False, ratio=1.5):
    return count, name, flag, ratio


def frozenset_default(codes=frozenset({"REP001"})):
    return codes
