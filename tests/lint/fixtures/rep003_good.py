"""REP003 negative fixture: frozen, hashable cache-key dataclasses."""

import dataclasses

from repro.analysis.montecarlo import run_monte_carlo
from repro.runtime.cache import stable_key


@dataclasses.dataclass(frozen=True)
class StableKeyConfig:
    sigma: float
    trials: int
    gammas: tuple[float, ...]


@dataclasses.dataclass
class NeverAKey:
    # Mutable, but never flows into a cache key, so REP003 ignores it.
    scratch: dict


def _trial(rng):
    return rng.normal()


def key_from_constructor():
    return stable_key("mc", StableKeyConfig(0.1, 10, (0.0, 0.5)))


def key_from_local_variable():
    cfg = StableKeyConfig(sigma=0.1, trials=10, gammas=(0.0,))
    return run_monte_carlo(_trial, trials=10, cache_config=cfg)


def key_from_replace():
    cfg = StableKeyConfig(0.1, 10, (0.0,))
    return stable_key("mc", dataclasses.replace(cfg, sigma=0.2))
