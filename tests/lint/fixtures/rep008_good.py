"""REP008 negatives: joined threads and complete service surfaces."""

import threading

from repro.serve.protocol import ServiceLifecycle


class JoinedOnClose:
    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def close(self):
        self._worker.join()


class JoinedViaDrain:
    """The join sits behind a helper the drain path reaches."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def _stop_worker(self):
        self._worker.join()

    def drain(self, timeout=None):
        self._stop_worker()


class ConstructedNotStarted:
    """Holding an unstarted Thread is fine; only started ones leak."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run)

    def _run(self):
        pass


class FullService(ServiceLifecycle):
    def submit(self, x, deadline_s=None):
        raise NotImplementedError

    def predict(self, x, deadline_s=None, timeout=None):
        raise NotImplementedError

    def status(self):
        return {}

    def stats(self):
        return {}

    def drain(self, timeout=None):
        pass
