"""REP002 negative fixture: picklable fleet repair callables."""

import functools

from repro.fleet import RollingReprogrammer, restore_replica


def _repair(replica, strict=False):
    restore_replica(replica)


def default_repair(groups):
    # No callable passed at all: the picklable default applies.
    return RollingReprogrammer(groups)


def module_level(groups):
    return RollingReprogrammer(groups, reprogram_fn=restore_replica)


def partial_over_module_level(groups):
    return RollingReprogrammer(
        groups, reprogram_fn=functools.partial(_repair, strict=True)
    )


def early_positionals_are_not_callables(groups, policy):
    # groups/policy/min_live occupy the first three positions; none of
    # them is the repair callable, so none should be inspected.
    return RollingReprogrammer(groups, policy, 2)
