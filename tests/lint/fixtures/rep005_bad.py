"""REP005 positive fixture: bare and silently swallowed excepts."""


def bare_except():
    try:
        return 1 / 0
    except:  # noqa: E722 - line 7
        return None


def swallowed_exception():
    try:
        return 1 / 0
    except Exception:  # line 14
        pass


def swallowed_base_exception():
    try:
        return 1 / 0
    except BaseException:  # line 20
        ...
