"""REP001 negative fixture: seeded and threaded randomness only."""

import numpy as np
from numpy.random import default_rng


def seeded_literal():
    return np.random.default_rng(42)


def seeded_direct(seed):
    return default_rng(seed)


def from_seed_sequence(seed, index):
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def threaded(rng: np.random.Generator):
    return rng.normal(0.0, 1.0, size=3)


def generator_method_named_like_module(obj):
    # Not numpy.random: attribute chains on other objects are ignored.
    return obj.random.normal(0.0, 1.0)
