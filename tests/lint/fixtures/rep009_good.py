"""REP009 negatives: fixed-order reductions, or no backend parameter."""

import numpy as np


def einsum_product(x, w, xp=np):
    return xp.einsum("ij,jk->ik", x, w)


def stacked_reduce(parts, xp=np):
    return xp.sum(xp.stack(parts, axis=0), axis=0)


def batch_invariant_matmul(x, w, xp=np):
    # The blessed helper itself is the one place allowed to spell the
    # raw product out.
    return x @ w


def host_side_product(x, w):
    # No xp/backend parameter: plain host math is out of scope.
    return x @ w


def scalar_accumulation(values, xp=np):
    # '+=' on a plain float is not an array accumulation loop.
    total = 0.0
    for value in values:
        total += value
    return total
