"""REP003 positive fixture: unstable dataclasses reaching cache keys."""

import dataclasses

from repro.runtime.cache import stable_key


@dataclasses.dataclass
class MutableKeyConfig:  # line 9: not frozen, used at line 31
    sigma: float
    trials: int


@dataclasses.dataclass(frozen=True)
class DictFieldConfig:  # line 15: frozen but carries a dict field
    sigma: float
    options: dict[str, float]


@dataclasses.dataclass(frozen=True)
class SetFieldConfig:  # line 21: frozen but carries a set field
    tags: set


def key_from_constructor():
    return stable_key("mc", DictFieldConfig(0.1, {}))


def key_from_local_variable():
    cfg = MutableKeyConfig(sigma=0.1, trials=10)
    return stable_key("mc", cfg)  # line 31


def key_from_parameter(cfg: SetFieldConfig):
    return stable_key("mc", {"config": cfg, "seed": 0})
