"""REP002 positive fixture: unpicklable fleet repair callables."""

from repro.fleet import RollingReprogrammer
from repro.serve.health import DriftPolicy


def literal_lambda(groups):
    return RollingReprogrammer(
        groups, reprogram_fn=lambda replica: None  # line 9
    )


def lambda_via_name(groups):
    repair = lambda replica: None  # noqa: E731
    return RollingReprogrammer(groups, reprogram_fn=repair)  # line 15


def nested_function_positional(groups):
    def repair(replica):
        return None

    return RollingReprogrammer(
        groups, DriftPolicy(), 1, repair  # line 23
    )
