"""Meta-test: the repository's own source tree must lint clean.

This is the executable form of the determinism contracts: any new
unseeded RNG, unpicklable trial callable, unstable cache key, mutable
default, swallowed exception, unguarded cross-thread state, leaked
worker thread, order-unstable accumulation or backend-purity break
under ``src/repro`` fails the suite (and the ``repro-lint`` CI job)
until fixed or explicitly suppressed.
"""

import json
from pathlib import Path

import repro
from repro.lint import lint_paths
from repro.lint.violation import RULES

SRC_ROOT = Path(repro.__file__).parent
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean():
    result = lint_paths([SRC_ROOT])
    rendered = "\n".join(v.render() for v in result.violations)
    assert result.violations == (), (
        "src/repro violates its determinism contracts "
        "(see docs/determinism.md):\n" + rendered
    )


def test_repo_scan_covers_the_package():
    result = lint_paths([SRC_ROOT])
    # Sanity floor so a path/discovery regression cannot silently turn
    # the clean-tree assertion into a no-op.
    assert result.files_checked > 50


def test_concurrency_rules_are_actually_enforced():
    # Guard against the clean-tree assertion passing because the new
    # cross-module rules were accidentally disabled rather than because
    # the tree is clean.
    assert {"REP007", "REP008", "REP009", "REP010"} <= set(RULES)
    result = lint_paths([SRC_ROOT], select=["REP007", "REP008", "REP010"])
    # The project pass ran (it would have flagged these files before
    # the scheduler/fleet fixes); zero findings means fixed, not off.
    assert result.violations == ()
    assert result.files_checked > 50


def test_suppressions_in_tree_are_reviewed_waivers():
    # Every inline suppression under src/repro is a deliberate,
    # commented waiver.  This pins the count so a new suppression has
    # to be justified here rather than slipping in silently.
    result = lint_paths([SRC_ROOT])
    waived = sorted(
        (Path(v.path).name, v.code) for v in result.suppressed
    )
    assert waived == [("executor.py", "REP010")]


def test_baseline_file_carries_no_hidden_debt():
    # The shipped baseline is empty: the tree owes nothing.  If a rule
    # lands that needs deferrals, they become visible diff here.
    baseline_path = REPO_ROOT / "lint-baseline.json"
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert doc["schema_version"] == 1
    assert doc["fingerprints"] == []
