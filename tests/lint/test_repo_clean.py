"""Meta-test: the repository's own source tree must lint clean.

This is the executable form of the determinism contracts: any new
unseeded RNG, unpicklable trial callable, unstable cache key, mutable
default or swallowed exception under ``src/repro`` fails the suite
(and the ``repro-lint`` CI job) until fixed or explicitly suppressed.
"""

from pathlib import Path

import repro
from repro.lint import lint_paths

SRC_ROOT = Path(repro.__file__).parent


def test_repo_lints_clean():
    result = lint_paths([SRC_ROOT])
    rendered = "\n".join(v.render() for v in result.violations)
    assert result.violations == (), (
        "src/repro violates its determinism contracts "
        "(see docs/determinism.md):\n" + rendered
    )


def test_repo_scan_covers_the_package():
    result = lint_paths([SRC_ROOT])
    # Sanity floor so a path/discovery regression cannot silently turn
    # the clean-tree assertion into a no-op.
    assert result.files_checked > 50
