"""Cross-module rules (REP007, REP008, REP010) and the symbol table."""

from pathlib import Path

from repro.lint import lint_paths, lint_sources
from repro.lint.project import collect_file, parse_annotations

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name):
    return lint_paths([FIXTURES / name])


def codes_of(result):
    return [v.code for v in result.violations]


def lines_of(result):
    return [v.line for v in result.violations]


class TestRep007:
    def test_flags_every_unguarded_sharing_pattern(self):
        result = lint_fixture("rep007_bad.py")
        assert codes_of(result) == ["REP007"] * 3
        # One finding per class: unguarded counter, worker-side-only
        # lock, and the annotation-rooted worker.
        assert lines_of(result) == [15, 38, 52]

    def test_messages_name_attr_and_remedy(self):
        result = lint_fixture("rep007_bad.py")
        assert any("_count" in v.message for v in result.violations)
        assert any("guarded-by" in v.message for v in result.violations)

    def test_clean_on_locks_and_declarations(self):
        assert codes_of(lint_fixture("rep007_good.py")) == []

    def test_guarded_by_annotation_is_load_bearing(self):
        # Stripping the declaration from the good fixture must flag it.
        source = (FIXTURES / "rep007_good.py").read_text(encoding="utf-8")
        assert "# guarded-by: _lock" in source
        stripped = source.replace("  # guarded-by: _lock", "")
        result = lint_sources([("g.py", stripped)])
        assert "REP007" in codes_of(result)

    def test_atomic_annotation_is_load_bearing(self):
        source = (FIXTURES / "rep007_good.py").read_text(encoding="utf-8")
        assert "# repro-lint: atomic" in source
        stripped = source.replace("  # repro-lint: atomic", "")
        result = lint_sources([("g.py", stripped)])
        assert "REP007" in codes_of(result)


class TestRep008:
    def test_flags_leaked_threads_and_partial_surfaces(self):
        result = lint_fixture("rep008_bad.py")
        assert codes_of(result) == ["REP008"] * 4
        # never joined, joined off the lifecycle path, fire-and-forget,
        # and the half-implemented ServiceLifecycle subclass.
        assert lines_of(result) == [12, 26, 40, 46]

    def test_surface_message_lists_missing_methods(self):
        result = lint_fixture("rep008_bad.py")
        surface = [v for v in result.violations if "ServiceLifecycle" in v.message]
        assert len(surface) == 1
        for missing in ("predict", "status", "stats"):
            assert missing in surface[0].message

    def test_clean_on_joined_threads_and_full_surface(self):
        assert codes_of(lint_fixture("rep008_good.py")) == []


class TestRep010:
    def test_flags_direct_transitive_and_dropped_backend(self):
        result = lint_fixture("rep010_bad.py")
        assert codes_of(result) == ["REP010"] * 3
        assert lines_of(result) == [19, 23, 29]

    def test_clean_on_forwarding_and_boundaries(self):
        assert codes_of(lint_fixture("rep010_good.py")) == []

    def test_cross_file_resolution(self):
        helpers = (
            "src/repro/xbar/helpers.py",
            "import numpy as np\n"
            "def smooth(x):\n"
            "    return np.convolve(x, np.ones(3), mode='same')\n",
        )
        kernel = (
            "src/repro/xbar/kernel.py",
            "import numpy as np\n"
            "from repro.xbar.helpers import smooth\n"
            "def program(x, xp=np):\n"
            "    return smooth(x)\n",
        )
        result = lint_sources([helpers, kernel])
        assert codes_of(result) == ["REP010"]
        assert result.violations[0].path == "src/repro/xbar/kernel.py"
        assert result.violations[0].line == 4
        assert "smooth" in result.violations[0].message

    def test_backend_package_callee_is_trusted(self):
        backend = (
            "src/repro/backend/core.py",
            "import numpy as np\n"
            "def dispatch(x):\n"
            "    return np.asarray(x)\n",
        )
        kernel = (
            "src/repro/xbar/kernel.py",
            "import numpy as np\n"
            "from repro.backend.core import dispatch\n"
            "def program(x, xp=np):\n"
            "    return dispatch(x)\n",
        )
        assert codes_of(lint_sources([backend, kernel])) == []


class TestAnnotations:
    def test_parse_annotations_maps_lines(self):
        source = (
            "class C:\n"
            "    def run(self):  # repro-lint: thread=worker\n"
            "        self.n = 1  # repro-lint: atomic\n"
            "        self.m = 2  # guarded-by: _lock\n"
        )
        ann = parse_annotations(source)
        assert ann.worker_lines == frozenset({2})
        assert ann.atomic_lines == frozenset({3})
        assert ann.guard_for(4) == "_lock"
        assert ann.guard_for(3) is None

    def test_annotation_inside_string_is_ignored(self):
        ann = parse_annotations('s = "# repro-lint: thread=worker"\n')
        assert ann.worker_lines == frozenset()


class TestSymbolTable:
    def test_collect_file_sees_threads_and_locks(self):
        import ast

        source = (FIXTURES / "rep007_bad.py").read_text(encoding="utf-8")
        tree = ast.parse(source)
        symbols = collect_file(
            "rep007_bad.py", tree, parse_annotations(source)
        )
        by_name = {c.name: c for c in symbols.classes}
        assert set(by_name) == {
            "UnguardedCounter", "InconsistentLock", "AnnotatedWorker"
        }
        assert by_name["InconsistentLock"].lock_attrs == ("_lock",)
        assert [t.target_method for t in by_name["UnguardedCounter"].threads] \
            == ["_run"]
        assert "_drain" in by_name["AnnotatedWorker"].worker_methods()

    def test_symbols_are_picklable(self):
        import ast
        import pickle

        source = (FIXTURES / "rep008_good.py").read_text(encoding="utf-8")
        symbols = collect_file(
            "rep008_good.py", ast.parse(source), parse_annotations(source)
        )
        assert pickle.loads(pickle.dumps(symbols)) == symbols
