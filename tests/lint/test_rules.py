"""Per-rule positive/negative fixture coverage for the REP linter."""

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_sources

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name):
    return lint_paths([FIXTURES / name])


def codes_of(result):
    return [v.code for v in result.violations]


class TestRep001:
    def test_flags_every_unseeded_form(self):
        result = lint_fixture("rep001_bad.py")
        assert codes_of(result) == ["REP001"] * 8
        lines = [v.line for v in result.violations]
        assert lines == [10, 14, 18, 22, 26, 30, 34, 35]

    def test_clean_on_seeded_randomness(self):
        assert codes_of(lint_fixture("rep001_good.py")) == []

    def test_allowlist_waives_entry_points(self):
        result = lint_paths(
            [FIXTURES / "rep001_bad.py"],
            allow_unseeded=["rep001_bad.py"],
        )
        assert codes_of(result) == []


class TestRep002:
    def test_flags_unpicklable_callables(self):
        result = lint_fixture("rep002_bad.py")
        assert codes_of(result) == ["REP002"] * 6
        lines = [v.line for v in result.violations]
        assert lines == [11, 16, 23, 28, 35, 39]

    def test_clean_on_module_level_callables(self):
        assert codes_of(lint_fixture("rep002_good.py")) == []

    def test_flags_unpicklable_fleet_repair_callables(self):
        result = lint_fixture("rep002_fleet_bad.py")
        assert codes_of(result) == ["REP002"] * 3
        assert [v.line for v in result.violations] == [9, 15, 23]
        assert all(
            "RollingReprogrammer" in v.message for v in result.violations
        )

    def test_clean_on_picklable_fleet_repair_callables(self):
        assert codes_of(lint_fixture("rep002_fleet_good.py")) == []


class TestRep003:
    def test_flags_mutable_and_unstable_key_classes(self):
        result = lint_fixture("rep003_bad.py")
        assert codes_of(result) == ["REP003"] * 3
        # Violations attach to the class definitions, not the call sites.
        flagged = {(v.line, v.code) for v in result.violations}
        assert flagged == {(9, "REP003"), (15, "REP003"), (21, "REP003")}

    def test_messages_cite_the_use_site(self):
        result = lint_fixture("rep003_bad.py")
        assert any("MutableKeyConfig" in v.message for v in result.violations)
        assert any("not frozen=True" in v.message for v in result.violations)
        assert any("'options'" in v.message for v in result.violations)

    def test_clean_on_frozen_stable_keys(self):
        assert codes_of(lint_fixture("rep003_good.py")) == []

    def test_cross_file_resolution(self):
        # Class defined in one file, used as a key in another.
        definition = (
            "defs.py",
            "import dataclasses\n"
            "@dataclasses.dataclass\n"
            "class SharedConfig:\n"
            "    sigma: float\n",
        )
        use = (
            "use.py",
            "from repro.runtime.cache import stable_key\n"
            "from defs import SharedConfig\n"
            "def key():\n"
            "    return stable_key('mc', SharedConfig(0.1))\n",
        )
        result = lint_sources([definition, use])
        assert [v.code for v in result.violations] == ["REP003"]
        assert result.violations[0].path == "defs.py"


class TestRep004:
    def test_flags_mutable_defaults(self):
        result = lint_fixture("rep004_bad.py")
        assert codes_of(result) == ["REP004"] * 6
        assert [v.line for v in result.violations] == [6, 10, 14, 18, 22, 26]

    def test_clean_on_immutable_defaults(self):
        assert codes_of(lint_fixture("rep004_good.py")) == []


class TestRep005:
    def test_flags_bare_and_swallowed_excepts(self):
        result = lint_fixture("rep005_bad.py")
        assert codes_of(result) == ["REP005"] * 3
        assert [v.line for v in result.violations] == [7, 14, 21]

    def test_clean_on_narrow_or_handled_excepts(self):
        assert codes_of(lint_fixture("rep005_good.py")) == []


class TestRep006:
    def test_flags_numpy_calls_in_backend_aware_kernels(self):
        result = lint_fixture("rep006_bad.py")
        assert codes_of(result) == ["REP006"] * 4
        assert [v.line for v in result.violations] == [11, 12, 16, 20]

    def test_clean_on_namespace_routing_and_boundaries(self):
        assert codes_of(lint_fixture("rep006_good.py")) == []

    def test_backend_package_is_exempt(self):
        source = (
            "import numpy as np\n"
            "def op(x, xp=None):\n"
            "    return np.exp(x)\n"
        )
        flagged = lint_sources(
            [("src/repro/xbar/kernel.py", source)]
        )
        exempt = lint_sources(
            [("src/repro/backend/core.py", source)]
        )
        assert codes_of(flagged) == ["REP006"]
        assert codes_of(exempt) == []


class TestRep009:
    def test_flags_raw_accumulation_forms(self):
        result = lint_fixture("rep009_bad.py")
        assert codes_of(result) == ["REP009"] * 4
        assert [v.line for v in result.violations] == [7, 11, 16, 22]

    def test_clean_on_einsum_and_blessed_helpers(self):
        assert codes_of(lint_fixture("rep009_good.py")) == []

    def test_backend_package_is_exempt(self):
        source = (
            "import numpy as np\n"
            "def matmul(x, w, xp=np):\n"
            "    return x @ w\n"
        )
        flagged = lint_sources([("src/repro/xbar/kernel.py", source)])
        exempt = lint_sources([("src/repro/backend/core.py", source)])
        assert codes_of(flagged) == ["REP009"]
        assert codes_of(exempt) == []

    def test_shadowed_sum_is_not_flagged(self):
        source = (
            "import numpy as np\n"
            "def reduce(parts, sum, xp=np):\n"
            "    return sum(parts)\n"
        )
        assert codes_of(lint_sources([("f.py", source)])) == []


class TestSelect:
    def test_select_narrows_enforced_rules(self):
        result = lint_paths(
            [FIXTURES / "rep004_bad.py", FIXTURES / "rep005_bad.py"],
            select=["REP005"],
        )
        assert set(codes_of(result)) == {"REP005"}


class TestSyntaxError:
    def test_unparseable_file_reports_rep000(self):
        result = lint_sources([("broken.py", "def f(:\n")])
        assert [v.code for v in result.violations] == ["REP000"]


@pytest.mark.parametrize(
    "name", ["rep001_bad.py", "rep002_bad.py", "rep002_fleet_bad.py",
             "rep003_bad.py", "rep004_bad.py", "rep005_bad.py",
             "rep006_bad.py", "rep007_bad.py", "rep008_bad.py",
             "rep009_bad.py", "rep010_bad.py"]
)
def test_every_positive_fixture_is_dirty(name):
    assert lint_fixture(name).violations


@pytest.mark.parametrize(
    "name", ["rep001_good.py", "rep002_good.py", "rep002_fleet_good.py",
             "rep003_good.py", "rep004_good.py", "rep005_good.py",
             "rep006_good.py", "rep007_good.py", "rep008_good.py",
             "rep009_good.py", "rep010_good.py"]
)
def test_every_negative_fixture_is_clean(name):
    assert not lint_fixture(name).violations
