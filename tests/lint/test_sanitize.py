"""Runtime lock-order sanitizer: inversion detection and the env gate."""

import threading

import pytest

from repro.lint.sanitize import (
    LockOrderError,
    SanitizedLock,
    enabled,
    findings,
    make_lock,
    reset,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def _run_in_thread(fn, name):
    err = []

    def wrapped():
        try:
            fn()
        except LockOrderError as exc:
            err.append(exc)

    t = threading.Thread(target=wrapped, name=name)
    t.start()
    t.join()
    return err


class TestInversionDetection:
    def test_abba_inversion_is_caught(self):
        a = SanitizedLock("role-a")
        b = SanitizedLock("role-b")
        # Path 1 establishes a -> b.
        with a:
            with b:
                pass
        assert findings() == ()
        # Path 2 attempts b -> a: the classic ABBA deadlock shape,
        # caught deterministically without any unlucky interleaving.
        with pytest.raises(LockOrderError, match="inversion"):
            with b:
                with a:
                    pass
        assert len(findings()) == 1
        assert "role-a" in findings()[0]
        assert "role-b" in findings()[0]

    def test_inversion_across_threads_names_both_threads(self):
        a = SanitizedLock("role-a")
        b = SanitizedLock("role-b")

        def first():
            with a:
                with b:
                    pass

        def second():
            with b:
                with a:
                    pass

        assert _run_in_thread(first, "orderer") == []
        errors = _run_in_thread(second, "inverter")
        assert len(errors) == 1
        assert "orderer" in str(errors[0])
        assert "inverter" in str(errors[0])

    def test_consistent_ordering_is_clean(self):
        a = SanitizedLock("role-a")
        b = SanitizedLock("role-b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert findings() == ()

    def test_same_role_nesting_is_a_finding(self):
        a = SanitizedLock("shard-state")
        other = SanitizedLock("shard-state")
        with pytest.raises(LockOrderError, match="same-role"):
            with a:
                with other:
                    pass
        assert len(findings()) == 1

    def test_disjoint_holds_do_not_order(self):
        # Sequential (non-nested) use never establishes an edge.
        a = SanitizedLock("role-a")
        b = SanitizedLock("role-b")
        with a:
            pass
        with b:
            pass
        with b:
            with a:
                pass
        assert findings() == ()

    def test_reset_clears_the_order_graph(self):
        a = SanitizedLock("role-a")
        b = SanitizedLock("role-b")
        with a:
            with b:
                pass
        reset()
        with b:
            with a:
                pass
        assert findings() == ()


class TestGate:
    def test_disabled_returns_plain_lock(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not enabled()
        lock = make_lock("anything")
        assert not isinstance(lock, SanitizedLock)
        with lock:
            pass

    def test_enabled_returns_sanitized_lock(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled()
        lock = make_lock("scheduler-state")
        assert isinstance(lock, SanitizedLock)
        assert lock.role == "scheduler-state"
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_other_values_keep_it_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not enabled()


class TestServeStackUnderSanitizer:
    def test_scheduler_lifecycle_is_inversion_free(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        import numpy as np

        from repro.serve.scheduler import BatchScheduler

        class Engine:
            def forward(self, x):
                x = np.atleast_2d(np.asarray(x, dtype=float))
                return x.sum(axis=1, keepdims=True)

        scheduler = BatchScheduler(Engine(), max_batch=4)
        assert isinstance(scheduler._state, SanitizedLock)
        try:
            futures = [
                scheduler.submit(np.full(3, float(i))) for i in range(8)
            ]
            results = [float(f.result(timeout=5.0)[0]) for f in futures]
            assert results == [3.0 * i for i in range(8)]
        finally:
            scheduler.shutdown(timeout=5.0)
        assert findings() == ()
