"""Tests for the current-sensing chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense, repeated_sense_average


class TestCurrentSense:
    def test_ideal_chain_is_identity(self):
        sense = CurrentSense()
        x = np.array([1e-4, 2e-4])
        assert np.array_equal(sense.sense(x), x)

    def test_adc_quantises(self):
        adc = ADC(4, 1e-3)
        sense = CurrentSense(adc=adc)
        out = sense.sense(np.array([3.3e-4]))
        assert float(out[0]) % adc.lsb == pytest.approx(0.0, abs=1e-18)

    def test_noise_added(self, rng):
        sense = CurrentSense(noise_std=1e-5, rng=rng)
        x = np.full(5000, 1e-4)
        out = sense.sense(x)
        assert np.std(out - x) == pytest.approx(1e-5, rel=0.1)

    def test_negative_noise_std_rejected(self):
        with pytest.raises(ValueError, match="noise_std"):
            CurrentSense(noise_std=-1.0)

    def test_resolution_property(self):
        assert CurrentSense().resolution == 0.0
        adc = ADC(4, 1.6)
        assert CurrentSense(adc=adc).resolution == pytest.approx(0.1)


class TestRepeatedSense:
    def test_averaging_suppresses_noise(self, rng):
        sense = CurrentSense(noise_std=1e-5, rng=rng)
        x = np.full(2000, 1e-4)
        avg = repeated_sense_average(sense, x, repeats=16)
        assert np.std(avg - x) < 0.5e-5

    def test_single_repeat_matches_sense_statistics(self, rng):
        sense = CurrentSense(rng=rng)
        x = np.array([1.0, 2.0])
        assert np.array_equal(repeated_sense_average(sense, x, 1), x)

    def test_zero_repeats_rejected(self, rng):
        sense = CurrentSense(rng=rng)
        with pytest.raises(ValueError, match="repeats"):
            repeated_sense_average(sense, np.ones(3), 0)

    def test_averaging_cannot_beat_quantisation_without_dither(self):
        adc = ADC(3, 1.0)
        sense = CurrentSense(adc=adc)  # no noise: no dither
        x = np.full(10, 0.3)
        avg = repeated_sense_average(sense, x, repeats=32)
        # Deterministic quantisation: averaging repeats changes nothing.
        assert np.allclose(avg, adc.quantize(x))
