"""Tests for the ADC quantiser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adc import ADC


class TestConstruction:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError, match="bits"):
            ADC(0, 1.0)

    def test_rejects_nonpositive_full_scale(self):
        with pytest.raises(ValueError, match="full_scale"):
            ADC(6, 0.0)

    def test_levels_and_lsb(self):
        adc = ADC(4, 1.6)
        assert adc.levels == 16
        assert adc.lsb == pytest.approx(0.1)

    def test_bipolar_lsb_spans_both_signs(self):
        adc = ADC(4, 0.8, bipolar=True)
        assert adc.lsb == pytest.approx(0.1)

    def test_repr(self):
        assert "bits=6" in repr(ADC(6, 1.0))


class TestQuantize:
    def test_quantization_error_bounded(self):
        adc = ADC(6, 1.0)
        x = np.linspace(0, 1, 517)
        q = adc.quantize(x)
        # Half an LSB everywhere except the top code, which sits one
        # LSB below full scale.
        assert np.max(np.abs(q - x)) <= adc.lsb + 1e-12
        interior = x < 1.0 - adc.lsb
        assert np.max(np.abs(q[interior] - x[interior])) <= adc.lsb / 2 + 1e-12

    @given(
        bits=st.integers(min_value=2, max_value=12),
        value=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_within_half_lsb_in_range(self, bits, value):
        adc = ADC(bits, 1.0)
        q = float(adc.quantize(value))
        # The top code sits one LSB below full scale.
        assert abs(q - value) <= adc.lsb + 1e-12

    def test_clipping_above_full_scale(self):
        adc = ADC(4, 1.0)
        assert float(adc.quantize(5.0)) <= 1.0

    def test_unipolar_clips_negative_to_zero(self):
        adc = ADC(4, 1.0)
        assert float(adc.quantize(-3.0)) == 0.0

    def test_bipolar_preserves_sign(self):
        adc = ADC(6, 1.0, bipolar=True)
        assert float(adc.quantize(-0.5)) == pytest.approx(-0.5, abs=adc.lsb)
        assert float(adc.quantize(0.5)) == pytest.approx(0.5, abs=adc.lsb)

    def test_quantize_idempotent(self):
        adc = ADC(5, 2.0)
        x = np.random.default_rng(0).uniform(0, 2, 100)
        q1 = adc.quantize(x)
        assert np.array_equal(adc.quantize(q1), q1)

    def test_monotone(self):
        adc = ADC(4, 1.0)
        x = np.linspace(-0.5, 1.5, 301)
        q = adc.quantize(x)
        assert np.all(np.diff(q) >= 0)

    def test_more_bits_reduce_error(self):
        x = np.random.default_rng(1).uniform(0, 1, 1000)
        errors = [
            np.mean(np.abs(ADC(b, 1.0).quantize(x) - x)) for b in (4, 6, 8)
        ]
        assert errors[0] > errors[1] > errors[2]


class TestCodes:
    def test_codes_are_integers_in_range(self):
        adc = ADC(3, 1.0)
        codes = adc.codes(np.linspace(-1, 2, 50))
        assert codes.dtype.kind == "i"
        assert codes.min() >= 0 and codes.max() <= 7

    def test_zero_maps_to_code_zero_unipolar(self):
        adc = ADC(6, 1.0)
        assert int(adc.codes(0.0)) == 0
