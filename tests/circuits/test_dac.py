"""Tests for the input driver (DAC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.dac import InputDriver


class TestConstruction:
    def test_rejects_nonpositive_v_read(self):
        with pytest.raises(ValueError, match="v_read"):
            InputDriver(v_read=0.0)

    def test_rejects_single_level(self):
        with pytest.raises(ValueError, match="levels"):
            InputDriver(levels=1)

    def test_repr_mentions_mode(self):
        assert "analog" in repr(InputDriver())
        assert "levels=4" in repr(InputDriver(levels=4))


class TestDrive:
    def test_scales_by_v_read(self):
        drv = InputDriver(v_read=2.0)
        out = drv.drive(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 1.0, 2.0])

    def test_clips_out_of_range(self):
        drv = InputDriver()
        out = drv.drive(np.array([-0.5, 1.5]))
        assert np.allclose(out, [0.0, 1.0])

    def test_signed_mode_accepts_negative(self):
        drv = InputDriver(signed=True)
        out = drv.drive(np.array([-1.0, 0.0, 1.0]))
        assert np.allclose(out, [-1.0, 0.0, 1.0])

    def test_quantised_levels(self):
        drv = InputDriver(levels=3)
        out = drv.drive(np.array([0.0, 0.26, 0.5, 0.74, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 0.5, 0.5, 1.0])

    def test_analog_mode_is_continuous(self):
        drv = InputDriver()
        x = np.linspace(0, 1, 17)
        assert np.allclose(drv.drive(x), x)

    def test_batch_shape_preserved(self):
        drv = InputDriver(levels=16)
        x = np.random.default_rng(0).random((5, 9))
        assert drv.drive(x).shape == (5, 9)
