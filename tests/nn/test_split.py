"""Tests for the stratified train/validation split."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.split import stratified_split


class TestStratifiedSplit:
    def test_disjoint_and_exhaustive(self, rng):
        labels = np.repeat(np.arange(5), 20)
        split = stratified_split(labels, 0.2, rng)
        combined = np.sort(
            np.concatenate([split.train_idx, split.val_idx])
        )
        assert np.array_equal(combined, np.arange(100))

    def test_per_class_fraction(self, rng):
        labels = np.repeat(np.arange(4), 50)
        split = stratified_split(labels, 0.25, rng)
        for cls in range(4):
            n_val = np.sum(labels[split.val_idx] == cls)
            assert n_val == pytest.approx(12.5, abs=1.5)

    def test_every_class_in_validation(self, rng):
        labels = np.repeat(np.arange(10), 6)
        split = stratified_split(labels, 0.1, rng)
        assert set(labels[split.val_idx]) == set(range(10))

    def test_singleton_class_stays_in_training(self, rng):
        labels = np.array([0, 0, 0, 0, 1])
        split = stratified_split(labels, 0.2, rng)
        assert 4 in split.train_idx

    def test_apply(self, rng):
        labels = np.repeat(np.arange(3), 10)
        x = np.arange(30, dtype=float)[:, None]
        split = stratified_split(labels, 0.2, rng)
        x_tr, y_tr, x_val, y_val = split.apply(x, labels)
        assert x_tr.shape[0] == y_tr.size
        assert x_val.shape[0] == y_val.size
        assert x_tr.shape[0] + x_val.shape[0] == 30

    def test_bad_fraction_rejected(self, rng):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError, match="val_fraction"):
            stratified_split(labels, 0.0, rng)
        with pytest.raises(ValueError, match="val_fraction"):
            stratified_split(labels, 1.0, rng)

    def test_empty_labels_rejected(self, rng):
        with pytest.raises(ValueError, match="non-empty"):
            stratified_split(np.array([]), 0.2, rng)

    @given(
        counts=st.lists(
            st.integers(min_value=2, max_value=30), min_size=2, max_size=6
        ),
        frac=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_partition(self, counts, frac):
        rng = np.random.default_rng(0)
        labels = np.concatenate(
            [np.full(c, i) for i, c in enumerate(counts)]
        )
        split = stratified_split(labels, frac, rng)
        assert len(set(split.train_idx) & set(split.val_idx)) == 0
        assert split.train_idx.size + split.val_idx.size == labels.size
