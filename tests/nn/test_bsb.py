"""Tests for the BSB associative-recall substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.bsb import (
    BSBConfig,
    bsb_recall,
    bsb_recall_batch,
    noisy_probe,
    recall_success_rate,
    train_bsb_weights,
)
from repro.runtime.executor import parallel_map


def _rate_for_seed(seed: int) -> float:
    """Pure per-seed success rate (picklable for parallel_map)."""
    rng = np.random.default_rng(seed)
    protos = np.sign(rng.standard_normal((4, 64)))
    protos[protos == 0] = 1.0
    w = train_bsb_weights(protos)
    return recall_success_rate(
        protos, 0.2, np.random.default_rng(seed + 1), weights=w,
        probes_per_prototype=4,
    )


@pytest.fixture
def prototypes(rng):
    """Four well-separated bipolar patterns of dimension 64."""
    protos = np.sign(rng.standard_normal((4, 64)))
    protos[protos == 0] = 1.0
    return protos


class TestTraining:
    def test_prototypes_become_near_eigenvectors(self, prototypes):
        w = train_bsb_weights(prototypes)
        for p in prototypes:
            assert np.allclose(w @ p, p, atol=0.05)

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError, match="bipolar"):
            train_bsb_weights(np.array([[0.5, -1.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="k, n"):
            train_bsb_weights(np.ones(4))


class TestRecall:
    def test_prototype_is_fixed_point(self, prototypes):
        w = train_bsb_weights(prototypes)
        result = bsb_recall(prototypes[0], weights=w)
        assert result.converged
        assert np.array_equal(np.sign(result.state), prototypes[0])

    def test_noisy_probe_recalls(self, prototypes, rng):
        w = train_bsb_weights(prototypes)
        probe = noisy_probe(prototypes[1], 0.1, rng)
        result = bsb_recall(probe, weights=w)
        assert result.converged
        assert np.mean(
            np.sign(result.state) == prototypes[1]
        ) > 0.95

    def test_requires_exactly_one_operator(self, prototypes):
        w = train_bsb_weights(prototypes)
        with pytest.raises(ValueError, match="exactly one"):
            bsb_recall(prototypes[0])
        with pytest.raises(ValueError, match="exactly one"):
            bsb_recall(prototypes[0], weights=w, matvec=lambda v: v)

    def test_matvec_callable_path(self, prototypes):
        w = train_bsb_weights(prototypes)
        result = bsb_recall(prototypes[0], matvec=lambda v: w @ v)
        assert result.converged

    def test_iteration_budget_respected(self, prototypes):
        w = train_bsb_weights(prototypes)
        cfg = BSBConfig(max_iterations=1, alpha=0.01, lam=0.9)
        result = bsb_recall(
            0.1 * prototypes[0], config=cfg, weights=w
        )
        assert not result.converged
        assert result.iterations == 1


class TestBatchedRecall:
    def test_batch_matches_looped_recall_bit_for_bit(
        self, prototypes, rng
    ):
        # Light and heavy noise together: rows that converge at
        # different iterations (and some not at all) must each freeze
        # exactly where the one-probe loop would have stopped them.
        w = train_bsb_weights(prototypes)
        probes = np.stack([
            noisy_probe(p, flip, rng)
            for p in prototypes
            for flip in (0.05, 0.2, 0.45)
        ])
        batched = bsb_recall_batch(probes, weights=w)
        for probe, got in zip(probes, batched):
            expected = bsb_recall(probe, weights=w)
            assert np.array_equal(got.state, expected.state)
            assert got.iterations == expected.iterations
            assert got.converged == expected.converged

    def test_requires_exactly_one_operator(self, prototypes):
        with pytest.raises(ValueError, match="exactly one"):
            bsb_recall_batch(prototypes)

    def test_success_rate_deterministic_for_fixed_seed(
        self, prototypes
    ):
        w = train_bsb_weights(prototypes)
        runs = [
            recall_success_rate(
                prototypes, 0.2, np.random.default_rng(42),
                weights=w, probes_per_prototype=6,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_success_rate_independent_of_jobs(self):
        seeds = [3, 4, 5]
        serial = parallel_map(_rate_for_seed, seeds, jobs=1)
        parallel = parallel_map(_rate_for_seed, seeds, jobs=2)
        assert serial == parallel


class TestNoisyProbe:
    def test_flip_count(self, rng):
        p = np.ones(100)
        flipped = noisy_probe(p, 0.25, rng)
        assert np.sum(flipped == -1) == 25

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError, match="flip_fraction"):
            noisy_probe(np.ones(4), 1.5, rng)


class TestSuccessRate:
    def test_clean_weights_recall_reliably(self, prototypes, rng):
        w = train_bsb_weights(prototypes)
        rate = recall_success_rate(
            prototypes, 0.1, rng, weights=w, probes_per_prototype=5
        )
        assert rate > 0.9

    def test_heavy_noise_degrades(self, prototypes, rng):
        w = train_bsb_weights(prototypes)
        light = recall_success_rate(
            prototypes, 0.05, rng, weights=w, probes_per_prototype=5
        )
        heavy = recall_success_rate(
            prototypes, 0.45, rng, weights=w, probes_per_prototype=5
        )
        assert heavy <= light

    def test_hardware_matvec_integration(self, prototypes, rng):
        # Recall through a differential crossbar read path.
        from repro.config import CrossbarConfig, VariationConfig
        from repro.core.base import HardwareSpec, build_pair
        from repro.core.old import program_pair_open_loop
        from repro.xbar.mapping import WeightScaler

        w = train_bsb_weights(prototypes)
        n = w.shape[0]
        spec = HardwareSpec(
            variation=VariationConfig(sigma=0.2, sigma_cycle=0.0),
            crossbar=CrossbarConfig(rows=n, cols=n, r_wire=0.0),
            quantize_read=False,
        )
        pair = build_pair(spec, WeightScaler(1.0), rng)
        program_pair_open_loop(pair, w)
        scale = np.abs(w).max()  # normalisation gain of programming

        def hardware_matvec(x):
            # BSB states are bipolar; drive the two phases separately
            # (positive and negative half-vectors) since word lines
            # accept [0, 1] inputs.
            pos = np.clip(x, 0.0, 1.0)
            neg = np.clip(-x, 0.0, 1.0)
            return (pair.matvec(pos) - pair.matvec(neg)) * scale

        rate = recall_success_rate(
            prototypes, 0.1, rng, matvec=hardware_matvec,
            probes_per_prototype=3,
        )
        assert rate > 0.7
