"""Tests for the software subgradient trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gdt import GDTConfig, train_gdt
from repro.nn.linear import one_vs_all_targets


def separable_problem(rng, n=60, d=6):
    """Linearly separable 3-class toy problem."""
    centers = np.array(
        [[2.0, 0, 0, 0, 0, 0], [0, 2.0, 0, 0, 0, 0], [0, 0, 2.0, 0, 0, 0]]
    )
    labels = rng.integers(0, 3, n)
    x = centers[labels] + 0.15 * rng.standard_normal((n, d))
    return np.clip(x, 0, None), labels


class TestTraining:
    def test_separable_problem_fits(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        result = train_gdt(x, y, config=GDTConfig(epochs=200))
        preds = np.argmax(x @ result.weights, axis=1)
        assert np.mean(preds == labels) > 0.95

    def test_loss_decreases_overall(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        result = train_gdt(x, y, config=GDTConfig(epochs=100))
        assert result.loss_history[-1] < result.loss_history[0]

    def test_deterministic(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        r1 = train_gdt(x, y, config=GDTConfig(epochs=50))
        r2 = train_gdt(x, y, config=GDTConfig(epochs=50))
        assert np.array_equal(r1.weights, r2.weights)

    def test_warm_start_respected(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        w0 = np.full((6, 3), 0.1)
        result = train_gdt(
            x, y, config=GDTConfig(epochs=1, learning_rate=0.0,
                                   momentum=0.0, l2=0.0),
            w_init=w0,
        )
        assert np.allclose(result.weights, w0)

    def test_penalty_scale_changes_solution(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        plain = train_gdt(x, y, penalty_scale=0.0,
                          config=GDTConfig(epochs=100))
        robust = train_gdt(x, y, penalty_scale=1.0,
                           config=GDTConfig(epochs=100))
        assert not np.allclose(plain.weights, robust.weights)

    def test_l2_shrinks_weights(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        light = train_gdt(x, y, config=GDTConfig(epochs=100, l2=1e-5))
        heavy = train_gdt(x, y, config=GDTConfig(epochs=100, l2=1e-1))
        assert np.linalg.norm(heavy.weights) < np.linalg.norm(light.weights)

    def test_tolerance_early_stop(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        result = train_gdt(
            x, y, config=GDTConfig(epochs=5000, tolerance=1e-3)
        )
        assert result.converged
        assert len(result.loss_history) < 5000


class TestValidation:
    def test_mismatched_samples_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            train_gdt(np.ones((4, 2)), np.ones((5, 1)))

    def test_bad_w_init_shape_rejected(self, rng):
        x, labels = separable_problem(rng)
        y = one_vs_all_targets(labels, 3)
        with pytest.raises(ValueError, match="w_init"):
            train_gdt(x, y, w_init=np.zeros((2, 2)))
