"""Tests for the two-crossbar MLP deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarConfig, VariationConfig
from repro.nn.mlp import MLPConfig, MLPOnCrossbars, train_mlp
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar


def make_pair(rows, cols, sigma=0.0, seed=0):
    return DifferentialCrossbar(
        WeightScaler(1.0),
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=0.0),
        variation=VariationConfig(sigma=sigma, sigma_cycle=0.0),
        rng=np.random.default_rng(seed),
    )


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    ds = tiny_dataset
    mlp = train_mlp(
        ds.x_train, ds.y_train, 10,
        MLPConfig(hidden=32, epochs=200, seed=3),
    )
    return ds, mlp


class TestTrainMLP:
    def test_beats_chance_clearly(self, trained):
        ds, mlp = trained
        assert mlp.accuracy(ds.x_test, ds.y_test) > 0.6

    def test_hidden_layer_helps_on_training_set(self, trained):
        ds, mlp = trained
        assert mlp.accuracy(ds.x_train, ds.y_train) > 0.8

    def test_weights_finite(self, trained):
        _, mlp = trained
        assert np.all(np.isfinite(mlp.w1))
        assert np.all(np.isfinite(mlp.w2))

    def test_deterministic_given_seed(self, tiny_dataset):
        ds = tiny_dataset
        cfg = MLPConfig(hidden=16, epochs=20, seed=5)
        a = train_mlp(ds.x_train, ds.y_train, 10, cfg)
        b = train_mlp(ds.x_train, ds.y_train, 10, cfg)
        assert np.array_equal(a.w1, b.w1)


class TestMLPOnCrossbars:
    def test_ideal_hardware_matches_software(self, trained):
        ds, mlp = trained
        n, h = mlp.w1.shape
        deploy = MLPOnCrossbars(
            mlp,
            make_pair(n, h),
            make_pair(h, 10, seed=1),
        )
        deploy.program(ds.x_train[:200])
        hw = deploy.accuracy(ds.x_test, ds.y_test)
        sw = mlp.accuracy(ds.x_test, ds.y_test)
        assert hw == pytest.approx(sw, abs=0.05)

    def test_variation_degrades_both_layers(self, trained):
        ds, mlp = trained
        n, h = mlp.w1.shape
        rates = {}
        for sigma in (0.0, 1.0):
            trial = []
            for seed in range(3):
                deploy = MLPOnCrossbars(
                    mlp,
                    make_pair(n, h, sigma=sigma, seed=seed),
                    make_pair(h, 10, sigma=sigma, seed=100 + seed),
                )
                deploy.program(ds.x_train[:200])
                trial.append(deploy.accuracy(ds.x_test, ds.y_test))
            rates[sigma] = float(np.mean(trial))
        assert rates[1.0] < rates[0.0] - 0.05

    def test_shape_validation(self, trained):
        _, mlp = trained
        n, h = mlp.w1.shape
        with pytest.raises(ValueError, match="layer1"):
            MLPOnCrossbars(mlp, make_pair(n + 1, h), make_pair(h, 10))
        with pytest.raises(ValueError, match="layer2"):
            MLPOnCrossbars(mlp, make_pair(n, h), make_pair(h + 1, 10))

    def test_scores_shape(self, trained):
        ds, mlp = trained
        n, h = mlp.w1.shape
        deploy = MLPOnCrossbars(
            mlp, make_pair(n, h), make_pair(h, 10, seed=2)
        )
        deploy.program(ds.x_train[:100])
        assert deploy.scores(ds.x_test[:7]).shape == (7, 10)

    def test_batched_scores_match_per_sample_reads(self, trained):
        # Both layer reads are batch-invariant, so scoring a batch in
        # one pass equals scoring each sample alone, bit for bit.
        ds, mlp = trained
        n, h = mlp.w1.shape
        deploy = MLPOnCrossbars(
            mlp,
            make_pair(n, h, sigma=0.2, seed=7),
            make_pair(h, 10, sigma=0.2, seed=8),
        )
        deploy.program(ds.x_train[:100])
        x = ds.x_test[:9]
        batch = deploy.scores(x)
        for i, row in enumerate(x):
            assert np.array_equal(deploy.scores(row)[0], batch[i])

    def test_restored_snapshot_gain_is_honoured(self, trained):
        ds, mlp = trained
        n, h = mlp.w1.shape
        deploy = MLPOnCrossbars(
            mlp, make_pair(n, h), make_pair(h, 10, seed=1),
            hidden_gain=0.25,
        )
        assert deploy.hidden_gain == 0.25
        assert deploy.scale1 == float(np.max(np.abs(mlp.w1)))
        assert deploy.scale2 == float(np.max(np.abs(mlp.w2)))
