"""Tests for the hinge and robust-hinge objectives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.objectives import (
    hinge_gradient,
    hinge_loss,
    robust_hinge_gradient,
    robust_hinge_loss,
    variation_penalty,
)


def toy_problem():
    x = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    w = np.array([[2.0], [-1.0]])
    y = np.array([[1.0], [-1.0], [1.0]])
    return x, w, y


class TestHinge:
    def test_values_on_crafted_case(self):
        x, w, y = toy_problem()
        # margins: 2, 1, 1 -> losses 0, 0, 0
        assert hinge_loss(x, w, y) == 0.0

    def test_violating_sample_contributes(self):
        x = np.array([[1.0]])
        w = np.array([[0.5]])
        y = np.array([[1.0]])
        assert hinge_loss(x, w, y) == pytest.approx(0.5)

    def test_gradient_zero_when_all_margins_met(self):
        x, w, y = toy_problem()
        assert np.allclose(hinge_gradient(x, w, y), 0.0)

    def test_gradient_matches_finite_differences(self, rng):
        x = rng.random((20, 5))
        w = rng.uniform(-1, 1, (5, 3))
        y = np.sign(rng.uniform(-1, 1, (20, 3)))
        grad = hinge_gradient(x, w, y)
        eps = 1e-6
        for idx in [(0, 0), (2, 1), (4, 2)]:
            w_plus = w.copy()
            w_plus[idx] += eps
            w_minus = w.copy()
            w_minus[idx] -= eps
            numeric = (hinge_loss(x, w_plus, y)
                       - hinge_loss(x, w_minus, y)) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, abs=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            hinge_loss(np.ones(3), np.ones((3, 1)), np.ones((3, 1)))
        with pytest.raises(ValueError, match="width"):
            hinge_loss(np.ones((2, 3)), np.ones((4, 1)), np.ones((2, 1)))
        with pytest.raises(ValueError, match="Y shape"):
            hinge_loss(np.ones((2, 3)), np.ones((3, 1)), np.ones((3, 1)))


class TestVariationPenalty:
    def test_formula(self):
        x = np.array([[1.0, 2.0]])
        w = np.array([[3.0], [4.0]])
        # ||x (.) w||_2 = sqrt(9 + 64)
        assert variation_penalty(x, w)[0, 0] == pytest.approx(
            np.sqrt(73.0), rel=1e-6
        )

    @given(
        arrays(float, (4, 3), elements=st.floats(0, 1)),
        arrays(float, (3, 2), elements=st.floats(-1, 1)),
    )
    @settings(max_examples=30, deadline=None)
    def test_nonnegative_and_scales_linearly(self, x, w):
        p1 = variation_penalty(x, w)
        assert np.all(p1 >= 0)
        p2 = variation_penalty(x, 2 * w)
        assert np.allclose(p2, 2 * p1, rtol=1e-6, atol=1e-5)


class TestRobustHinge:
    def test_zero_scale_reduces_to_hinge(self, rng):
        x = rng.random((10, 4))
        w = rng.uniform(-1, 1, (4, 2))
        y = np.sign(rng.uniform(-1, 1, (10, 2)))
        assert robust_hinge_loss(x, w, y, 0.0) == pytest.approx(
            hinge_loss(x, w, y)
        )
        assert np.allclose(
            robust_hinge_gradient(x, w, y, 0.0), hinge_gradient(x, w, y)
        )

    def test_penalty_increases_loss(self, rng):
        x = rng.random((10, 4))
        w = rng.uniform(-1, 1, (4, 2))
        y = np.sign(rng.uniform(-1, 1, (10, 2)))
        assert robust_hinge_loss(x, w, y, 1.0) >= hinge_loss(x, w, y)

    def test_loss_monotone_in_scale(self, rng):
        x = rng.random((10, 4))
        w = rng.uniform(-1, 1, (4, 2))
        y = np.sign(rng.uniform(-1, 1, (10, 2)))
        losses = [robust_hinge_loss(x, w, y, s) for s in (0.0, 0.5, 1.0)]
        assert losses[0] <= losses[1] <= losses[2]

    def test_negative_scale_rejected(self, rng):
        x = rng.random((2, 2))
        w = np.ones((2, 1))
        y = np.ones((2, 1))
        with pytest.raises(ValueError, match="penalty_scale"):
            robust_hinge_loss(x, w, y, -0.1)
        with pytest.raises(ValueError, match="penalty_scale"):
            robust_hinge_gradient(x, w, y, -0.1)

    def test_gradient_matches_finite_differences(self, rng):
        x = rng.random((15, 4))
        w = rng.uniform(-1, 1, (4, 2))
        y = np.sign(rng.uniform(-1, 1, (15, 2)))
        scale = 0.7
        grad = robust_hinge_gradient(x, w, y, scale)
        eps = 1e-6
        for idx in [(0, 0), (1, 1), (3, 0)]:
            w_plus = w.copy()
            w_plus[idx] += eps
            w_minus = w.copy()
            w_minus[idx] -= eps
            numeric = (
                robust_hinge_loss(x, w_plus, y, scale)
                - robust_hinge_loss(x, w_minus, y, scale)
            ) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, abs=1e-4)
