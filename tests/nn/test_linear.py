"""Tests for the linear one-vs-all classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.linear import (
    LinearClassifier,
    add_bias_feature,
    one_vs_all_targets,
)


class TestOneVsAll:
    def test_encoding(self):
        y = one_vs_all_targets(np.array([0, 2, 1]), 3)
        expected = np.array(
            [[1, -1, -1], [-1, -1, 1], [-1, 1, -1]], dtype=float
        )
        assert np.array_equal(y, expected)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError, match="labels"):
            one_vs_all_targets(np.array([0, 3]), 3)
        with pytest.raises(ValueError, match="labels"):
            one_vs_all_targets(np.array([-1]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError, match="1-D"):
            one_vs_all_targets(np.zeros((2, 2), dtype=int), 3)


class TestBiasFeature:
    def test_vector(self):
        out = add_bias_feature(np.array([1.0, 2.0]))
        assert np.array_equal(out, [1.0, 2.0, 1.0])

    def test_batch(self):
        out = add_bias_feature(np.zeros((3, 2)), value=0.5)
        assert out.shape == (3, 3)
        assert np.all(out[:, -1] == 0.5)


class TestLinearClassifier:
    def test_predict_argmax(self):
        clf = LinearClassifier(np.array([[1.0, 0.0], [0.0, 1.0]]))
        x = np.array([[2.0, 1.0], [0.5, 3.0]])
        assert np.array_equal(clf.predict(x), [0, 1])

    def test_accuracy(self):
        clf = LinearClassifier(np.eye(2))
        x = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert clf.accuracy(x, labels) == pytest.approx(2 / 3)

    def test_weights_copied(self):
        w = np.eye(2)
        clf = LinearClassifier(w)
        w[0, 0] = 99.0
        assert clf.weights[0, 0] == 1.0

    def test_width_validated(self):
        clf = LinearClassifier(np.eye(2))
        with pytest.raises(ValueError, match="width"):
            clf.scores(np.ones(3))

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearClassifier(np.ones(4))

    def test_properties(self):
        clf = LinearClassifier(np.zeros((5, 3)))
        assert clf.n_features == 5
        assert clf.n_classes == 3
