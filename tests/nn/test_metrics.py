"""Tests for training/test-rate metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.metrics import (
    classification_rate,
    confusion_matrix,
    per_class_rates,
    rate_from_scores,
)


class TestRateFromScores:
    def test_perfect(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert rate_from_scores(scores, np.array([0, 1])) == 1.0

    def test_partial(self):
        scores = np.array([[0.9, 0.1], [0.9, 0.1]])
        assert rate_from_scores(scores, np.array([0, 1])) == 0.5

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="one row"):
            rate_from_scores(np.ones((3, 2)), np.array([0, 1]))


class TestClassificationRate:
    def test_with_callable(self):
        w = np.eye(2)
        rate = classification_rate(
            lambda x: x @ w,
            np.array([[1.0, 0.0], [0.0, 1.0]]),
            np.array([0, 1]),
        )
        assert rate == 1.0


class TestConfusion:
    def test_counts(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        c = confusion_matrix(preds, labels, 3)
        assert c[0, 0] == 1
        assert c[1, 1] == 1
        assert c[2, 1] == 1
        assert c[2, 2] == 1
        assert c.sum() == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestPerClass:
    def test_rates(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        rates = per_class_rates(preds, labels, 3)
        assert rates[0] == 1.0
        assert rates[1] == pytest.approx(2 / 3)
        assert np.isnan(rates[2])
