"""Associative recall (BSB) on a variation-bearing crossbar.

The workload behind the paper's close-loop baseline (refs. [6] and
[9]): a Brain-State-in-a-Box network stores digit prototypes as
attractors and recalls them from corrupted probes.  The recall loop's
matrix-vector product runs through a differential memristor crossbar,
so device variation directly perturbs the attractor basins; AMP's
measured-variation mapping recovers part of the loss.

Run:  python examples/bsb_recall.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    HardwareSpec,
    RowMapping,
    SensingConfig,
    VariationConfig,
    WeightScaler,
    build_pair,
    program_pair_open_loop,
    run_amp,
)
from repro.data.glyphs import glyph_bitmaps
from repro.data.sampling import undersample
from repro.nn.bsb import recall_success_rate, train_bsb_weights

SIGMAS = (0.0, 0.4, 0.8)
FLIP_FRACTION = 0.25


def digit_prototypes(size: int = 8) -> np.ndarray:
    """Bipolar digit patterns from the glyph prototypes."""
    bitmaps = glyph_bitmaps()
    protos = []
    for digit in range(10):  # all ten digits: correlated pairs
        # (3/8, 1/7...) make the recall genuinely contested
        img = bitmaps[digit][0]
        padded = np.zeros((16, 16))
        padded[:, 2:14] = img
        coarse = undersample(padded, size)
        protos.append(np.where(coarse > 0.25, 1.0, -1.0).ravel())
    return np.stack(protos)


def hardware_matvec(pair, scale):
    """Bipolar matvec through the crossbar (two-phase drive)."""

    def matvec(x):
        pos = np.clip(x, 0.0, 1.0)
        neg = np.clip(-x, 0.0, 1.0)
        return (pair.matvec(pos) - pair.matvec(neg)) * scale

    return matvec


def main() -> None:
    prototypes = digit_prototypes()
    k, n = prototypes.shape
    weights = train_bsb_weights(prototypes)
    scale = float(np.abs(weights).max())
    rng = np.random.default_rng(11)

    software = recall_success_rate(
        prototypes, FLIP_FRACTION, rng, weights=weights
    )
    print(f"stored {k} digit prototypes in a {n}x{n} BSB network")
    print(f"software recall rate ({FLIP_FRACTION:.0%} bit flips): "
          f"{software:.3f}\n")
    print(f"{'sigma':>6s} {'identity map':>13s} {'AMP map':>9s}")

    for sigma in SIGMAS:
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(rows=n, cols=n, r_wire=0.0),
            quantize_read=False,
        )
        rates = {"identity": [], "amp": []}
        for seed in range(3):
            trial_rng = np.random.default_rng(100 * seed + 7)
            pair = build_pair(spec, WeightScaler(1.0), trial_rng,
                              rows=n + 8)
            identity = RowMapping(
                assignment=np.arange(n), n_physical=n + 8
            )
            program_pair_open_loop(
                pair, identity.weights_to_physical(weights)
            )
            mv = hardware_matvec_mapped(pair, scale, identity)
            rates["identity"].append(recall_success_rate(
                prototypes, FLIP_FRACTION, trial_rng, matvec=mv,
                probes_per_prototype=4,
            ))
            amp = run_amp(
                pair, weights, np.full(n, 0.5),
                SensingConfig(adc_bits=8), rng=trial_rng,
            )
            program_pair_open_loop(
                pair, amp.mapping.weights_to_physical(weights)
            )
            mv = hardware_matvec_mapped(pair, scale, amp.mapping)
            rates["amp"].append(recall_success_rate(
                prototypes, FLIP_FRACTION, trial_rng, matvec=mv,
                probes_per_prototype=4,
            ))
        print(f"{sigma:6.1f} {np.mean(rates['identity']):13.3f} "
              f"{np.mean(rates['amp']):9.3f}")


def hardware_matvec_mapped(pair, scale, mapping):
    """Bipolar matvec with row routing through a mapping."""

    def matvec(x):
        pos = mapping.inputs_to_physical(np.clip(x, 0.0, 1.0))
        neg = mapping.inputs_to_physical(np.clip(-x, 0.0, 1.0))
        return (pair.matvec(pos) - pair.matvec(neg)) * scale

    return matvec


if __name__ == "__main__":
    main()
