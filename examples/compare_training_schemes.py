"""Compare OLD, CLD and Vortex across device-variation levels.

The paper's headline scenario (Section 5.3): on identical fabricated
crossbars -- device variation, 6-bit sensing, and the paper's
programming-path IR-drop (the Eq. 2 update skew that CLD cannot
pre-compensate) -- the open-loop baseline degrades with variation, the
close-loop baseline pays for its hardware limits, and Vortex tracks
the software ceiling by budgeting for the variation it measured.

The wire resistance is scaled 4x (10 Ohm) so the 196-row demo crossbar
operates in the same IR regime as the paper's 784-row setup at 2.5 Ohm
(severity ~ r_wire * rows * mean conductance).

Run:  python examples/compare_training_schemes.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CLDConfig,
    CrossbarConfig,
    HardwareSpec,
    OLDConfig,
    SelfTuningConfig,
    VariationConfig,
    VortexConfig,
    WeightScaler,
    build_pair,
    hardware_test_rate,
    make_dataset,
    program_pair_open_loop,
    run_vortex,
    train_cld,
    train_old,
)
from repro.nn.gdt import GDTConfig
from repro.nn.metrics import rate_from_scores

SIGMAS = (0.2, 0.4, 0.6, 0.8)
TRIALS = 3
R_WIRE = 10.0  # 4x the paper's 2.5 Ohm: same IR regime at 1/4 the rows


def main() -> None:
    dataset = make_dataset(n_train=1200, n_test=600, seed=7)
    dataset = dataset.undersampled(14)
    n = dataset.n_features
    scaler = WeightScaler(1.0)
    gdt = GDTConfig(epochs=120)

    # OLD's software stage is variation-blind: train once.
    old = train_old(dataset.x_train, dataset.y_train, 10,
                    OLDConfig(gdt=gdt))
    software_ceiling = rate_from_scores(
        dataset.x_test @ old.weights, dataset.y_test
    )
    print(f"software test-rate ceiling (no hardware): "
          f"{software_ceiling:.3f}\n")
    print(f"{'sigma':>6s} {'OLD':>8s} {'CLD':>8s} {'Vortex':>8s}")

    # Programming-time IR-drop is deterministic for the open-loop
    # schemes (pulse pre-calculation compensates it); reads follow the
    # paper's convention (not IR-modelled).
    paper_programming = OLDConfig(
        compensate_ir_drop=False, digital_calibration=False
    )
    vortex_cfg = VortexConfig(
        self_tuning=SelfTuningConfig(
            gammas=(0.0, 0.2, 0.4, 0.6, 0.8), gdt=gdt
        ),
        programming=paper_programming,
        integrate=False,
    )
    for sigma in SIGMAS:
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(rows=n, cols=10, r_wire=R_WIRE),
        )
        rates = {"old": [], "cld": [], "vortex": []}
        for trial in range(TRIALS):
            rng = np.random.default_rng(1000 * trial + int(10 * sigma))
            pair = build_pair(spec, scaler, rng)
            program_pair_open_loop(pair, old.weights, paper_programming)
            rates["old"].append(
                hardware_test_rate(pair, dataset.x_test, dataset.y_test,
                                   "ideal")
            )
            pair = build_pair(spec, scaler, rng)
            train_cld(pair, dataset.x_train, dataset.y_train, 10,
                      CLDConfig(epochs=40, ir_mode_read="ideal"), rng)
            rates["cld"].append(
                hardware_test_rate(pair, dataset.x_test, dataset.y_test,
                                   "ideal")
            )
            pair = build_pair(spec, scaler, rng, rows=n + 16)
            result = run_vortex(pair, dataset.x_train, dataset.y_train,
                                10, vortex_cfg, rng)
            rates["vortex"].append(
                result.test_rate(pair, dataset.x_test, dataset.y_test)
            )
        print(
            f"{sigma:6.1f} {np.mean(rates['old']):8.3f} "
            f"{np.mean(rates['cld']):8.3f} "
            f"{np.mean(rates['vortex']):8.3f}"
        )


if __name__ == "__main__":
    main()
