"""Quickstart: train a memristor-crossbar classifier with Vortex.

Builds the synthetic digit benchmark, fabricates a differential
crossbar pair with realistic device variation, runs the full Vortex
pipeline (pre-test -> self-tuned VAT -> AMP mapping -> compensated
open-loop programming), and reports the hardware test rate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    HardwareSpec,
    SelfTuningConfig,
    VariationConfig,
    VortexConfig,
    WeightScaler,
    build_pair,
    make_dataset,
    run_vortex,
)
from repro.nn.gdt import GDTConfig


def main() -> None:
    # A 14x14 benchmark keeps the demo under a minute; use the full
    # 28x28 (784-row crossbar) for the paper's headline setup.
    dataset = make_dataset(n_train=1500, n_test=800, seed=7)
    dataset = dataset.undersampled(14)
    print(f"benchmark: {dataset.x_train.shape[0]} train / "
          f"{dataset.x_test.shape[0]} test samples, "
          f"{dataset.n_features} features")

    # Hardware platform: 196(+16 redundant)x10 crossbar, lognormal
    # device variation sigma = 0.6, 6-bit sensing.
    spec = HardwareSpec(
        variation=VariationConfig(sigma=0.6),
        crossbar=CrossbarConfig(rows=dataset.n_features, cols=10,
                                r_wire=0.0),
    )
    rng = np.random.default_rng(42)
    pair = build_pair(spec, WeightScaler(1.0), rng,
                      rows=dataset.n_features + 16)

    config = VortexConfig(
        self_tuning=SelfTuningConfig(
            gammas=(0.0, 0.1, 0.2, 0.3, 0.5, 0.8),
            gdt=GDTConfig(epochs=150),
        ),
    )
    result = run_vortex(
        pair, dataset.x_train, dataset.y_train, n_classes=10,
        config=config, rng=rng,
    )

    print(f"pre-test sigma estimate : {result.sigma_pretest:.3f}")
    print(f"effective sigma post-AMP: {result.sigma_effective:.3f}")
    print(f"self-tuned gamma        : {result.gamma:.2f}")
    print(f"training rate (software): {result.training_rate:.3f}")
    test_rate = result.test_rate(pair, dataset.x_test, dataset.y_test)
    print(f"test rate (hardware)    : {test_rate:.3f}")


if __name__ == "__main__":
    main()
