"""Pulse-level open-loop programming of a crossbar classifier.

Everything the paper's equations abstract as ``g = g_target * e^theta``
happens here mechanistically: pulse widths are pre-calculated from the
nominal switching model (Fig. 1a anchors), optionally stretched for the
predicted programming-time IR-drop, and integrated by devices whose
actual switching rates carry persistent per-device variation.

Run:  python examples/physical_pulse_programming.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    DeviceConfig,
    HardwareSpec,
    OLDConfig,
    VariationConfig,
    WeightScaler,
    build_pair,
    hardware_test_rate,
    make_dataset,
    program_pair_open_loop,
    train_old,
)
from repro.core.old import program_pair_physical
from repro.devices.switching import SwitchingModel
from repro.nn.gdt import GDTConfig
from repro.xbar.programming import plan_programming


def main() -> None:
    device = DeviceConfig()
    model = SwitchingModel(device)

    # --- Pulse pre-calculation on one device. ---
    print("== single-device pulse pre-calculation ==")
    g_target = 2e-5  # 50 kOhm
    width = float(
        plan_programming(
            model,
            np.zeros((1, 1)),
            np.full((1, 1), g_target),
        ).width[0, 0]
    )
    print(f"target 50 kOhm from HRS: SET pulse of {width * 1e6:.3f} us "
          f"at {device.v_set} V")
    achieved = model.conductance_of(
        model.apply_pulse(0.0, device.v_set, width, "set")
    )
    print(f"nominal device lands at {1 / achieved / 1e3:.1f} kOhm")
    fast = model.conductance_of(
        model.apply_pulse(0.0, device.v_set, width * np.exp(0.4), "set")
    )
    print(f"a +0.4-theta (fast) device lands at {1 / fast / 1e3:.1f} kOhm")

    # --- Whole-classifier comparison: abstract vs physical path. ---
    print("\n== classifier deployment: abstract vs physical path ==")
    dataset = make_dataset(n_train=1200, n_test=600, seed=7)
    dataset = dataset.undersampled(14)
    weights = train_old(
        dataset.x_train, dataset.y_train, 10,
        OLDConfig(gdt=GDTConfig(epochs=120)),
    ).weights
    scaler = WeightScaler(1.0)
    print(f"{'sigma':>6s} {'abstract':>10s} {'physical':>10s}")
    for sigma in (0.0, 0.4, 0.8):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(rows=dataset.n_features, cols=10,
                                    r_wire=0.0),
        )
        pair = build_pair(spec, scaler, np.random.default_rng(1))
        program_pair_open_loop(pair, weights)
        rate_abstract = hardware_test_rate(
            pair, dataset.x_test, dataset.y_test, "ideal"
        )
        pair = build_pair(spec, scaler, np.random.default_rng(1))
        program_pair_physical(pair, weights)
        rate_physical = hardware_test_rate(
            pair, dataset.x_test, dataset.y_test, "ideal"
        )
        print(f"{sigma:6.1f} {rate_abstract:10.3f} {rate_physical:10.3f}")


if __name__ == "__main__":
    main()
