"""Deploy a classifier onto a crossbar with stuck-at defects.

Section 4.2.2: fabrication defects leave cells stuck at HRS or LRS;
AMP's pre-test sees them as extreme variations and the greedy mapping
routes the important weight rows away from them, with redundant rows
supplying clean spares.  This example quantifies the recovery.

Run:  python examples/defect_tolerant_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    HardwareSpec,
    OLDConfig,
    RowMapping,
    SensingConfig,
    VariationConfig,
    WeightScaler,
    build_pair,
    hardware_test_rate,
    make_dataset,
    program_pair_open_loop,
    run_amp,
    train_old,
)
from repro.devices.defects import count_defects
from repro.nn.gdt import GDTConfig

DEFECT_RATE = 0.03
REDUNDANCY = (0, 16, 32)
TRIALS = 3


def main() -> None:
    dataset = make_dataset(n_train=1200, n_test=600, seed=7)
    dataset = dataset.undersampled(14)
    n = dataset.n_features
    scaler = WeightScaler(1.0)
    weights = train_old(dataset.x_train, dataset.y_train, 10,
                        OLDConfig(gdt=GDTConfig(epochs=120))).weights
    x_mean = dataset.x_train.mean(axis=0)

    print(f"crossbar: {n} logical rows, defect rate {DEFECT_RATE:.0%}, "
          f"variation sigma 0.4\n")
    print(f"{'extra rows':>10s} {'identity map':>13s} {'AMP map':>9s}")
    for extra in REDUNDANCY:
        identity_rates, amp_rates = [], []
        for trial in range(TRIALS):
            rng = np.random.default_rng(50 + trial)
            spec = HardwareSpec(
                variation=VariationConfig(
                    sigma=0.4, defect_rate=DEFECT_RATE
                ),
                crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
            )
            pair = build_pair(spec, scaler, rng, rows=n + extra)
            if trial == 0 and extra == 0:
                counts = count_defects(pair.positive.array.defects)
                print(f"(positive array defects: "
                      f"{counts['stuck_at_lrs']} stuck-at-LRS, "
                      f"{counts['stuck_at_hrs']} stuck-at-HRS)\n")

            # Baseline: identity placement, defects land wherever.
            identity = RowMapping(
                assignment=np.arange(n), n_physical=n + extra
            )
            program_pair_open_loop(
                pair, identity.weights_to_physical(weights)
            )
            identity_rates.append(hardware_test_rate(
                pair, dataset.x_test, dataset.y_test, "ideal",
                input_map=identity.inputs_to_physical,
            ))

            # AMP: pre-test, then route around the bad devices.
            amp = run_amp(pair, weights, x_mean,
                          SensingConfig(adc_bits=6), rng=rng)
            program_pair_open_loop(
                pair, amp.mapping.weights_to_physical(weights)
            )
            amp_rates.append(hardware_test_rate(
                pair, dataset.x_test, dataset.y_test, "ideal",
                input_map=amp.mapping.inputs_to_physical,
            ))
        print(f"{extra:10d} {np.mean(identity_rates):13.3f} "
              f"{np.mean(amp_rates):9.3f}")


if __name__ == "__main__":
    main()
