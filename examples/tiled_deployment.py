"""Resolving Table 1's size tension with crossbar tiling.

Table 1 of the paper exposes a dilemma: the 784-row crossbar carries
the full image (best features) but the longest bit lines (worst
IR-drop), while the 49-row crossbar has short wires but quarter-scale
images.  The architectural answer is *tiling*: keep all 784 features
and split them across shorter tiles whose outputs are summed digitally.
This example measures classifier accuracy through the full read-path
wire physics (fixed-point solve) as the tile height shrinks.

Run:  python examples/tiled_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    OLDConfig,
    VariationConfig,
    WeightScaler,
    make_dataset,
    train_old,
)
from repro.nn.gdt import GDTConfig
from repro.nn.metrics import rate_from_scores
from repro.xbar.tiling import TiledPair

R_WIRE = 2.5
SIGMA = 0.3
TILE_ROWS = (784, 392, 196, 98)


def main() -> None:
    dataset = make_dataset(n_train=1500, n_test=800, seed=7)
    n = dataset.n_features  # 784: the paper's full-resolution crossbar
    weights = train_old(
        dataset.x_train, dataset.y_train, 10,
        OLDConfig(gdt=GDTConfig(epochs=150)),
    ).weights
    software = rate_from_scores(
        dataset.x_test @ weights, dataset.y_test
    )
    print(f"784-feature classifier, software ceiling {software:.3f}")
    print(f"read path: full wire physics, r_wire = {R_WIRE} Ohm, "
          f"device sigma = {SIGMA}\n")
    print(f"{'tiles':>6s} {'rows/tile':>10s} {'test rate':>11s}")

    for tile_rows in TILE_ROWS:
        rates = []
        for seed in range(2):
            tiled = TiledPair(
                WeightScaler(1.0),
                n_rows=n,
                cols=10,
                tile_rows=tile_rows,
                config=CrossbarConfig(rows=n, cols=10, r_wire=R_WIRE),
                variation=VariationConfig(sigma=SIGMA),
                rng=np.random.default_rng(40 + seed),
                adc_bits=6,
            )
            tiled.program_weights(weights)
            tiled.calibrate_sense(dataset.x_test[:128])
            scores = tiled.matvec(dataset.x_test, "fixed_point")
            rates.append(rate_from_scores(scores, dataset.y_test))
        n_tiles = int(np.ceil(n / tile_rows))
        print(f"{n_tiles:6d} {tile_rows:10d} {np.mean(rates):11.3f}")


if __name__ == "__main__":
    main()
