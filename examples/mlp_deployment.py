"""Deploying a two-layer (hidden-unit) network on crossbar pairs.

The paper's introduction motivates neuromorphic hardware with deep
networks; its evaluation uses a single weight layer.  This example
takes the natural next step: a one-hidden-layer MLP whose two weight
matrices live on two differential crossbar pairs, with the ReLU and
inter-layer scaling in the digital domain.  Device variation now
corrupts *both* layers; AMP can be applied to each pair independently.

Run:  python examples/mlp_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CrossbarConfig,
    SensingConfig,
    VariationConfig,
    WeightScaler,
    make_dataset,
    run_amp,
)
from repro.nn.mlp import MLPConfig, MLPOnCrossbars, train_mlp
from repro.xbar.pair import DifferentialCrossbar

SIGMAS = (0.0, 0.4, 0.8)


def make_pair(rows, cols, sigma, seed):
    return DifferentialCrossbar(
        WeightScaler(1.0),
        config=CrossbarConfig(rows=rows, cols=cols, r_wire=0.0),
        variation=VariationConfig(sigma=sigma),
        rng=np.random.default_rng(seed),
    )


def main() -> None:
    dataset = make_dataset(n_train=1500, n_test=800, seed=7)
    dataset = dataset.undersampled(14)
    mlp = train_mlp(
        dataset.x_train, dataset.y_train, 10,
        MLPConfig(hidden=64, epochs=250),
    )
    n, h = mlp.w1.shape
    print(f"MLP {n} -> {h} -> 10")
    print(f"software test accuracy: "
          f"{mlp.accuracy(dataset.x_test, dataset.y_test):.3f}\n")
    print(f"{'sigma':>6s} {'hardware':>10s} {'hardware+AMP':>13s}")

    for sigma in SIGMAS:
        plain_rates, amp_rates = [], []
        for seed in range(2):
            layer1 = make_pair(n, h, sigma, seed)
            layer2 = make_pair(h, 10, sigma, 100 + seed)
            deploy = MLPOnCrossbars(mlp, layer1, layer2)
            deploy.program(dataset.x_train[:256])
            plain_rates.append(
                deploy.accuracy(dataset.x_test, dataset.y_test)
            )

            # AMP on the first (large) layer: remap its rows onto the
            # measured fabric, then rebuild the deployment with the
            # routed weights and inputs.
            rng = np.random.default_rng(200 + seed)
            layer1b = make_pair(n, h, sigma, seed)
            amp = run_amp(
                layer1b, mlp.w1 / np.abs(mlp.w1).max(),
                dataset.x_train.mean(axis=0),
                SensingConfig(adc_bits=8), rng=rng,
            )

            class RoutedLayer1:
                """layer1 with AMP input routing folded in."""

                shape = (n, h)

                def program_weights(self, w, with_cycle_noise=True):
                    layer1b.program_weights(
                        amp.mapping.weights_to_physical(w),
                        with_cycle_noise,
                    )

                def matvec(self, x, ir_mode="ideal"):
                    return layer1b.matvec(
                        amp.mapping.inputs_to_physical(x), ir_mode
                    )

            deploy_amp = MLPOnCrossbars(
                mlp, RoutedLayer1(), make_pair(h, 10, sigma, 100 + seed)
            )
            deploy_amp.program(dataset.x_train[:256])
            amp_rates.append(
                deploy_amp.accuracy(dataset.x_test, dataset.y_test)
            )
        print(f"{sigma:6.1f} {np.mean(plain_rates):10.3f} "
              f"{np.mean(amp_rates):13.3f}")


if __name__ == "__main__":
    main()
