"""Circuit-level IR-drop analysis of a memristor crossbar.

Reproduces the Section 3.2 analysis interactively: solves the full
nodal network of a crossbar, compares it with the fast ladder
decomposition (the paper's beta / D split, Fig. 3), and shows how the
vertical voltage skew translates -- through the exponential switching
nonlinearity -- into the frozen-row effect that breaks close-loop
training on tall crossbars.

Run:  python examples/irdrop_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import DeviceConfig
from repro.devices.switching import SwitchingModel
from repro.xbar import CrossbarNetwork, program_factors

HEIGHTS = (32, 64, 128, 256, 512)
R_WIRE = 2.5


def ascii_profile(values: np.ndarray, width: int = 40) -> str:
    """One-line bar profile of a factor column (1.0 = full width)."""
    bars = []
    for v in values:
        bars.append("#" * int(round(v * width)))
    return "\n".join(
        f"  row {i:4d} |{bar:<{width}s}| {v:.3f}"
        for i, (bar, v) in enumerate(zip(bars, values))
    )


def main() -> None:
    device = DeviceConfig()
    model = SwitchingModel(device)

    print("== delivered programming voltage vs crossbar height ==")
    print(f"(all-LRS worst case, r_wire = {R_WIRE} Ohm)\n")
    print(f"{'rows':>6s} {'d skew':>8s} {'worst update ratio':>20s}")
    for n in HEIGHTS:
        g = np.full((n, 10), device.g_on)
        decomposition = program_factors(g, R_WIRE, device.v_set)
        factors = decomposition.column_factors[:, 0]
        eff = model.nonlinearity_factor(device.v_set * factors, "set")
        print(f"{n:6d} {decomposition.d_skew.max():8.3f} "
              f"{eff.min() / eff.max():20.2e}")

    n = 64
    g = np.full((n, 10), device.g_on)
    decomposition = program_factors(g, R_WIRE, device.v_set)
    print(f"\n== vertical degradation profile (n={n}, column 0, "
          "every 8th row) ==")
    print(ascii_profile(decomposition.column_factors[::8, 0]))

    print("\n== ladder decomposition vs full nodal solve ==")
    network = CrossbarNetwork(g, R_WIRE)
    print(f"{'cell':>12s} {'nodal (V)':>10s} {'ladder (V)':>11s}")
    for row, col in ((0, 0), (n // 2, 5), (n - 1, 9)):
        exact = network.program_voltages(row, col, device.v_set)
        v_nodal = exact.device_voltage[row, col]
        v_ladder = device.v_set * decomposition.combined[row, col]
        print(f"({row:3d},{col:2d})     {v_nodal:10.4f} {v_ladder:11.4f}")

    print("\n== read-path attenuation ==")
    x = np.full(n, 0.5)
    ideal = network.ideal_read(x)
    actual = network.read(x)
    for j in (0, 5, 9):
        loss = 100 * (1 - actual[j] / ideal[j])
        print(f"column {j}: ideal {ideal[j] * 1e3:7.3f} mA, "
              f"actual {actual[j] * 1e3:7.3f} mA "
              f"({loss:.1f}% lost to wires)")


if __name__ == "__main__":
    main()
