"""Table 1 bench: Vortex vs CLD at different crossbar sizes.

Paper shape: with IR-drop active (r_wire = 2.5 Ohm), CLD's test rate
collapses as the crossbar height grows (33.7 % at 784 rows) while
Vortex *improves* with size; without IR-drop CLD recovers and both
degrade toward small crossbars as the images lose features.
"""

from __future__ import annotations

from conftest import print_series

from repro.experiments import run_table1


def test_table1_crossbar_sizes(benchmark, scale, image_size, r_wire):
    if image_size == 28:
        sizes = (28, 14, 7)
    else:
        sizes = (14, 7)
    result = benchmark.pedantic(
        lambda: run_table1(scale, image_sizes=sizes, r_wire=r_wire),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Table 1 - Vortex vs CLD at different crossbar sizes ===")
    print(result.table())

    cld_ir = result.test_rate["cld_ir"]
    vortex = result.test_rate["vortex_ir"]
    cld_no_ir = result.test_rate["cld_no_ir"]
    # Shape: on the largest crossbar Vortex-with-IR beats CLD-with-IR
    # decisively, and CLD recovers once IR-drop is removed.
    assert vortex[0] > cld_ir[0]
    assert cld_no_ir[0] > cld_ir[0]
    # CLD w/o IR-drop degrades toward smaller images (feature loss).
    assert cld_no_ir[0] > cld_no_ir[-1]
