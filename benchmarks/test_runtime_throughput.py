"""Runtime-engine throughput: serial vs parallel on a fixed workload.

Times the same Monte-Carlo column workload (the Fig. 2 trial at a
fixed configuration) through the ``repro.runtime`` executor at
``jobs=1`` and ``jobs=N``, asserts the two runs are bit-identical (the
engine's core guarantee), and appends the measurements to a
``BENCH_runtime.json`` trajectory artifact so the speedup can be
tracked across revisions.  Skipped when the platform cannot start
worker processes.
"""

from __future__ import annotations

import concurrent.futures
import functools
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.fig2_column import ColumnTrialConfig, _column_trial
from repro.runtime import map_trials

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

TRIALS = 96
SEED = 1234


def _parallel_jobs() -> int:
    return min(4, os.cpu_count() or 1)


def _workers_available() -> bool:
    """Whether worker processes can actually start on this platform."""
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


def _timed(trial, jobs: int) -> tuple[float, np.ndarray]:
    t0 = time.perf_counter()
    values = map_trials(trial, TRIALS, seed=SEED, jobs=jobs)
    return time.perf_counter() - t0, values


def test_runtime_throughput():
    if not _workers_available():
        pytest.skip("worker processes unavailable on this platform")

    cfg = ColumnTrialConfig(
        sigma=0.5, n_devices=100, target_current=1e-3, v_read=1.0,
        adc_bits=6, cld_iterations=60,
    )
    trial = functools.partial(_column_trial, cfg=cfg)
    jobs = _parallel_jobs()

    serial_s, serial_values = _timed(trial, 1)
    parallel_s, parallel_values = _timed(trial, jobs)

    # The engine's contract: the worker count never changes a value.
    assert np.array_equal(serial_values, parallel_values)

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trials": TRIALS,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "serial_trials_per_s": round(TRIALS / serial_s, 1),
        "parallel_trials_per_s": round(TRIALS / parallel_s, 1),
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== runtime throughput (Fig. 2 column workload) ===")
    print(f"trials           {TRIALS}")
    print(f"serial           {serial_s:8.3f}s "
          f"({entry['serial_trials_per_s']} trials/s)")
    print(f"jobs={jobs:<12d} {parallel_s:8.3f}s "
          f"({entry['parallel_trials_per_s']} trials/s)")
    print(f"speedup          {entry['speedup']}x")
    print(f"trajectory       {BENCH_PATH}")
