"""Runtime-engine throughput: looped vs parallel vs batched kernels.

Times the same Monte-Carlo column workload (the Fig. 2 trial at a
fixed configuration) through the ``repro.runtime`` executor three
ways -- looped at ``jobs=1``, looped at ``jobs=N``, and through the
trial-batched kernel -- asserts all runs are bit-identical (the
engine's core guarantee), asserts the batched kernel clears a 3x
throughput floor over the looped path, and appends the measurements to
a ``BENCH_runtime.json`` trajectory artifact so both speedups can be
tracked across revisions.  Skipped when the platform cannot start
worker processes; the parallel-speedup check (and only it) is skipped
on single-CPU hosts, where fan-out cannot win.
"""

from __future__ import annotations

import concurrent.futures
import functools
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.fig2_column import (
    ColumnTrialConfig,
    _column_trial,
    _column_trial_batch,
)
from repro.runtime import current_runtime, map_trials, map_trials_batched

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

TRIALS = 96
SEED = 1234
# The vectorised kernel must clear this throughput multiple over the
# looped path -- pure vectorisation, no parallelism, so the floor holds
# on any host.
BATCHED_SPEEDUP_FLOOR = 3.0


def _parallel_jobs() -> int:
    return min(4, os.cpu_count() or 1)


def _workers_available() -> bool:
    """Whether worker processes can actually start on this platform."""
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


def _timed(mapper, fn, jobs: int) -> tuple[float, np.ndarray]:
    t0 = time.perf_counter()
    values = mapper(fn, TRIALS, seed=SEED, jobs=jobs)
    return time.perf_counter() - t0, values


def test_runtime_throughput():
    if not _workers_available():
        pytest.skip("worker processes unavailable on this platform")

    cfg = ColumnTrialConfig(
        sigma=0.5, n_devices=100, target_current=1e-3, v_read=1.0,
        adc_bits=6, cld_iterations=60,
    )
    trial = functools.partial(_column_trial, cfg=cfg)
    batch_trial = functools.partial(_column_trial_batch, cfg=cfg)
    jobs = _parallel_jobs()

    serial_s, serial_values = _timed(map_trials, trial, 1)
    parallel_s, parallel_values = _timed(map_trials, trial, jobs)
    batched_s, batched_values = _timed(map_trials_batched, batch_trial, 1)

    # The engine's contract: neither the worker count nor the kernel
    # ever changes a value.
    assert np.array_equal(serial_values, parallel_values)
    assert np.array_equal(serial_values, batched_values)

    # Vectorisation floor: the batched kernel amortises the per-trial
    # Python overhead regardless of core count.
    batched_speedup = serial_s / batched_s if batched_s else float("inf")
    assert batched_speedup >= BATCHED_SPEEDUP_FLOOR, (
        f"batched kernel only {batched_speedup:.2f}x over looped; "
        f"floor is {BATCHED_SPEEDUP_FLOOR}x"
    )

    # Parallel speedup needs actual cores; on a single-CPU host the
    # fan-out can only add dispatch overhead, so only the bit-identity
    # above is meaningful there.
    if (os.cpu_count() or 1) > 1:
        assert parallel_s < serial_s, (
            f"jobs={jobs} slower than serial ({parallel_s:.3f}s vs "
            f"{serial_s:.3f}s) on a {os.cpu_count()}-CPU host"
        )

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trials": TRIALS,
        "jobs": jobs,
        "backend": current_runtime().backend,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "batched_speedup": round(batched_speedup, 3),
        "serial_trials_per_s": round(TRIALS / serial_s, 1),
        "parallel_trials_per_s": round(TRIALS / parallel_s, 1),
        "batched_trials_per_s": round(TRIALS / batched_s, 1),
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== runtime throughput (Fig. 2 column workload) ===")
    print(f"trials           {TRIALS}")
    print(f"looped           {serial_s:8.3f}s "
          f"({entry['serial_trials_per_s']} trials/s)")
    print(f"jobs={jobs:<12d} {parallel_s:8.3f}s "
          f"({entry['parallel_trials_per_s']} trials/s)")
    print(f"batched          {batched_s:8.3f}s "
          f"({entry['batched_trials_per_s']} trials/s)")
    print(f"parallel speedup {entry['speedup']}x")
    print(f"batched speedup  {entry['batched_speedup']}x")
    print(f"trajectory       {BENCH_PATH}")
