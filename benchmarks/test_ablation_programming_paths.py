"""Ablation: abstract lognormal landing model vs physical pulse path.

The paper's equations postulate the landing model
``g = g_target * exp(theta)``; the library also implements the
mechanistic alternative (nominal-model pulse pre-calculation integrated
by devices with per-device rate multipliers).  This bench compares the
two on landing-error statistics and downstream test rate, validating
that the paper's abstraction is (conservatively) faithful.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import (
    OLDConfig,
    program_pair_open_loop,
    program_pair_physical,
    train_old,
)
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

SIGMAS = (0.0, 0.4, 0.8)


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    weights = train_old(ds.x_train, ds.y_train, 10,
                        OLDConfig(gdt=scale.gdt())).weights
    scaler = WeightScaler(1.0)
    rows = []
    for sigma in SIGMAS:
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        )
        r_abs, r_phys, corr = [], [], []
        for seed in range(max(2, scale.mc_trials)):
            pair_a = build_pair(spec, scaler, np.random.default_rng(seed))
            program_pair_open_loop(pair_a, weights)
            r_abs.append(hardware_test_rate(
                pair_a, ds.x_test, ds.y_test, "ideal"
            ))
            pair_p = build_pair(spec, scaler, np.random.default_rng(seed))
            program_pair_physical(pair_p, weights)
            r_phys.append(hardware_test_rate(
                pair_p, ds.x_test, ds.y_test, "ideal"
            ))
            la = np.log(pair_a.positive.conductance).ravel()
            lp = np.log(pair_p.positive.conductance).ravel()
            corr.append(float(np.corrcoef(la, lp)[0, 1]))
        rows.append((
            sigma,
            float(np.mean(r_abs)),
            float(np.mean(r_phys)),
            float(np.mean(corr)),
        ))
    return rows


def test_ablation_programming_paths(benchmark, scale, image_size):
    rows = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        "Ablation - abstract vs physical programming path",
        f"{'sigma':>6s} {'abstract':>10s} {'physical':>10s} "
        f"{'g-corr':>8s}",
        (
            f"{s:6.1f} {a:10.3f} {p:10.3f} {c:8.3f}"
            for s, a, p, c in rows
        ),
    )
    by_sigma = {s: (a, p, c) for s, a, p, c in rows}
    # At sigma = 0 the paths agree; under variation they stay
    # device-correlated and the abstract model is not optimistic.
    a0, p0, c0 = by_sigma[0.0]
    assert abs(a0 - p0) < 0.02
    assert c0 > 0.99
    for sigma in SIGMAS[1:]:
        a, p, c = by_sigma[sigma]
        assert c > 0.9
        assert a <= p + 0.03  # abstract model is the conservative one
