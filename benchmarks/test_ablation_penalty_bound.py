"""Ablation: Gaussian vs chi-square penalty bound in VAT.

The paper derives the variation budget through Cauchy-Schwarz plus a
chi-square bound on ``||theta||_2`` (Eq. 7-8) -- extremely conservative
because it budgets a worst-case variation *direction*.  The library's
default instead bounds the (scalar, Gaussian) output deviation
directly.  The two families differ only by a rescaling of gamma; this
bench verifies that after self-tuning they deliver equivalent deployed
accuracy, with the chi-square family choosing a much smaller gamma.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.core.self_tuning import SelfTuningConfig, injected_rate, tune_gamma
from repro.experiments import get_dataset


def _matched_scale_equivalence(n_rows: int, sigma: float) -> float:
    """gamma ratio that equates the two bounds' penalty scales."""
    from repro.core.vat import VATConfig

    gauss = VATConfig(gamma=1.0, sigma=sigma, bound="gaussian")
    chi2 = VATConfig(gamma=1.0, sigma=sigma, bound="chi2")
    return gauss.penalty_scale(n_rows) / chi2.penalty_scale(n_rows)


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    sigma = 0.8
    rng_eval = np.random.default_rng(321)
    thetas = rng_eval.standard_normal((8, ds.n_features, 10))
    results = {}
    for bound, gammas in (
        ("gaussian", (0.0, 0.1, 0.2, 0.3, 0.5, 0.8)),
        ("chi2", (0.0, 0.01, 0.02, 0.04, 0.08, 0.15)),
    ):
        cfg = SelfTuningConfig(
            gammas=gammas, bound=bound,
            n_injections=scale.n_injections, gdt=scale.gdt(),
        )
        tuned = tune_gamma(
            ds.x_train, ds.y_train, 10, sigma, cfg,
            np.random.default_rng(9),
        )
        deployed = injected_rate(
            tuned.weights, ds.x_test, ds.y_test, sigma, 8,
            rng_eval, thetas=thetas,
        )
        results[bound] = (tuned.best_gamma, deployed)
    results["gamma_ratio"] = _matched_scale_equivalence(
        ds.n_features, sigma
    )
    return results


def test_ablation_penalty_bound(benchmark, scale, image_size):
    results = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    gamma_ratio = results.pop("gamma_ratio")
    print_series(
        "Ablation - penalty bound family (sigma=0.8, self-tuned)",
        f"{'bound':>10s} {'chosen gamma':>13s} {'deployed rate':>14s}",
        (
            f"{name:>10s} {g:13.3f} {r:14.3f}"
            for name, (g, r) in results.items()
        ),
    )
    print(f"equal-penalty gamma ratio (gauss/chi2 scale): "
          f"{gamma_ratio:.4f}")
    # The families are gamma-rescalings of each other (the chi-square
    # bound compresses the useful range toward zero), so self-tuning
    # lands them within Monte-Carlo noise of each other.
    g_gauss, r_gauss = results["gaussian"]
    g_chi2, r_chi2 = results["chi2"]
    assert gamma_ratio < 0.2  # chi2 scale is much larger per gamma
    assert abs(r_gauss - r_chi2) < 0.08
    assert g_chi2 < g_gauss or g_gauss == 0.0
