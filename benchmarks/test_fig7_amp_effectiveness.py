"""Fig. 7 bench: effectiveness of AMP across the gamma sweep.

Paper shape: the after-AMP test-rate curve sits above the before-AMP
curve, and its peak moves to a smaller gamma (0.4 -> 0.2 in the paper)
because AMP shrinks the effective variation VAT must budget for.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.experiments import run_fig7


def test_fig7_amp_effectiveness(benchmark, scale, image_size):
    result = benchmark.pedantic(
        lambda: run_fig7(scale, sigma=0.6, image_size=image_size),
        rounds=1,
        iterations=1,
    )
    print_series(
        f"Fig. 7 - AMP effectiveness (sigma={result.sigma})",
        f"{'gamma':>6s} {'train':>8s} {'before AMP':>12s} "
        f"{'after AMP':>11s}",
        (
            f"{g:6.2f} {tr:8.3f} {b:12.3f} {a:11.3f}"
            for g, tr, b, a in result.rows()
        ),
    )
    print(
        f"optimal gamma: before AMP {result.best_gamma_before}, "
        f"after AMP {result.best_gamma_after}"
    )
    # Shape: AMP lifts the curve everywhere on average and does not
    # push the optimum to a larger gamma.
    assert np.mean(result.test_after_amp) > np.mean(
        result.test_before_amp
    )
    assert result.best_gamma_after <= result.best_gamma_before + 1e-9
