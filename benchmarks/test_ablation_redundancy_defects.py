"""Ablation: redundancy pay-off in the presence of stuck-at defects.

Section 4.2.2 extends AMP to defective cells: stuck devices surface as
extreme pre-test variations and the mapping routes around them, with
redundant rows supplying clean spares.  This bench makes the Fig. 9
redundancy benefit decisive by adding a realistic defect rate.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import RowMapping
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.greedy import greedy_mapping
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.core.vat import VATConfig, train_vat
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

REDUNDANCY = (0, 8, 16, 32)
DEFECT_RATE = 0.05


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    weights = train_vat(
        ds.x_train, ds.y_train, 10,
        VATConfig(gamma=0.2, sigma=0.4, gdt=scale.gdt()),
    ).weights
    x_mean = ds.x_train.mean(axis=0)
    order = mapping_order(weights, x_mean)
    spec = HardwareSpec(
        variation=VariationConfig(sigma=0.4, defect_rate=DEFECT_RATE),
        crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        sensing=SensingConfig(adc_bits=6),
    )

    amp_rates = {p: 0.0 for p in REDUNDANCY}
    identity_rate = 0.0
    trials = max(3, scale.mc_trials)
    for trial in range(trials):
        rng = np.random.default_rng(8800 + trial)
        for extra in REDUNDANCY:
            pair = build_pair(spec, scaler, rng, rows=n + extra)
            if extra == 0:
                identity = RowMapping(
                    assignment=np.arange(n), n_physical=n
                )
                program_pair_open_loop(
                    pair, identity.weights_to_physical(weights)
                )
                identity_rate += hardware_test_rate(
                    pair, ds.x_test, ds.y_test, "ideal",
                    input_map=identity.inputs_to_physical,
                )
            pretest = pretest_pair(pair, spec.sensing, rng=rng)
            swv = swv_pair(
                weights, pretest.theta_pos, pretest.theta_neg, scaler
            )
            mapping = RowMapping(
                assignment=greedy_mapping(swv, order),
                n_physical=n + extra,
            )
            program_pair_open_loop(
                pair, mapping.weights_to_physical(weights)
            )
            amp_rates[extra] += hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=mapping.inputs_to_physical,
            )
    identity_rate /= trials
    for p in REDUNDANCY:
        amp_rates[p] /= trials
    return identity_rate, amp_rates


def test_ablation_redundancy_with_defects(benchmark, scale, image_size):
    identity_rate, amp_rates = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        f"Ablation - redundancy under {DEFECT_RATE:.0%} stuck-at "
        "defects (sigma=0.4)",
        f"{'mapping':>16s} {'test rate':>11s}",
        [f"{'identity (p=0)':>16s} {identity_rate:11.3f}"]
        + [
            f"{'AMP p=' + str(p):>16s} {amp_rates[p]:11.3f}"
            for p in REDUNDANCY
        ],
    )
    # AMP must beat blind placement under defects, and generous
    # redundancy must not be worse than none.
    assert amp_rates[0] > identity_rate
    assert max(amp_rates[p] for p in REDUNDANCY[1:]) >= amp_rates[0] - 0.01
