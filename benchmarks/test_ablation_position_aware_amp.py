"""Ablation: position-aware AMP under read-path wire physics.

The paper's Algorithm 1 places rows by device variation alone.  When
the *read* path also suffers IR-drop (beyond the paper's model), a
physical row far from the bit-line driver delivers an attenuated
contribution, so placement gains a second axis: put high-sensitivity
rows near the driver.  ``run_amp(position_weight=...)`` adds that term
to the SWV cost; this bench measures it with the full fixed-point wire
solve.

Finding (and why ``position_weight=0`` stays the default): at strong
loading the position term buys little and can *lose* -- the digital
per-column gain calibration already absorbs the bulk of the
attenuation, which is largely common-mode per column, while the
variation mismatch the term trades away is uncorrectable.  The
position axis only pays at mild loading (see the unit test at
r_wire=4); at heavy loading, tiling (see ``test_ablation_tiling``) is
the effective lever.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import run_amp
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

POSITION_WEIGHTS = (0.0, 0.5, 1.0, 2.0)
SIGMA = 0.3


def _run(scale, image_size, r_wire):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    weights = train_old(ds.x_train, ds.y_train, 10,
                        OLDConfig(gdt=scale.gdt())).weights
    x_mean = ds.x_train.mean(axis=0)
    spec = HardwareSpec(
        variation=VariationConfig(sigma=SIGMA),
        crossbar=CrossbarConfig(rows=n, cols=10, r_wire=r_wire),
        sensing=SensingConfig(adc_bits=8),
    )
    trials = max(2, scale.mc_trials)
    rates = {pw: 0.0 for pw in POSITION_WEIGHTS}
    for seed in range(trials):
        rng = np.random.default_rng(5500 + seed)
        pair = build_pair(spec, scaler, rng, rows=n + 32)
        pretest = None
        for pw in POSITION_WEIGHTS:
            amp = run_amp(
                pair, weights, x_mean, spec.sensing, rng=rng,
                pretest=pretest, position_weight=pw,
            )
            pretest = amp.pretest
            program_pair_open_loop(
                pair, amp.mapping.weights_to_physical(weights),
                x_reference=amp.mapping.inputs_to_physical(x_mean),
            )
            rates[pw] += hardware_test_rate(
                pair, ds.x_test, ds.y_test, "fixed_point",
                input_map=amp.mapping.inputs_to_physical,
            )
    for pw in POSITION_WEIGHTS:
        rates[pw] /= trials
    return rates


def test_ablation_position_aware_amp(benchmark, scale, image_size, r_wire):
    rates = benchmark.pedantic(
        lambda: _run(scale, image_size, r_wire), rounds=1, iterations=1
    )
    print_series(
        "Ablation - position-aware AMP under read-path wire physics "
        f"(sigma={SIGMA}, r_wire={r_wire}, 32 redundant rows)",
        f"{'position weight':>16s} {'test rate':>11s}",
        (
            f"{pw:16.1f} {rates[pw]:11.3f}"
            for pw in POSITION_WEIGHTS
        ),
    )
    # Documented finding: the plain Algorithm-1 placement stays
    # competitive -- position awareness never beats it by a margin
    # that would justify sacrificing the variation objective, and may
    # lose outright at strong loading.
    plain = rates[POSITION_WEIGHTS[0]]
    best_aware = max(rates[pw] for pw in POSITION_WEIGHTS[1:])
    assert best_aware <= plain + 0.05  # no dramatic win for position
    assert best_aware >= plain - 0.12  # and no collapse either
