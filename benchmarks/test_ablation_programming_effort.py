"""Ablation: programming effort vs deployed robustness.

The paper motivates Vortex by the cost of feedback: OLD "eliminates
the costly feedback control and high-resolution ADC", while CLD senses
every iteration.  Between them sits industry-standard write-verify
(per-cell program-and-trim).  This bench positions the schemes on the
effort/robustness plane: pulses issued per cell vs hardware test rate
at sigma = 0.8.  Vortex's claim is reaching write-verify-class
robustness at open-loop programming cost (one pulse per cell plus one
pre-test pass per chip lifetime).
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import run_amp
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.vat import VATConfig, train_vat
from repro.core.write_verify import (
    WriteVerifyConfig,
    program_pair_write_verify,
)
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

SIGMA = 0.8


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    x_mean = ds.x_train.mean(axis=0)
    old_w = train_old(ds.x_train, ds.y_train, 10,
                      OLDConfig(gdt=scale.gdt())).weights
    vat_w = train_vat(
        ds.x_train, ds.y_train, 10,
        VATConfig(gamma=0.3, sigma=SIGMA, gdt=scale.gdt()),
    ).weights
    spec = HardwareSpec(
        variation=VariationConfig(sigma=SIGMA),
        crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        sensing=SensingConfig(adc_bits=6),
    )
    cells = 2 * n * 10
    results = {
        "OLD": [0.0, 1.0],
        "write-verify": [0.0, 0.0],
        "Vortex (VAT+AMP)": [0.0, 1.0],
    }
    trials = max(2, scale.mc_trials)
    for seed in range(trials):
        rng = np.random.default_rng(4200 + seed)
        # OLD: one pulse per cell, blind.
        pair = build_pair(spec, scaler, rng)
        program_pair_open_loop(pair, old_w)
        results["OLD"][0] += hardware_test_rate(
            pair, ds.x_test, ds.y_test, "ideal"
        )
        # Write-verify: trained like OLD, trimmed per cell.
        pair = build_pair(spec, scaler, rng)
        stats = program_pair_write_verify(
            pair, old_w, WriteVerifyConfig(adc_bits=6)
        )
        results["write-verify"][0] += hardware_test_rate(
            pair, ds.x_test, ds.y_test, "ideal"
        )
        results["write-verify"][1] += stats.total_pulses / cells / trials
        # Vortex core: VAT weights + AMP mapping, one pulse per cell.
        pair = build_pair(spec, scaler, rng)
        amp = run_amp(pair, vat_w, x_mean, spec.sensing, rng=rng)
        program_pair_open_loop(
            pair, amp.mapping.weights_to_physical(vat_w)
        )
        results["Vortex (VAT+AMP)"][0] += hardware_test_rate(
            pair, ds.x_test, ds.y_test, "ideal",
            input_map=amp.mapping.inputs_to_physical,
        )
    for name in results:
        results[name][0] /= trials
    return results


def test_ablation_programming_effort(benchmark, scale, image_size):
    results = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        f"Ablation - programming effort vs robustness (sigma={SIGMA})",
        f"{'scheme':>18s} {'test rate':>11s} {'pulses/cell':>13s}",
        (
            f"{name:>18s} {rate:11.3f} {pulses:13.2f}"
            for name, (rate, pulses) in results.items()
        ),
    )
    old_rate = results["OLD"][0]
    wv_rate, wv_pulses = results["write-verify"]
    vx_rate = results["Vortex (VAT+AMP)"][0]
    # Write-verify buys robustness with pulses; Vortex approaches it at
    # open-loop cost.
    assert wv_rate > old_rate
    assert wv_pulses > 1.5
    assert vx_rate > old_rate
    assert vx_rate > wv_rate - 0.08
