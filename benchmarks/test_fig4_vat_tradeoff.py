"""Fig. 4 bench: VAT's variation-tolerance vs training-rate trade-off.

Paper shape: as gamma rises, the training rate and the clean test rate
fall, while the test rate *under variation* first climbs to an interior
peak before the over-tight constraint erodes it.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.experiments import run_fig4


def test_fig4_vat_tradeoff(benchmark, scale, image_size):
    result = benchmark.pedantic(
        lambda: run_fig4(scale, sigma=0.6, image_size=image_size),
        rounds=1,
        iterations=1,
    )
    print_series(
        f"Fig. 4 - VAT trade-off (sigma={result.sigma})",
        f"{'gamma':>6s} {'train':>8s} {'test w/o var':>14s} "
        f"{'test w/ var':>13s}",
        (
            f"{g:6.2f} {tr:8.3f} {tc:14.3f} {ti:13.3f}"
            for g, tr, tc, ti in result.rows()
        ),
    )
    print(f"best gamma (peak of injected test rate): {result.best_gamma}")
    # Shape: the clean test rate is strictly hurt by the largest
    # penalty; the injected rate is maximised strictly inside (0, 1] or
    # at worst at a small gamma -- never by the most aggressive one
    # when that one has collapsed.
    assert result.test_rate_clean[-1] <= result.test_rate_clean[0] + 0.02
    assert np.all(result.test_rate_injected <= result.test_rate_clean + 0.05)
    best_idx = int(np.argmax(result.test_rate_injected))
    assert result.test_rate_injected[best_idx] >= (
        result.test_rate_injected[0]
    )
