"""Serving throughput: batched reads vs sequential single-query reads.

Times the same 64-query workload against a programmed nodal-mode
crossbar three ways -- naive sequential (a fresh IR-drop solve per
query, the pre-serving status quo), cached sequential (one LU
factorisation shared across single-vector reads) and batched (one
multi-RHS solve) -- asserts all three agree bit-for-bit and that the
batched path clears the 5x contract over the naive sequential path.
Then pushes 200 queries through the full scheduler and records tail
latency and drop counts.  Everything lands in ``BENCH_serve.json``,
appended as a trajectory across revisions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.config import CrossbarConfig, VariationConfig
from repro.runtime.telemetry import RunLog
from repro.serve.engine import InferenceEngine
from repro.serve.scheduler import BatchScheduler
from repro.xbar.crossbar import Crossbar
from repro.xbar.nodal import CrossbarNetwork

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


class SingleArrayTarget:
    """Adapts a bare :class:`Crossbar` to the engine's matvec contract."""

    def __init__(self, xbar: Crossbar):
        self.xbar = xbar

    @property
    def shape(self) -> tuple[int, int]:
        return self.xbar.shape

    def matvec(self, x: np.ndarray, ir_mode: str = "ideal") -> np.ndarray:
        return self.xbar.read(x, ir_mode)

ROWS, COLS = 96, 10
N_QUERIES = 64
SMOKE_QUERIES = 200
SEED = 42


def make_programmed_crossbar() -> Crossbar:
    xbar = Crossbar(
        config=CrossbarConfig(rows=ROWS, cols=COLS, r_wire=2.5),
        variation=VariationConfig(sigma=0.3),
        rng=np.random.default_rng(SEED),
    )
    rng = np.random.default_rng(SEED + 1)
    d = xbar.device
    xbar.program(
        rng.uniform(d.g_off, d.g_on, size=(ROWS, COLS)),
        with_cycle_noise=False,
    )
    return xbar


def test_serve_throughput():
    xbar = make_programmed_crossbar()
    queries = np.random.default_rng(SEED + 2).uniform(
        0.0, 1.0, size=(N_QUERIES, ROWS)
    )

    # Naive sequential: what a caller paid before the serving layer --
    # assemble and factorise the nodal network for every single query.
    g = xbar.conductance
    t0 = time.perf_counter()
    naive = np.stack([
        CrossbarNetwork(g, xbar.config.r_wire).read(q, xbar.config.v_read)
        for q in queries
    ])
    naive_s = time.perf_counter() - t0

    # Cached sequential: single-vector reads sharing one LU factor.
    xbar.read(queries[0], "nodal")  # warm the cache
    t0 = time.perf_counter()
    cached = np.stack([xbar.read(q, "nodal") for q in queries])
    cached_s = time.perf_counter() - t0

    # Batched: one multi-RHS solve for the whole workload.
    t0 = time.perf_counter()
    batched = xbar.read(queries, "nodal")
    batched_s = time.perf_counter() - t0

    # Bit-identical across all three paths, and fast.
    assert np.allclose(naive, cached, rtol=0, atol=1e-18)
    assert np.array_equal(cached, batched)
    speedup_naive = naive_s / batched_s
    speedup_cached = cached_s / batched_s
    assert speedup_naive >= 5.0, (
        f"batched read only {speedup_naive:.1f}x faster than naive "
        f"sequential (contract: >= 5x)"
    )

    # Scheduler smoke: 200 queries through the full serving stack.
    log = RunLog()
    engine = InferenceEngine(
        SingleArrayTarget(xbar), ir_mode="nodal", microbatch=64
    )
    smoke = np.random.default_rng(SEED + 3).uniform(
        0.0, 1.0, size=(SMOKE_QUERIES, ROWS)
    )
    t0 = time.perf_counter()
    with BatchScheduler(
        engine, max_batch=64, max_queue=SMOKE_QUERIES, log=log
    ) as scheduler:
        futures = [scheduler.submit(q) for q in smoke]
        for future in futures:
            future.result(timeout=60.0)
    smoke_s = time.perf_counter() - t0
    summary = log.serve_summary()
    assert summary["answered"] == SMOKE_QUERIES
    assert summary["dropped"] == 0
    assert summary["p99"] < 5.0  # seconds; generous CI headroom

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": ROWS,
        "cols": COLS,
        "queries": N_QUERIES,
        "cpu_count": os.cpu_count(),
        "naive_sequential_s": round(naive_s, 4),
        "cached_sequential_s": round(cached_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup_vs_naive": round(speedup_naive, 2),
        "speedup_vs_cached": round(speedup_cached, 2),
        "scheduler": {
            "queries": SMOKE_QUERIES,
            "wall_s": round(smoke_s, 4),
            "throughput_qps": round(SMOKE_QUERIES / smoke_s, 1),
            "mean_batch_size": round(summary["mean_batch_size"], 2),
            "p50_ms": round(summary["p50"] * 1e3, 3),
            "p95_ms": round(summary["p95"] * 1e3, 3),
            "p99_ms": round(summary["p99"] * 1e3, 3),
            "dropped": summary["dropped"],
        },
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== serving throughput (nodal reads, 96x10 crossbar) ===")
    print(f"naive sequential  {naive_s:8.3f}s")
    print(f"cached sequential {cached_s:8.3f}s")
    print(f"batched           {batched_s:8.3f}s "
          f"({speedup_naive:.1f}x vs naive, "
          f"{speedup_cached:.1f}x vs cached)")
    print(f"scheduler         {SMOKE_QUERIES} queries in {smoke_s:.3f}s, "
          f"p99 {entry['scheduler']['p99_ms']}ms, 0 dropped")
    print(f"trajectory        {BENCH_PATH}")
