"""Served pipelines: accuracy, recall and throughput under variation.

Programs two pipelines on a varied fabric (sigma = 0.3, real wire
resistance) and appends one entry to the ``BENCH_pipeline.json``
trajectory:

* **MLP classification** -- a 196 -> 24 -> 10 classifier served as a
  two-layer pipeline.  For each read model (ideal, fixed_point, nodal)
  the served accuracy, throughput, and offline bit-identity are
  recorded: the accuracy-vs-throughput curve the serving story trades
  along, with every point checked float for float against the offline
  :class:`~repro.nn.mlp.MLPOnCrossbars` deployment of the same
  restored hardware.
* **BSB recall** -- a 196x196 auto-associative layer recalling noisy
  prototype probes through the served phase-split loop.  The recall
  success rate under variation, mean iterations, and probe throughput
  are recorded, with the served states checked bit for bit against the
  offline :func:`~repro.nn.bsb.bsb_recall` hardware loop.

Throughput numbers are recorded unconditionally and never asserted --
wall-clock on a shared runner is not a contract -- but every
bit-identity check is.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.nn.bsb import bsb_recall, noisy_probe
from repro.nn.mlp import MLPOnCrossbars
from repro.pipeline import (
    PipelineConfig,
    PipelineService,
    offline_engine,
    program_pipeline,
)

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
)

IR_CURVE = ("ideal", "fixed_point", "nodal")
N_TEST = 48
FLIP_FRACTION = 0.15
PROBES_PER_PROTOTYPE = 6
SEED = 42


def run_mlp_curve() -> dict:
    config = PipelineConfig(
        kind="mlp", image_size=14, n_train=300, hidden=24, epochs=100,
        sigma=0.3, r_wire=2.5, tile_rows=49, seed=SEED,
        ir_mode="ideal", n_probes=8,
    )
    dataset = config.dataset()
    artifact = program_pipeline(config, dataset=dataset)
    x = dataset.x_test[:N_TEST]
    y = dataset.y_test[:N_TEST]
    weights = artifact.mlp_weights()
    reference = MLPOnCrossbars(
        weights,
        artifact.layers[0].build_tiled(),
        artifact.layers[1].build_tiled(),
        hidden_gain=artifact.hidden_gain,
    )
    curve = []
    for ir_mode in IR_CURVE:
        offline = offline_engine(artifact, ir_mode=ir_mode).forward(x)
        # Both deployments of the same snapshot agree float for float.
        assert np.array_equal(offline, reference.scores(x, ir_mode))
        with PipelineService(artifact, ir_mode=ir_mode) as service:
            service.predict(x[0], timeout=120.0)  # warm solver caches
            t0 = time.perf_counter()
            served = service.forward(x, timeout=120.0)
            elapsed = time.perf_counter() - t0
            assert np.array_equal(served, offline)
            assert service.status()["deadline_misses"] == 0
        curve.append({
            "ir_mode": ir_mode,
            "accuracy": float(
                np.mean(np.argmax(served, axis=1) == y)
            ),
            "queries_per_second": round(N_TEST / elapsed, 1),
            "bit_identical": True,
        })
    return {
        "config": {
            "image_size": config.image_size, "hidden": config.hidden,
            "sigma": config.sigma, "r_wire": config.r_wire,
            "tile_rows": config.tile_rows,
        },
        "n_test": N_TEST,
        "software_accuracy": weights.accuracy(x, y),
        "curve": curve,
    }


def run_bsb_recall() -> dict:
    config = PipelineConfig(
        kind="bsb", image_size=14, n_train=300, n_prototypes=4,
        sigma=0.3, r_wire=2.5, tile_rows=49, seed=SEED + 1,
        ir_mode="ideal",
    )
    artifact = program_pipeline(config, dataset=config.dataset())
    protos = artifact.prototypes
    rng = np.random.default_rng(SEED + 2)
    probes = np.stack([
        noisy_probe(p, FLIP_FRACTION, rng)
        for p in protos
        for _ in range(PROBES_PER_PROTOTYPE)
    ])
    sources = np.repeat(
        np.arange(protos.shape[0]), PROBES_PER_PROTOTYPE
    )

    # Offline reference: the bipolar hardware loop over the same tiles.
    tiled = artifact.layers[0].build_tiled()
    scale = artifact.scales[0]

    def hw_matvec(v):
        pos = tiled.matvec(np.clip(v, 0.0, 1.0), config.ir_mode)
        neg = tiled.matvec(np.clip(-v, 0.0, 1.0), config.ir_mode)
        return (pos - neg) * scale

    expected = [
        bsb_recall(p, artifact.bsb_dynamics(), matvec=hw_matvec)
        for p in probes
    ]
    with PipelineService(artifact) as service:
        service.predict(probes[0], timeout=120.0)
        t0 = time.perf_counter()
        futures = [service.submit(p) for p in probes]
        served = np.stack(
            [f.result(timeout=120.0) for f in futures]
        )
        elapsed = time.perf_counter() - t0
        recall_stats = service.engine.recall_stats()
    for got, ref in zip(served, expected):
        assert np.array_equal(got, ref.state)

    signs = np.sign(served)
    agreements = (signs[:, None, :] == protos[None, :, :]).mean(axis=2)
    own = agreements[np.arange(len(probes)), sources]
    hits = (own >= 0.95) & (own >= agreements.max(axis=1) - 1e-12)
    return {
        "config": {
            "image_size": config.image_size,
            "n_prototypes": config.n_prototypes,
            "sigma": config.sigma, "r_wire": config.r_wire,
            "tile_rows": config.tile_rows,
        },
        "n_probes": int(len(probes)),
        "flip_fraction": FLIP_FRACTION,
        "recall_success_rate": float(np.mean(hits)),
        "mean_iterations": round(recall_stats["mean_iterations"], 2),
        "probes_per_second": round(len(probes) / elapsed, 1),
        "bit_identical": True,
    }


def test_pipeline_throughput():
    mlp = run_mlp_curve()
    bsb = run_bsb_recall()
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "mlp": mlp,
        "bsb": bsb,
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(
                BENCH_PATH.read_text(encoding="utf-8")
            )
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== served pipelines (sigma=0.3, r_wire=2.5) ===")
    print(f"software accuracy  {mlp['software_accuracy']:.3f} "
          f"(n={mlp['n_test']})")
    for point in mlp["curve"]:
        print(f"mlp {point['ir_mode']:<12} acc {point['accuracy']:.3f}  "
              f"{point['queries_per_second']:8.1f} q/s  bit-identical")
    print(f"bsb recall rate    {bsb['recall_success_rate']:.3f} at "
          f"flip {bsb['flip_fraction']} "
          f"({bsb['probes_per_second']:.1f} probes/s, "
          f"mean {bsb['mean_iterations']} iters, bit-identical)")
    print(f"trajectory         {BENCH_PATH}")
