"""Fleet serving: sharded scatter-gather vs a single tiled engine.

Programs a 128-row layer as a 4-shard fleet (nodal IR reads, real wire
resistance), then measures four things and appends them as one entry
to the ``BENCH_fleet.json`` trajectory:

* **Exactness** -- the routed scatter-gather answer equals a single
  :class:`TiledPair` read of the reassembled layer, bit for bit.
* **Throughput** -- the same workload through the fleet (one scheduler
  thread per shard replica, each solving a 32-row tile) vs a single
  engine solving all four tiles sequentially.  The speedup is recorded
  unconditionally; the >= 2x contract is asserted only when the host
  has >= 2 CPUs *and* a thread-scaling probe shows the sparse solves
  actually run concurrently -- on a single-core runner the fleet
  cannot beat one worker, and a silent pass would be a lie.  Whatever
  is skipped is printed.
* **Availability** -- killing one replica of a 2-replica shard in the
  middle of the workload drops zero queries and leaves every answer
  still bit-identical.
* **Recovery** -- aging one replica past the drift threshold and
  running a rolling-reprogram cycle, recording wall-clock recovery
  time while the sibling keeps the shard live.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.devices.retention import RetentionConfig, age_pair
from repro.fleet import FleetConfig, FleetService, program_fleet
from repro.runtime.telemetry import RunLog
from repro.serve.engine import InferenceEngine
from repro.serve.health import DriftPolicy
from repro.serve.scheduler import BatchScheduler

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

ROWS, COLS = 128, 10
TILE_ROWS = 32  # -> 4 shards
N_QUERIES = 96
SEED = 42


def make_fleet():
    config = FleetConfig(
        n_rows=ROWS, cols=COLS, tile_rows=TILE_ROWS, sigma=0.3,
        r_wire=2.5, seed=SEED, ir_mode="nodal", n_probes=8,
    )
    w = np.random.default_rng(SEED).uniform(-1, 1, (ROWS, COLS))
    return config, program_fleet(config, w)


def solver_threads_scale() -> tuple[bool, float]:
    """Probe whether concurrent nodal solves actually overlap.

    Runs the same per-tile solve workload on one thread and then on two
    concurrent threads; if two threads finish the doubled workload in
    clearly less than twice the single-thread time, the solver releases
    the GIL and shard parallelism can pay off.
    """
    config, fleet = make_fleet()
    tiled = fleet.build_tiled()
    x = np.random.default_rng(SEED + 9).random((64, ROWS))

    def work():
        for _ in range(3):
            tiled.partial_matvec(x, "nodal")

    work()  # warm the LU caches
    t0 = time.perf_counter()
    work()
    serial_s = time.perf_counter() - t0

    threads = [threading.Thread(target=work) for _ in range(2)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    pair_s = time.perf_counter() - t0
    # Perfect scaling: pair_s == serial_s.  No scaling: pair_s == 2x.
    ratio = pair_s / serial_s
    return ratio < 1.5, ratio


def test_fleet_throughput():
    config, fleet = make_fleet()
    queries = np.random.default_rng(SEED + 1).random((N_QUERIES, ROWS))
    tiled = fleet.build_tiled()
    reference = tiled.matvec(queries, "nodal")

    # Single engine: one scheduler thread solving all 4 tiles per read.
    single_log = RunLog()
    engine = InferenceEngine(tiled, ir_mode="nodal", microbatch=64)
    with BatchScheduler(
        engine, max_batch=16, max_queue=N_QUERIES, log=single_log
    ) as sched:
        sched.predict(queries[0], timeout=60.0)  # warm the LU caches
        t0 = time.perf_counter()
        futures = [sched.submit(q) for q in queries]
        single = np.stack([f.result(timeout=60.0) for f in futures])
    single_s = time.perf_counter() - t0
    assert np.array_equal(single, reference)

    # Fleet: 4 shards x 2 replicas, each replica solving one 32-row
    # tile; partial currents gathered and reduced in shard order.
    with FleetService(
        fleet, replicas=2, max_batch=16, max_queue=N_QUERIES
    ) as service:
        service.predict(queries[0], timeout=60.0)  # warm every shard
        t0 = time.perf_counter()
        futures = [service.submit(q) for q in queries]
        gathered = np.stack([f.result(timeout=60.0) for f in futures])
        fleet_s = time.perf_counter() - t0
        assert np.array_equal(gathered, reference)

        # Availability: kill one replica of shard 0 mid-workload.
        futures = [service.submit(q) for q in queries]
        service.kill_replica(0, 0)
        survived = np.stack([f.result(timeout=60.0) for f in futures])
        assert np.array_equal(survived, reference)
        assert service.stats()["dropped"] == 0
        fleet_summary = service.stats()

    speedup = single_s / fleet_s
    scales, scale_ratio = solver_threads_scale()
    cpus = os.cpu_count() or 1
    if cpus >= 2 and scales:
        assert speedup >= 2.0, (
            f"fleet only {speedup:.2f}x a single engine on {cpus} CPUs "
            f"(contract: >= 2x at 4 shards)"
        )
        contract = "asserted"
    else:
        contract = (
            f"skipped (cpus={cpus}, thread-scaling ratio "
            f"{scale_ratio:.2f} -- solver parallelism unavailable)"
        )

    # Recovery: age one replica past threshold, roll it back in while
    # its sibling keeps the shard serving, and time the reprogram.
    recovery_log = RunLog()
    with FleetService(
        fleet, replicas=2, policy=DriftPolicy(threshold=0.05),
        log=recovery_log,
    ) as service:
        victim = service.groups[1].replicas[0]
        age_pair(
            victim.engine.target, 3e5,
            RetentionConfig(nu_median=0.05, nu_sigma=0.5),
            np.random.default_rng(SEED + 2),
        )
        assert victim.monitor.discrepancy() > 0.05
        events = service.run_recovery_cycle()
        assert [e.action for e in events] == ["reprogram"]
        recovery_s = events[0].seconds
        assert events[0].recovered_discrepancy == 0.0
        assert np.array_equal(
            service.forward(queries[:8]), reference[:8]
        )

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": ROWS,
        "cols": COLS,
        "tile_rows": TILE_ROWS,
        "n_shards": fleet.n_shards,
        "replicas": 2,
        "queries": N_QUERIES,
        "cpu_count": cpus,
        "single_engine_s": round(single_s, 4),
        "fleet_s": round(fleet_s, 4),
        "speedup": round(speedup, 2),
        "speedup_contract": contract,
        "thread_scaling_ratio": round(scale_ratio, 3),
        "kill_dropped": fleet_summary["dropped"],
        "recovery_s": round(recovery_s, 4),
        "fleet_p99_ms": round(fleet_summary["p99"] * 1e3, 3),
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== fleet serving (128x10 layer, 4 shards x 2 replicas, "
          "nodal reads) ===")
    print(f"single engine  {single_s:8.3f}s")
    print(f"fleet          {fleet_s:8.3f}s ({speedup:.2f}x, "
          f"contract {contract})")
    print(f"replica kill   0 of {N_QUERIES} queries dropped, "
          f"answers bit-identical")
    print(f"rolling reprogram recovered in {recovery_s:.4f}s "
          f"(sibling kept the shard live)")
    print(f"trajectory     {BENCH_PATH}")
