"""Fig. 9 bench: design redundancy vs test rate + headline comparison.

Paper shape: redundancy improves the test rate, more so at larger
variation; Vortex (even with p = 0) beats both conventional OLD and
CLD run under the same realistic hardware.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.experiments import run_fig9


def test_fig9_redundancy(benchmark, scale, image_size, r_wire):
    result = benchmark.pedantic(
        lambda: run_fig9(scale, image_size=image_size, r_wire=r_wire),
        rounds=1,
        iterations=1,
    )
    header = (
        f"{'sigma':>6s} {'OLD':>8s} {'CLD':>8s} | Vortex "
        + " ".join(f"p={int(p)}".rjust(8) for p in result.redundancy)
    )
    print_series(
        f"Fig. 9 - redundancy vs test rate (r_wire={r_wire})",
        header,
        (
            f"{s:6.1f} {o:8.3f} {c:8.3f} |        "
            + " ".join(f"{v:8.3f}" for v in row)
            for s, o, c, row in zip(
                result.sigmas, result.old_rate, result.cld_rate,
                result.vortex_rate,
            )
        ),
    )
    print(
        f"average Vortex gain: +{result.vortex_gain_over_old:.1f}pp vs "
        f"OLD, +{result.vortex_gain_over_cld:.1f}pp vs CLD"
    )
    print(
        "macro-area overhead per p: "
        + "  ".join(
            f"p={int(p)}:{100 * o:.1f}%"
            for p, o in zip(result.redundancy, result.area_overhead)
        )
    )
    # Shape: Vortex beats both baselines on average, and redundancy
    # does not hurt at the largest variation level (its positive effect
    # is within Monte-Carlo noise at the quick scale; see the
    # redundancy-with-defects ablation bench for the decisive version).
    assert result.vortex_gain_over_old > 0
    assert result.vortex_gain_over_cld > 0
    top = result.vortex_rate[-1]  # sigma = 0.8 row
    assert top[1:].max() >= top[0] - 0.03
