"""Ablation: crossbar tiling vs the Table 1 size tension.

Table 1 shows the paper's dilemma: bigger crossbars carry more image
features but longer bit lines.  The architectural resolution is
tiling -- split the 784-row layer across shorter tiles and sum
digitally.  This bench measures classifier accuracy through the full
read-path IR physics (fixed-point wire solve) as the tile height
shrinks, at fixed total feature count.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, VariationConfig
from repro.core.old import OLDConfig, train_old
from repro.experiments import get_dataset
from repro.nn.metrics import rate_from_scores
from repro.xbar.mapping import WeightScaler
from repro.xbar.tiling import TiledPair

TILE_FRACTIONS = (1, 2, 4)  # full layer, halves, quarters
SIGMA = 0.3


def _run(scale, image_size, r_wire):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    weights = train_old(ds.x_train, ds.y_train, 10,
                        OLDConfig(gdt=scale.gdt())).weights
    trials = max(2, scale.mc_trials)
    rows = []
    for fraction in TILE_FRACTIONS:
        tile_rows = int(np.ceil(n / fraction))
        rate = 0.0
        for seed in range(trials):
            tiled = TiledPair(
                WeightScaler(1.0),
                n_rows=n,
                cols=10,
                tile_rows=tile_rows,
                config=CrossbarConfig(rows=n, cols=10, r_wire=r_wire),
                variation=VariationConfig(sigma=SIGMA),
                rng=np.random.default_rng(7700 + seed),
                adc_bits=6,
            )
            tiled.program_weights(weights)
            tiled.calibrate_sense(ds.x_test[:128])
            scores = tiled.matvec(ds.x_test, "fixed_point")
            rate += rate_from_scores(scores, ds.y_test)
        rows.append((fraction, tile_rows, rate / trials))
    return rows


def test_ablation_tiling(benchmark, scale, image_size, r_wire):
    rows = benchmark.pedantic(
        lambda: _run(scale, image_size, r_wire), rounds=1, iterations=1
    )
    print_series(
        f"Ablation - tiling vs read-path IR-drop (sigma={SIGMA}, "
        f"r_wire={r_wire}, full wire physics)",
        f"{'tiles':>6s} {'rows/tile':>10s} {'test rate':>11s}",
        (f"{f:6d} {t:10d} {r:11.3f}" for f, t, r in rows),
    )
    # Shorter bit lines must not hurt, and the finest tiling must beat
    # the monolithic layer under real read-path wire physics.
    rates = [r for _, _, r in rows]
    assert rates[-1] > rates[0]
