"""Fig. 3 bench: IR-drop decomposition and its scaling with height.

Paper shape: the vertical-degradation skew d_max/d_min grows with the
crossbar height (beyond 2x for large all-LRS arrays) and, through the
switching nonlinearity, the effective CLD update-magnitude ratio
between the best- and worst-supplied cells reaches the 1/1000 scale.
"""

from __future__ import annotations

from conftest import print_series

from repro.experiments import run_fig3


def test_fig3_irdrop_decomposition(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(heights=(32, 64, 128, 256, 512)),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Fig. 3 - IR-drop decomposition (all-LRS, r_wire=2.5)",
        f"{'rows':>6s} {'d skew':>8s} {'update ratio':>14s} {'beta':>8s}",
        (
            f"{int(n):6d} {s:8.3f} {u:14.2e} {b:8.4f}"
            for n, s, u, b in zip(
                result.heights, result.d_skew, result.update_ratio,
                result.beta,
            )
        ),
    )
    print(f"ladder-vs-nodal max rel error: "
          f"{result.ladder_vs_nodal_error:.2e}")
    # Shape: skew grows with n, exceeds 2x for large arrays; the
    # update-magnitude ratio collapses to the paper's 1/1000 scale.
    assert (result.d_skew[1:] > result.d_skew[:-1]).all()
    assert result.d_skew[-1] > 2.0
    assert result.update_ratio[-1] < 1e-3
    assert result.ladder_vs_nodal_error < 0.02
