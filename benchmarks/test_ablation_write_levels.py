"""Ablation: multi-level-cell write resolution vs device variation.

The paper's device reference ([14], Lee et al.) is a *multi-level*
TaOx cell; real programming snaps to a finite number of conductance
levels.  This bench sweeps the per-device level count against the
variation sigma: at sizeable variation the lognormal landing error
dominates the quantisation error, so a handful of levels suffices --
an important deployment relief this library makes measurable.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

LEVELS = (4, 8, 16, 32, 0)  # 0 = continuous analog
SIGMAS = (0.0, 0.6)


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    weights = train_old(ds.x_train, ds.y_train, 10,
                        OLDConfig(gdt=scale.gdt())).weights
    trials = max(2, scale.mc_trials)
    grid = np.zeros((len(SIGMAS), len(LEVELS)))
    for si, sigma in enumerate(SIGMAS):
        spec = HardwareSpec(
            variation=VariationConfig(sigma=sigma),
            crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        )
        for li, levels in enumerate(LEVELS):
            scaler = WeightScaler(1.0, write_levels=levels)
            for seed in range(trials):
                pair = build_pair(
                    spec, scaler, np.random.default_rng(6600 + seed)
                )
                program_pair_open_loop(pair, weights)
                grid[si, li] += hardware_test_rate(
                    pair, ds.x_test, ds.y_test, "ideal"
                )
    grid /= trials
    return grid


def test_ablation_write_levels(benchmark, scale, image_size):
    grid = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    labels = [str(lv) if lv else "analog" for lv in LEVELS]
    print_series(
        "Ablation - write levels (MLC) vs variation",
        f"{'sigma':>6s} " + " ".join(f"{lb:>8s}" for lb in labels),
        (
            f"{s:6.1f} " + " ".join(f"{r:8.3f}" for r in row)
            for s, row in zip(SIGMAS, grid)
        ),
    )
    # Clean devices: 4 levels clearly limiting, analog best.  Noisy
    # devices: variation dominates, so moderate level counts already
    # sit within noise of analog.
    clean, noisy = grid[0], grid[1]
    assert clean[0] < clean[-1] - 0.02
    assert noisy[2] >= noisy[-1] - 0.03  # 16 levels ~ analog at sigma 0.6
    assert np.all(clean >= noisy - 0.02)