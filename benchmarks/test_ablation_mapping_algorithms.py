"""Ablation: greedy (Algorithm 1) vs optimal vs random row mapping.

The paper notes "other optimization algorithms can also be applied to
the mapping process".  This bench quantifies the greedy gap: total SWV
cost and hardware test rate for random placement, the paper's greedy
heuristic, and the Hungarian optimal assignment.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, SensingConfig, VariationConfig
from repro.core.amp import RowMapping
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.greedy import greedy_mapping, optimal_mapping
from repro.core.old import OLDConfig, program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.core.sensitivity import mapping_order
from repro.core.swv import swv_pair
from repro.core.vat import VATConfig, train_vat
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    extra = 24
    sigma = 0.8
    scaler = WeightScaler(1.0)
    weights = train_vat(
        ds.x_train, ds.y_train, 10,
        VATConfig(gamma=0.3, sigma=sigma, gdt=scale.gdt()),
    ).weights
    x_mean = ds.x_train.mean(axis=0)
    order = mapping_order(weights, x_mean)

    spec = HardwareSpec(
        variation=VariationConfig(sigma=sigma),
        crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
        sensing=SensingConfig(adc_bits=6),
    )
    methods = ("random", "greedy", "optimal")
    costs = {m: 0.0 for m in methods}
    rates = {m: 0.0 for m in methods}
    trials = max(2, scale.mc_trials)
    for trial in range(trials):
        rng = np.random.default_rng(7000 + trial)
        pair = build_pair(spec, scaler, rng, rows=n + extra)
        pretest = pretest_pair(pair, spec.sensing, rng=rng)
        swv = swv_pair(weights, pretest.theta_pos, pretest.theta_neg,
                       scaler)
        assignments = {
            "random": rng.permutation(n + extra)[:n],
            "greedy": greedy_mapping(swv, order),
            "optimal": optimal_mapping(swv),
        }
        for method, assignment in assignments.items():
            mapping = RowMapping(assignment=assignment,
                                 n_physical=n + extra)
            costs[method] += float(
                swv[np.arange(n), assignment].sum()
            )
            program_pair_open_loop(
                pair, mapping.weights_to_physical(weights), OLDConfig(),
            )
            rates[method] += hardware_test_rate(
                pair, ds.x_test, ds.y_test, "ideal",
                input_map=mapping.inputs_to_physical,
            )
    for m in methods:
        costs[m] /= trials
        rates[m] /= trials
    return methods, costs, rates


def test_ablation_mapping_algorithms(benchmark, scale, image_size):
    methods, costs, rates = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        "Ablation - mapping algorithm (sigma=0.8, 24 redundant rows)",
        f"{'method':>8s} {'total SWV':>12s} {'test rate':>11s}",
        (
            f"{m:>8s} {costs[m]:12.3f} {rates[m]:11.3f}"
            for m in methods
        ),
    )
    # Optimal <= greedy <= random on the SWV objective; both informed
    # mappings beat random placement on hardware.
    assert costs["optimal"] <= costs["greedy"] + 1e-9
    assert costs["greedy"] < costs["random"]
    assert rates["greedy"] > rates["random"]
    assert rates["optimal"] > rates["random"]
