"""Ablation: gamma-grid resolution in the self-tuning loop.

DESIGN.md decision 5: the Fig. 5 loop scans a discrete grid of gamma
candidates.  This bench compares coarse and fine grids on the achieved
deployed (injected) test rate and on tuning cost, quantifying how much
resolution the selection actually needs.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_series

from repro.core.self_tuning import SelfTuningConfig, injected_rate, tune_gamma
from repro.experiments import get_dataset

GRIDS = {
    "2-point": (0.0, 0.4),
    "4-point": (0.0, 0.2, 0.4, 0.8),
    "8-point": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0),
}


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    sigma = 0.8
    rng_eval = np.random.default_rng(123)
    thetas = rng_eval.standard_normal((8, ds.n_features, 10))
    results = {}
    for name, gammas in GRIDS.items():
        cfg = SelfTuningConfig(
            gammas=gammas, n_injections=scale.n_injections,
            gdt=scale.gdt(),
        )
        t0 = time.perf_counter()
        tuned = tune_gamma(
            ds.x_train, ds.y_train, 10, sigma, cfg,
            np.random.default_rng(5),
        )
        elapsed = time.perf_counter() - t0
        deployed = injected_rate(
            tuned.weights, ds.x_test, ds.y_test, sigma, 8,
            rng_eval, thetas=thetas,
        )
        results[name] = (tuned.best_gamma, deployed, elapsed)
    return results


def test_ablation_gamma_grid(benchmark, scale, image_size):
    results = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        "Ablation - gamma-grid resolution (sigma=0.8)",
        f"{'grid':>8s} {'chosen gamma':>13s} {'deployed rate':>14s} "
        f"{'tuning (s)':>11s}",
        (
            f"{name:>8s} {g:13.2f} {r:14.3f} {t:11.1f}"
            for name, (g, r, t) in results.items()
        ),
    )
    # Finer grids cost proportionally more and buy little (or can even
    # lose a little by overfitting the validation-injection noise):
    # the selection surface is flat near the peak (Fig. 4).
    assert results["8-point"][1] >= results["2-point"][1] - 0.06
    assert results["8-point"][2] > results["2-point"][2]
