"""Nodal solver throughput: lu vs schur vs cg, plus MC trial batching.

Two measurements, appended to a ``BENCH_nodal.json`` trajectory:

1. A solver size sweep -- the same batched read answered by the splu
   oracle, the Schur-complement banded factorisation, and the
   preconditioned conjugate-gradient path across square geometries --
   recording wall-clock and each fast solver's relative error against
   the oracle.
2. Monte-Carlo trial throughput in nodal mode on the Fig. 2 column
   workload: per-trial splu solves through ``map_trials`` versus the
   trial-stacked CG kernel (one nominal-state preconditioner shared by
   the whole chunk) through ``map_trials_batched``.  The stacked kernel
   must clear a 3x throughput floor; the check is skipped on single-CPU
   hosts where timing noise dominates, but accuracy against the
   per-trial oracle is asserted everywhere.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.bench_nodal import (
    DEFAULT_SIZES,
    NodalColumnConfig,
    nodal_trial_throughput,
    solver_size_sweep,
)
from repro.xbar.solvers import CG_CURRENT_RTOL, SCHUR_RTOL

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_nodal.json"

TRIALS = 128
SEED = 1234
# The trial-stacked nodal kernel amortises assembly, factorisation, and
# Python dispatch across the chunk; the floor is pure vectorisation, no
# parallelism, but single-CPU CI hosts are too noisy to enforce it.
STACKED_SPEEDUP_FLOOR = 3.0


def _workers_available() -> bool:
    """Whether worker processes can actually start on this platform."""
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


def test_nodal_throughput():
    if not _workers_available():
        pytest.skip("worker processes unavailable on this platform")

    sweep = solver_size_sweep(DEFAULT_SIZES, seed=SEED)
    throughput = nodal_trial_throughput(
        trials=TRIALS, seed=SEED, cfg=NodalColumnConfig()
    )

    # Accuracy contracts hold at every benchmarked size, not only the
    # geometries the unit tests pick.
    for row in sweep:
        assert row["schur"]["rel_error_vs_lu"] <= SCHUR_RTOL, row
        assert row["cg"]["rel_error_vs_lu"] <= CG_CURRENT_RTOL, row
    assert throughput["rel_error"] <= throughput["rel_error_budget"]

    speedup = throughput["speedup"]
    if (os.cpu_count() or 1) > 1:
        assert speedup >= STACKED_SPEEDUP_FLOOR, (
            f"stacked nodal kernel only {speedup:.2f}x over per-trial "
            f"splu; floor is {STACKED_SPEEDUP_FLOOR}x"
        )

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trials": TRIALS,
        "cpu_count": os.cpu_count(),
        "size_sweep": sweep,
        "mc_throughput": throughput,
    }
    trajectory = {"runs": []}
    if BENCH_PATH.exists():
        try:
            trajectory = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    trajectory.setdefault("runs", []).append(entry)
    BENCH_PATH.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    print()
    print("=== nodal solver size sweep (batched read) ===")
    print(f"{'size':>10} {'lu':>9} {'schur':>9} {'cg':>9} "
          f"{'schur err':>10} {'cg err':>10}")
    for row in sweep:
        print(f"{row['n']:>4}x{row['m']:<5} "
              f"{row['lu']['seconds']:>8.3f}s "
              f"{row['schur']['seconds']:>8.3f}s "
              f"{row['cg']['seconds']:>8.3f}s "
              f"{row['schur']['rel_error_vs_lu']:>10.2e} "
              f"{row['cg']['rel_error_vs_lu']:>10.2e}")
    print("=== MC nodal trial throughput (Fig. 2 column workload) ===")
    print(f"trials           {TRIALS}")
    print(f"per-trial splu   {throughput['baseline_s']:8.3f}s "
          f"({throughput['baseline_trials_per_s']} trials/s)")
    print(f"stacked cg       {throughput['stacked_s']:8.3f}s "
          f"({throughput['stacked_trials_per_s']} trials/s)")
    print(f"stacked speedup  {speedup}x")
    print(f"rel error        {throughput['rel_error']:.2e} "
          f"(budget {throughput['rel_error_budget']:.0e})")
    print(f"trajectory       {BENCH_PATH}")
