"""Ablation: retention drift and variation-aware refresh budgeting.

Drift is the time-dependent member of the device-imperfection family:
conductances relax toward HRS between refreshes, which acts on the
computation like extra variation accumulating over time.  This bench
tracks the test rate over idle time for (i) plain OLD weights and
(ii) VAT weights whose sigma budget was widened by the drift's
equivalent sigma at the refresh interval -- the natural extension of
the paper's "budget for what the devices will do" principle.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.config import CrossbarConfig, VariationConfig
from repro.core.base import HardwareSpec, build_pair, hardware_test_rate
from repro.core.old import OLDConfig, program_pair_open_loop, train_old
from repro.core.vat import VATConfig, train_vat
from repro.devices.retention import (
    RetentionConfig,
    age_pair,
    equivalent_sigma_at,
)
from repro.experiments import get_dataset
from repro.xbar.mapping import WeightScaler

IDLE_TIMES = (0.0, 1e4, 1e6, 1e8)
SIGMA_FAB = 0.3
RETENTION = RetentionConfig(nu_median=0.04, nu_sigma=0.8)


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    n = ds.n_features
    scaler = WeightScaler(1.0)
    old_w = train_old(ds.x_train, ds.y_train, 10,
                      OLDConfig(gdt=scale.gdt())).weights
    sigma_drift = equivalent_sigma_at(RETENTION, IDLE_TIMES[-1])
    sigma_budget = float(np.hypot(SIGMA_FAB, sigma_drift))
    vat_w = train_vat(
        ds.x_train, ds.y_train, 10,
        VATConfig(gamma=0.4, sigma=sigma_budget, gdt=scale.gdt()),
    ).weights
    spec = HardwareSpec(
        variation=VariationConfig(sigma=SIGMA_FAB),
        crossbar=CrossbarConfig(rows=n, cols=10, r_wire=0.0),
    )
    trials = max(2, scale.mc_trials)
    rows = []
    rates = {"old": np.zeros(len(IDLE_TIMES)),
             "vat": np.zeros(len(IDLE_TIMES))}
    for seed in range(trials):
        for name, w in (("old", old_w), ("vat", vat_w)):
            pair = build_pair(spec, scaler, np.random.default_rng(seed))
            program_pair_open_loop(pair, w)
            prev_t = 0.0
            for ti, t in enumerate(IDLE_TIMES):
                if t > prev_t:
                    age_pair(pair, t - prev_t, RETENTION,
                             np.random.default_rng(900 + seed))
                    prev_t = t
                rates[name][ti] += hardware_test_rate(
                    pair, ds.x_test, ds.y_test, "ideal"
                )
    for name in rates:
        rates[name] /= trials
    for ti, t in enumerate(IDLE_TIMES):
        rows.append((t, rates["old"][ti], rates["vat"][ti]))
    return rows, sigma_drift


def test_ablation_retention(benchmark, scale, image_size):
    rows, sigma_drift = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        "Ablation - retention drift vs test rate "
        f"(fab sigma={SIGMA_FAB}, drift-equivalent sigma at 1e8 s = "
        f"{sigma_drift:.2f})",
        f"{'idle (s)':>10s} {'OLD':>8s} {'VAT (drift budget)':>20s}",
        (f"{t:10.0e} {o:8.3f} {v:20.3f}" for t, o, v in rows),
    )
    old_rates = [o for _, o, _ in rows]
    vat_rates = [v for _, _, v in rows]
    # Drift erodes the fresh accuracy; the widened VAT budget holds up
    # better at the end of the refresh interval.
    assert old_rates[-1] < old_rates[0] - 0.02
    assert vat_rates[-1] >= old_rates[-1]
