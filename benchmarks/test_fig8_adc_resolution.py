"""Fig. 8 bench: ADC resolution vs test rate.

Paper shape: 4-5 bit converters significantly limit the test rate; the
curves saturate around 6 bits, after which extra resolution buys only
marginal robustness.  Curves at lower variation sit higher.
"""

from __future__ import annotations

from conftest import print_series

from repro.experiments import run_fig8


def test_fig8_adc_resolution(benchmark, scale, image_size):
    result = benchmark.pedantic(
        lambda: run_fig8(
            scale, sigmas=(0.4, 0.6, 0.8), image_size=image_size
        ),
        rounds=1,
        iterations=1,
    )
    header = f"{'sigma':>6s} " + " ".join(
        f"{int(b)}-bit".rjust(8) for b in result.bits
    )
    print_series(
        "Fig. 8 - ADC resolution vs test rate (VAT+AMP, no redundancy)",
        header,
        (
            f"{s:6.1f} " + " ".join(f"{r:8.3f}" for r in row)
            for s, row in zip(result.sigmas, result.test_rate)
        ),
    )
    print(f"saturation bits per sigma: {result.saturation_bits()}")
    # Shape: coarse ADCs hurt, 6 bits is within a whisker of the best,
    # and smaller sigma gives a higher curve.
    for row in result.test_rate:
        assert row[0] < row.max() - 0.01  # 4-bit clearly limited
        six_bit = row[list(result.bits).index(6)]
        assert six_bit >= row.max() - 0.04  # saturated by 6 bits
    assert result.test_rate[0].mean() > result.test_rate[-1].mean()
