"""Ablation: IR-drop model fidelity vs cost.

DESIGN.md calls out the model split: training loops use the paper's
cheap beta/D decomposition and the per-column reference-gain read
model, while the sparse nodal solver is the ground truth.  This bench
measures the accuracy and the runtime of each read model against the
nodal solve on a realistic trained crossbar.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_series

from repro.core.old import OLDConfig, train_old
from repro.experiments import get_dataset
from repro.xbar.ir_drop import read_column_gains, read_output_currents
from repro.xbar.mapping import WeightScaler
from repro.xbar.nodal import CrossbarNetwork


def _run(scale, image_size):
    ds = get_dataset(scale, image_size)
    weights = train_old(ds.x_train, ds.y_train, 10,
                        OLDConfig(gdt=scale.gdt())).weights
    scaler = WeightScaler.for_weights(weights)
    g_pos, _ = scaler.weights_to_pair(weights)
    r_wire = 2.5
    v_read = 1.0
    x = ds.x_test[:64]
    x_mean = ds.x_train.mean(axis=0)

    # Ground truth.
    network = CrossbarNetwork(g_pos, r_wire)
    t0 = time.perf_counter()
    exact = np.stack([network.read(row, v_read) for row in x])
    t_nodal = time.perf_counter() - t0

    results = {}
    t0 = time.perf_counter()
    ideal = v_read * (x @ g_pos)
    t_ideal = time.perf_counter() - t0
    results["ideal"] = (ideal, t_ideal)

    t0 = time.perf_counter()
    gains = read_column_gains(g_pos, x_mean, r_wire, v_read)
    reference = v_read * (x @ g_pos) * gains
    t_ref = time.perf_counter() - t0
    results["reference"] = (reference, t_ref)

    t0 = time.perf_counter()
    fixed_point = read_output_currents(g_pos, x, r_wire, v_read)
    t_fp = time.perf_counter() - t0
    results["fixed_point"] = (fixed_point, t_fp)

    errors = {
        name: float(np.max(np.abs(pred - exact) / np.abs(exact)))
        for name, (pred, _) in results.items()
    }
    times = {name: t for name, (_, t) in results.items()}
    times["nodal"] = t_nodal
    return errors, times


def test_ablation_ir_models(benchmark, scale, image_size):
    errors, times = benchmark.pedantic(
        lambda: _run(scale, image_size), rounds=1, iterations=1
    )
    print_series(
        "Ablation - read-model fidelity vs nodal ground truth "
        "(64 samples, r_wire=2.5)",
        f"{'model':>12s} {'max rel err':>13s} {'time (ms)':>11s}",
        (
            f"{name:>12s} {errors.get(name, 0.0):13.4f} "
            f"{1e3 * times[name]:11.2f}"
            for name in ("ideal", "reference", "fixed_point", "nodal")
        ),
    )
    # Both fast IR-aware models are far more faithful than ignoring
    # the wires, and far cheaper than the nodal ground truth.
    assert errors["reference"] < errors["ideal"] / 3
    assert errors["fixed_point"] < errors["ideal"] / 3
    assert times["reference"] < times["nodal"] / 10
    assert errors["fixed_point"] < 0.05
