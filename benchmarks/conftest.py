"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at the
``quick`` experiment scale (minutes total on a laptop) and prints the
same rows/series the paper reports, so the trends can be eyeballed
directly from the benchmark log.  Pass ``--paper-scale`` to run at the
paper's sample counts instead (much slower).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full sample counts",
    )


@pytest.fixture(scope="session")
def scale(request) -> ExperimentScale:
    """Experiment scale: quick by default, paper with --paper-scale."""
    if request.config.getoption("--paper-scale"):
        return ExperimentScale.paper()
    return ExperimentScale.quick()


@pytest.fixture(scope="session")
def image_size(request) -> int:
    """Benchmark resolution: 14x14 quick, the paper's 28x28 full."""
    if request.config.getoption("--paper-scale"):
        return 28
    return 14


@pytest.fixture(scope="session")
def r_wire(request) -> float:
    """Wire resistance matched to the benchmark resolution.

    IR-drop severity scales with ``r_wire * rows * mean_conductance``;
    the quick suite's 196-row crossbar uses 4x the paper's 2.5 Ohm so
    that it operates in the same IR regime as the paper's 784-row
    setup (which the --paper-scale runs use directly).
    """
    if request.config.getoption("--paper-scale"):
        return 2.5
    return 10.0


def print_series(title: str, header: str, rows) -> None:
    """Uniform table printing for the benchmark logs."""
    print()
    print(f"=== {title} ===")
    print(header)
    for row in rows:
        print(row)
