"""Fig. 2 bench: CLD vs OLD output discrepancy over device variation.

Paper shape: OLD's relative output error grows steadily with sigma
while CLD holds a small, flat error bounded by its sensing resolution.
"""

from __future__ import annotations

from conftest import print_series

from repro.experiments import run_fig2


def test_fig2_column_discrepancy(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig2(scale), rounds=1, iterations=1
    )
    print_series(
        "Fig. 2 - column training discrepancy "
        f"({result.n_trials}-run Monte Carlo)",
        f"{'sigma':>6s} {'OLD err':>10s} {'CLD err':>10s}",
        (
            f"{s:6.1f} {o:10.4f} {c:10.4f}"
            for s, o, c in result.rows()
        ),
    )
    # Shape assertions: OLD grows, CLD stays flat and small.
    assert result.old_discrepancy[-1] > 5 * max(
        result.cld_discrepancy[-1], 1e-3
    )
    assert result.old_discrepancy[-1] > result.old_discrepancy[0]
    assert result.cld_discrepancy.max() < 0.05
