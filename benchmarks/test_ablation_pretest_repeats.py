"""Ablation: pre-test sense repeats vs variation-estimate quality.

DESIGN.md decision 3: AMP works because *parametric* variation is
persistent while *switching* (cycle-to-cycle) variation averages out
under repeated program-and-sense.  This bench sweeps the repeat count
and reports the theta-estimation error and the downstream mapping
quality.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series

from repro.circuits.adc import ADC
from repro.config import DeviceConfig, VariationConfig
from repro.core.pretest import pretest_array
from repro.devices.memristor import MemristorArray

REPEATS = (1, 2, 4, 8, 16)


def _run():
    device = DeviceConfig()
    adc = ADC(8, device.g_on)
    errors = {}
    for repeats in REPEATS:
        errs = []
        for seed in range(4):
            array = MemristorArray(
                (64, 10),
                device=device,
                variation=VariationConfig(sigma=0.5, sigma_cycle=0.15),
                rng=np.random.default_rng(seed),
            )
            theta_hat = pretest_array(array, adc, repeats=repeats)
            bulk = np.abs(array.theta) < 1.0
            errs.append(float(np.mean(
                np.abs(theta_hat[bulk] - array.theta[bulk])
            )))
        errors[repeats] = float(np.mean(errs))
    return errors


def test_ablation_pretest_repeats(benchmark):
    errors = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_series(
        "Ablation - pre-test repeats vs theta estimation error "
        "(sigma=0.5, sigma_cycle=0.15, 8-bit ADC)",
        f"{'repeats':>8s} {'mean |theta err|':>18s}",
        (f"{r:8d} {errors[r]:18.4f}" for r in REPEATS),
    )
    # Averaging monotonically suppresses cycle noise; one sense is
    # clearly worse than many.
    assert errors[1] > errors[16]
    assert errors[2] >= errors[8] - 1e-3
