"""Chi-square bound on the variation-vector norm (Eq. 7-8 of the paper).

VAT bounds the "penalty of variations" via Cauchy-Schwarz:
``sum_q x_q w_q theta_q <= ||theta||_2 * ||x (.) w||_2``.  With
``theta_q ~ N(0, sigma^2)`` i.i.d., ``||theta||_2^2 / sigma^2`` follows
a chi-square distribution with ``n`` degrees of freedom, so at a chosen
confidence level ``c`` the norm is bounded by

    rho = sigma * sqrt(chi2_ppf(c, n)).

This module computes ``rho`` and its companions.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["rho_bound", "norm_exceedance_probability", "expected_theta_norm"]


def rho_bound(sigma: float, n: int, confidence: float = 0.95) -> float:
    """Confidence bound ``rho`` on ``||theta||_2``.

    Args:
        sigma: Standard deviation of each ``theta_q``.
        n: Vector dimension (crossbar rows), the chi-square degrees of
            freedom.
        confidence: Probability with which ``||theta||_2 <= rho``.

    Returns:
        The bound ``rho`` (0 when ``sigma`` is 0).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if sigma == 0:
        return 0.0
    return float(sigma * np.sqrt(stats.chi2.ppf(confidence, df=n)))


def norm_exceedance_probability(rho: float, sigma: float, n: int) -> float:
    """Probability that ``||theta||_2`` exceeds a given ``rho``."""
    if sigma <= 0:
        return 0.0 if rho >= 0 else 1.0
    return float(stats.chi2.sf((rho / sigma) ** 2, df=n))


def expected_theta_norm(sigma: float, n: int) -> float:
    """Mean of ``||theta||_2`` (chi distribution mean, scaled)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # E[chi_n] = sqrt(2) * Gamma((n+1)/2) / Gamma(n/2); evaluate in
    # log space to stay finite for large n.
    from scipy.special import gammaln

    log_mean = 0.5 * np.log(2.0) + gammaln((n + 1) / 2.0) - gammaln(n / 2.0)
    return float(sigma * np.exp(log_mean))
