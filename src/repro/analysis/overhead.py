"""Design-overhead models: area and energy of a crossbar deployment.

The paper's Fig. 9 trades *overhead* (redundant rows) against test
rate.  This module quantifies that overhead with simple first-order
models so the trade-off can be reported in physical units rather than
row counts:

* **Area** -- cross-point cells at 4F^2 each (selectorless crossbar),
  plus per-column sense/ADC area and per-row driver area.
* **Read energy** -- resistive dissipation of one vector-matrix
  multiply plus per-conversion ADC energy.
* **Programming energy** -- dissipation of a pulse plan (V^2 * g * t
  summed over cells), the cost of (re)deploying weights.

Defaults are typical published numbers for nanoscale RRAM arrays; all
are parameters, and only *ratios* between design points are meaningful
for the reproduction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import CrossbarConfig, DeviceConfig

__all__ = ["CostModel", "AreaEstimate", "EnergyEstimate"]


@dataclasses.dataclass(frozen=True)
class AreaEstimate:
    """Area breakdown of a crossbar macro, in um^2.

    Attributes:
        cells: Cross-point array area.
        drivers: Word-line driver area.
        sensing: Column sense + ADC area.
        total: Sum of the above.
    """

    cells: float
    drivers: float
    sensing: float

    @property
    def total(self) -> float:
        return self.cells + self.drivers + self.sensing


@dataclasses.dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one operation, in Joule.

    Attributes:
        array: Resistive dissipation inside the crossbar.
        conversion: ADC conversion energy.
        total: Sum of the above.
    """

    array: float
    conversion: float

    @property
    def total(self) -> float:
        return self.array + self.conversion


@dataclasses.dataclass(frozen=True)
class CostModel:
    """First-order area/energy model of a differential crossbar macro.

    Attributes:
        feature_nm: Technology feature size F in nanometres.
        cell_area_f2: Cross-point cell area in F^2 (4 for a
            selectorless crossbar).
        driver_area_um2: Word-line driver area per row.
        adc_area_um2_per_bit: ADC area per bit of resolution per
            column.
        adc_energy_pj_per_conv: ADC energy per conversion (pJ),
            scaled linearly with resolution bits.
        read_pulse_s: Duration of one read operation.
    """

    feature_nm: float = 45.0
    cell_area_f2: float = 4.0
    driver_area_um2: float = 1.5
    adc_area_um2_per_bit: float = 500.0
    adc_energy_pj_per_conv: float = 2.0
    read_pulse_s: float = 10e-9

    # ------------------------------------------------------------------
    def area(
        self, crossbar: CrossbarConfig, adc_bits: int, rows: int | None = None
    ) -> AreaEstimate:
        """Macro area of a differential pair.

        Args:
            crossbar: Geometry (columns; rows overridable).
            adc_bits: Sense resolution (one shared converter per
                column pair, as in the paper's setup).
            rows: Physical row count override (logical + redundant).
        """
        n = rows if rows is not None else crossbar.rows
        m = crossbar.cols
        if n < 1 or m < 1 or adc_bits < 1:
            raise ValueError("rows, cols and adc_bits must be positive")
        f_um = self.feature_nm * 1e-3
        cell = self.cell_area_f2 * f_um * f_um
        cells = 2 * n * m * cell  # differential pair: two arrays
        drivers = 2 * n * self.driver_area_um2
        sensing = m * adc_bits * self.adc_area_um2_per_bit
        return AreaEstimate(cells=cells, drivers=drivers, sensing=sensing)

    def area_overhead(
        self, crossbar: CrossbarConfig, adc_bits: int, extra_rows: int
    ) -> float:
        """Fractional macro-area overhead of ``extra_rows`` redundancy."""
        if extra_rows < 0:
            raise ValueError("extra_rows must be >= 0")
        base = self.area(crossbar, adc_bits).total
        redundant = self.area(
            crossbar, adc_bits, rows=crossbar.rows + extra_rows
        ).total
        return redundant / base - 1.0

    # ------------------------------------------------------------------
    def read_energy(
        self,
        conductance_pair: tuple[np.ndarray, np.ndarray],
        x: np.ndarray,
        crossbar: CrossbarConfig,
        adc_bits: int,
    ) -> EnergyEstimate:
        """Energy of one inference read (averaged over a batch).

        Array dissipation is ``sum_ij (x_i * v_read)^2 * g_ij`` over
        both arrays for the read duration; each column performs one
        conversion.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        v = crossbar.v_read
        power = 0.0
        for g in conductance_pair:
            g = np.asarray(g, dtype=float)
            if g.shape[0] != x.shape[1]:
                raise ValueError(
                    f"input width {x.shape[1]} != rows {g.shape[0]}"
                )
            # mean over batch of sum_ij (x_i v)^2 g_ij
            power += float(np.mean((x * v) ** 2 @ g.sum(axis=1)))
        array_energy = power * self.read_pulse_s
        conversion = (
            crossbar.cols * adc_bits * self.adc_energy_pj_per_conv * 1e-12
        )
        return EnergyEstimate(array=array_energy, conversion=conversion)

    def programming_energy(
        self,
        widths: np.ndarray,
        voltages: np.ndarray,
        conductance: np.ndarray,
        device: DeviceConfig | None = None,
    ) -> float:
        """Dissipation of a pulse plan, in Joule.

        Uses the final conductances as the (upper-bound) load during
        each pulse: ``E = sum_ij V_ij^2 * g_ij * t_ij``.
        """
        widths = np.asarray(widths, dtype=float)
        voltages = np.asarray(voltages, dtype=float)
        conductance = np.asarray(conductance, dtype=float)
        if not (widths.shape == voltages.shape == conductance.shape):
            raise ValueError("widths, voltages, conductance shapes differ")
        if np.any(widths < 0):
            raise ValueError("pulse widths must be non-negative")
        return float(np.sum(voltages**2 * conductance * widths))
