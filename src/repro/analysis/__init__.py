"""Statistical analysis substrate: Monte Carlo, chi-square bound, fits."""

from repro.analysis.chi2 import (
    expected_theta_norm,
    norm_exceedance_probability,
    rho_bound,
)
from repro.analysis.lognormal import (
    LognormalFit,
    fit_lognormal_multipliers,
    ks_lognormal,
)
from repro.analysis.overhead import AreaEstimate, CostModel, EnergyEstimate
from repro.analysis.montecarlo import (
    MonteCarloSummary,
    child_rngs,
    run_monte_carlo,
    summarize_values,
)
from repro.analysis.stats import (
    mean_absolute_deviation,
    relative_discrepancy,
    summarize_array,
)

__all__ = [
    "AreaEstimate",
    "CostModel",
    "EnergyEstimate",
    "LognormalFit",
    "MonteCarloSummary",
    "child_rngs",
    "expected_theta_norm",
    "fit_lognormal_multipliers",
    "ks_lognormal",
    "mean_absolute_deviation",
    "norm_exceedance_probability",
    "relative_discrepancy",
    "rho_bound",
    "run_monte_carlo",
    "summarize_array",
    "summarize_values",
]
