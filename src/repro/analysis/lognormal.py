"""Lognormal distribution fitting and batched variation sampling.

The AMP pre-test programs every device to a reference state and senses
the achieved resistance; "the obtained distribution should follow
lognormal distribution" (Section 4.2.1).  Fitting the measured
multipliers recovers the crossbar's effective ``sigma``, which the
integrated Vortex flow feeds back into VAT's self-tuning (Section 4.3).

Beyond fitting, this module hosts the *stacked* samplers used by the
trial-batched Monte-Carlo kernels
(:func:`repro.runtime.executor.map_trials_batched`): given the list of
per-trial child generators of a chunk, they draw each trial's
variation tensor from its own stream -- in exactly the order the
scalar device model would -- and stack the results into one
``(T,) + shape`` array.  Stream identity per trial is the load-bearing
property: it is what keeps a vectorised kernel bit-identical to the
looped trial it replaces.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import stats

from repro.backend import ArrayBackend, resolve_backend
from repro.devices.variation import (
    lognormal_multipliers,
    sample_standard_thetas,
)

__all__ = [
    "LognormalFit",
    "fit_lognormal_multipliers",
    "ks_lognormal",
    "stacked_standard_thetas",
    "stacked_parametric_thetas",
    "stacked_cycle_multipliers",
]


@dataclasses.dataclass(frozen=True)
class LognormalFit:
    """Maximum-likelihood fit of ``value = exp(theta)``, theta ~ N(mu, s^2).

    Attributes:
        mu: Mean of the underlying normal.
        sigma: Standard deviation of the underlying normal.
        n: Sample count.
    """

    mu: float
    sigma: float
    n: int


def fit_lognormal_multipliers(multipliers: np.ndarray) -> LognormalFit:
    """Fit lognormal parameters to positive multiplier samples.

    Args:
        multipliers: Measured ``g_actual / g_target`` ratios (> 0).

    Returns:
        The MLE :class:`LognormalFit` (``sigma`` uses ddof=1).
    """
    values = np.asarray(multipliers, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("need at least 2 samples to fit")
    if np.any(values <= 0):
        raise ValueError("multipliers must be strictly positive")
    theta = np.log(values)
    return LognormalFit(
        mu=float(theta.mean()),
        sigma=float(theta.std(ddof=1)),
        n=values.size,
    )


def ks_lognormal(multipliers: np.ndarray, fit: LognormalFit) -> float:
    """Kolmogorov-Smirnov p-value of samples against a fitted lognormal.

    A large p-value means the pre-test distribution is consistent with
    the lognormal model the paper assumes.
    """
    values = np.asarray(multipliers, dtype=float).ravel()
    if np.any(values <= 0):
        raise ValueError("multipliers must be strictly positive")
    result = stats.kstest(
        np.log(values), "norm", args=(fit.mu, fit.sigma)
    )
    return float(result.pvalue)


def stacked_standard_thetas(
    rngs: Sequence[np.random.Generator],
    distribution: str,
    shape: tuple[int, ...],
    xp: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Per-trial unit-std theta draws, stacked to ``(T,) + shape``.

    Trial ``t`` of the result is *exactly*
    ``sample_standard_thetas(rngs[t], distribution, shape)`` -- each
    generator advances precisely as it would in the scalar trial, so a
    batched kernel built on this stack reproduces the looped path
    bit-for-bit.  ``xp`` selects the array namespace of the *stacked*
    result; the draws themselves always come from the numpy generators
    (stream identity across backends, see :mod:`repro.backend`).
    """
    bk = resolve_backend(xp)
    return bk.stack([
        bk.asarray(sample_standard_thetas(rng, distribution, shape))
        for rng in rngs
    ])


def stacked_parametric_thetas(
    rngs: Sequence[np.random.Generator],
    sigma: float,
    distribution: str,
    shape: tuple[int, ...],
    xp: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Per-trial persistent device thetas, stacked to ``(T,) + shape``.

    Mirrors ``VariationModel.sample_parametric_theta`` per trial,
    including its ``sigma == 0`` short-circuit (zeros, *no* stream
    advance) -- the batched and scalar paths must consume identical
    numbers of draws from every generator.
    """
    bk = resolve_backend(xp)
    if sigma == 0:
        return bk.zeros((len(rngs),) + shape)
    return sigma * stacked_standard_thetas(rngs, distribution, shape, xp=bk)


def stacked_cycle_multipliers(
    rngs: Sequence[np.random.Generator],
    sigma_cycle: float,
    shape: tuple[int, ...],
    xp: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Per-trial cycle-to-cycle multipliers, stacked to ``(T,) + shape``.

    Trial ``t`` equals ``lognormal_multipliers(rngs[t], sigma_cycle,
    shape)``; ``sigma_cycle == 0`` returns ones without advancing any
    stream, matching the scalar model.
    """
    bk = resolve_backend(xp)
    if sigma_cycle == 0:
        return bk.ones((len(rngs),) + shape)
    return bk.stack([
        bk.asarray(lognormal_multipliers(rng, sigma_cycle, shape))
        for rng in rngs
    ])
