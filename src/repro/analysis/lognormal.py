"""Lognormal distribution fitting for pre-test measurements.

The AMP pre-test programs every device to a reference state and senses
the achieved resistance; "the obtained distribution should follow
lognormal distribution" (Section 4.2.1).  Fitting the measured
multipliers recovers the crossbar's effective ``sigma``, which the
integrated Vortex flow feeds back into VAT's self-tuning (Section 4.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

__all__ = ["LognormalFit", "fit_lognormal_multipliers", "ks_lognormal"]


@dataclasses.dataclass(frozen=True)
class LognormalFit:
    """Maximum-likelihood fit of ``value = exp(theta)``, theta ~ N(mu, s^2).

    Attributes:
        mu: Mean of the underlying normal.
        sigma: Standard deviation of the underlying normal.
        n: Sample count.
    """

    mu: float
    sigma: float
    n: int


def fit_lognormal_multipliers(multipliers: np.ndarray) -> LognormalFit:
    """Fit lognormal parameters to positive multiplier samples.

    Args:
        multipliers: Measured ``g_actual / g_target`` ratios (> 0).

    Returns:
        The MLE :class:`LognormalFit` (``sigma`` uses ddof=1).
    """
    values = np.asarray(multipliers, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("need at least 2 samples to fit")
    if np.any(values <= 0):
        raise ValueError("multipliers must be strictly positive")
    theta = np.log(values)
    return LognormalFit(
        mu=float(theta.mean()),
        sigma=float(theta.std(ddof=1)),
        n=values.size,
    )


def ks_lognormal(multipliers: np.ndarray, fit: LognormalFit) -> float:
    """Kolmogorov-Smirnov p-value of samples against a fitted lognormal.

    A large p-value means the pre-test distribution is consistent with
    the lognormal model the paper assumes.
    """
    values = np.asarray(multipliers, dtype=float).ravel()
    if np.any(values <= 0):
        raise ValueError("multipliers must be strictly positive")
    result = stats.kstest(
        np.log(values), "norm", args=(fit.mu, fit.sigma)
    )
    return float(result.pvalue)
