"""Monte-Carlo harness for variation studies.

Every robustness number in the paper is a Monte-Carlo average over
fabrication draws (e.g. the 1000-run column study of Fig. 2).  The
harness centralises seeding -- each trial gets an independent child
generator spawned from one seed sequence -- and summary statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

__all__ = ["MonteCarloSummary", "run_monte_carlo", "child_rngs"]


@dataclasses.dataclass
class MonteCarloSummary:
    """Summary statistics of a Monte-Carlo run.

    Attributes:
        values: Raw per-trial values, shape ``(trials,) + value_shape``.
        mean: Mean over trials.
        std: Standard deviation over trials (ddof=1 when trials > 1).
        percentile_5: 5th percentile over trials.
        percentile_95: 95th percentile over trials.
    """

    values: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    percentile_5: np.ndarray
    percentile_95: np.ndarray

    @property
    def n_trials(self) -> int:
        return self.values.shape[0]


def child_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent child generators from one master seed."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def run_monte_carlo(
    trial: Callable[[np.random.Generator], float | Sequence[float] | np.ndarray],
    trials: int,
    seed: int = 0,
) -> MonteCarloSummary:
    """Run a trial function over independent random draws.

    Args:
        trial: Callable receiving a dedicated generator and returning a
            scalar or array statistic (consistent shape across trials).
        trials: Number of independent repetitions.
        seed: Master seed; the same seed reproduces every trial.

    Returns:
        A :class:`MonteCarloSummary` of the collected statistics.
    """
    rngs = child_rngs(seed, trials)
    values = np.asarray([np.asarray(trial(rng), dtype=float) for rng in rngs])
    ddof = 1 if trials > 1 else 0
    return MonteCarloSummary(
        values=values,
        mean=values.mean(axis=0),
        std=values.std(axis=0, ddof=ddof),
        percentile_5=np.percentile(values, 5, axis=0),
        percentile_95=np.percentile(values, 95, axis=0),
    )
