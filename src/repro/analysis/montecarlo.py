"""Monte-Carlo harness for variation studies.

Every robustness number in the paper is a Monte-Carlo average over
fabrication draws (e.g. the 1000-run column study of Fig. 2).  The
harness centralises seeding -- each trial gets an independent child
generator spawned from one seed sequence -- and summary statistics.

Execution is delegated to :mod:`repro.runtime.executor`: trials fan
out over worker processes in deterministic chunks, generators are
spawned lazily per chunk (memory stays flat at large trial counts),
and the worker count can never change a result -- ``jobs=1`` and
``jobs=8`` return bit-identical :class:`MonteCarloSummary` values.
When a ``cache_config`` is supplied and the ambient runtime has a
cache directory, the raw value array is persisted under a stable hash
of (trial config, seed, trial count, package version) and re-runs are
pure reads.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.cache import get_cache
from repro.runtime.executor import map_trials, map_trials_batched
from repro.runtime.telemetry import current_run_log

__all__ = [
    "MonteCarloSummary",
    "run_monte_carlo",
    "summarize_values",
    "child_rngs",
]


@dataclasses.dataclass(frozen=True)
class MonteCarloSummary:
    """Summary statistics of a Monte-Carlo run.

    Attributes:
        values: Raw per-trial values, shape ``(trials,) + value_shape``.
        mean: Mean over trials.
        std: Standard deviation over trials (ddof=1 when trials > 1).
        percentile_5: 5th percentile over trials.
        percentile_95: 95th percentile over trials.
    """

    values: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    percentile_5: np.ndarray
    percentile_95: np.ndarray

    @property
    def n_trials(self) -> int:
        return self.values.shape[0]


def child_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent child generators from one master seed."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def summarize_values(values: np.ndarray) -> MonteCarloSummary:
    """Build the summary statistics from a stacked value array."""
    trials = values.shape[0]
    ddof = 1 if trials > 1 else 0
    return MonteCarloSummary(
        values=values,
        mean=values.mean(axis=0),
        std=values.std(axis=0, ddof=ddof),
        percentile_5=np.percentile(values, 5, axis=0),
        percentile_95=np.percentile(values, 95, axis=0),
    )


def run_monte_carlo(
    trial: Callable[[np.random.Generator], float | Sequence[float] | np.ndarray],
    trials: int,
    seed: int = 0,
    jobs: int | None = None,
    cache_config: Any = None,
    label: str = "montecarlo",
    batch_trial: Callable[
        [Sequence[np.random.Generator]], np.ndarray
    ] | None = None,
) -> MonteCarloSummary:
    """Run a trial function over independent random draws.

    Args:
        trial: Callable receiving a dedicated generator and returning a
            scalar or array statistic (consistent shape across trials).
            Module-level functions (or ``functools.partial`` of them)
            additionally unlock process-pool fan-out; closures run
            serially.
        trials: Number of independent repetitions (must be >= 1).
        seed: Master seed; the same seed reproduces every trial
            bit-for-bit at any worker count.
        jobs: Worker processes; ``None`` reads the ambient
            :class:`~repro.runtime.config.RuntimeConfig` (serial by
            default), ``0`` means one per CPU.
        cache_config: When given (typically a frozen dataclass fully
            describing the trial), the value array is cached under a
            stable hash of (cache_config, seed, trials, version) in the
            ambient artifact cache, and matching re-runs skip the
            computation entirely.
        label: Telemetry label for the run log.
        batch_trial: Optional vectorised kernel that evaluates a whole
            chunk of per-trial generators at once (see
            :func:`repro.runtime.executor.map_trials_batched`).  It
            must be bit-identical to looping ``trial`` -- same draws
            from the same streams, fixed-accumulation math -- so it is
            purely an execution strategy: the cache key, the summary
            and every value stay exactly those of the looped path.

    Returns:
        A :class:`MonteCarloSummary` of the collected statistics.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    cache = get_cache() if cache_config is not None else None
    key = ""
    if cache is not None:
        key = cache.make_key(
            "montecarlo",
            {"config": cache_config, "seed": seed, "trials": trials},
        )
        t0 = time.perf_counter()
        stored = cache.get_arrays(key)
        if stored is not None:
            log = current_run_log()
            if log is not None:
                log.record_batch(
                    label, 0, time.perf_counter() - t0, 1, cache_hit=True
                )
            return summarize_values(stored["values"])
    if batch_trial is not None:
        values = map_trials_batched(
            batch_trial, trials, seed=seed, jobs=jobs, label=label
        )
    else:
        values = map_trials(trial, trials, seed=seed, jobs=jobs, label=label)
    if cache is not None:
        cache.put_arrays(key, values=values)
    return summarize_values(values)
