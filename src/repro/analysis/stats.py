"""Small statistical helpers shared by the experiment drivers."""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_discrepancy",
    "mean_absolute_deviation",
    "summarize_array",
]


def relative_discrepancy(actual: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Element-wise ``|actual - target| / |target|``.

    The Fig. 2 metric: the discrepancy between the trained crossbar
    output and the target output, normalised by the target.
    """
    actual = np.asarray(actual, dtype=float)
    target = np.asarray(target, dtype=float)
    if np.any(target == 0):
        raise ValueError("target must be non-zero for relative discrepancy")
    return np.abs(actual - target) / np.abs(target)


def mean_absolute_deviation(values: np.ndarray) -> float:
    """Mean absolute deviation from the mean."""
    values = np.asarray(values, dtype=float)
    return float(np.mean(np.abs(values - values.mean())))


def summarize_array(values: np.ndarray) -> dict[str, float]:
    """Mean / std / min / max / median of an array, as floats."""
    values = np.asarray(values, dtype=float)
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "max": float(values.max()),
        "median": float(np.median(values)),
    }
