"""Retention drift: conductance relaxation after programming.

Programmed memristor conductances are not permanent: the filamentary
state relaxes over time, conventionally modelled as a power law
(``g`` drifting toward HRS with a per-device drift exponent ``nu``).
The paper folds all device imperfections into its variation model;
retention is the *time-dependent* member of that family, and VAT's
penalty budget extends to it naturally -- drift looks like extra
effective variation accumulated between refreshes.

Model: a device programmed to ``g_prog`` at time 0 reads at time ``t``

    g(t) = g_off + (g_prog - g_off) * (1 + t / t0) ** (-nu)

with ``nu`` a persistent, per-device lognormal-ish positive exponent.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.memristor import MemristorArray
from repro.seeding import ensure_rng
from repro.xbar.pair import DifferentialCrossbar

__all__ = [
    "RetentionConfig",
    "sample_drift_exponents",
    "drift_factor",
    "age_array",
    "age_pair",
    "equivalent_sigma_at",
]


@dataclasses.dataclass(frozen=True)
class RetentionConfig:
    """Power-law drift parameters.

    Attributes:
        nu_median: Median per-device drift exponent.
        nu_sigma: Lognormal spread of the exponent across devices.
        t0: Drift onset time constant in seconds.
    """

    nu_median: float = 0.02
    nu_sigma: float = 0.5
    t0: float = 1.0


def sample_drift_exponents(
    config: RetentionConfig,
    shape: tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Persistent per-device drift exponents (positive, lognormal)."""
    if config.nu_median < 0:
        raise ValueError("nu_median must be >= 0")
    if config.nu_median == 0:
        return np.zeros(shape)
    return config.nu_median * np.exp(
        rng.normal(0.0, config.nu_sigma, size=shape)
    )


def drift_factor(
    nu: np.ndarray | float, elapsed: float, t0: float
) -> np.ndarray:
    """Fractional remaining programmed window after ``elapsed`` seconds."""
    if elapsed < 0:
        raise ValueError("elapsed must be >= 0")
    if t0 <= 0:
        raise ValueError("t0 must be > 0")
    return (1.0 + elapsed / t0) ** (-np.asarray(nu, dtype=float))


def age_array(
    array: MemristorArray,
    elapsed: float,
    config: RetentionConfig,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Relax an array's conductances by ``elapsed`` seconds of drift.

    The per-device exponents are sampled once (first call) and cached
    on the array, so repeated aging is consistent: two 100 s steps
    equal one 200 s step for the same device.

    Args:
        array: Fabricated device array (mutated in place).
        elapsed: Additional idle time in seconds.
        config: Drift parameters.
        rng: Randomness for the one-time exponent draw.

    Returns:
        The conductance array after aging.
    """
    nu = getattr(array, "_retention_nu", None)
    if nu is None:
        rng = ensure_rng(rng, "repro.devices.retention.age_array")
        nu = sample_drift_exponents(config, array.shape, rng)
        array._retention_nu = nu  # cached: exponents are persistent
        array._retention_age = 0.0
    t1 = array._retention_age
    t2 = t1 + elapsed
    d = array.device
    g = array.conductance
    window = g - d.g_off
    ratio = drift_factor(nu, t2, config.t0) / drift_factor(nu, t1, config.t0)
    g_aged = d.g_off + window * ratio
    array.state = array.switching.state_of(
        np.clip(g_aged, d.g_off, d.g_on)
    )
    array._retention_age = t2
    return array.conductance


def age_pair(
    pair: DifferentialCrossbar,
    elapsed: float,
    config: RetentionConfig,
    rng: np.random.Generator | None = None,
) -> None:
    """Age both arrays of a differential pair."""
    rng = ensure_rng(rng, "repro.devices.retention.age_pair")
    age_array(pair.positive.array, elapsed, config, rng)
    age_array(pair.negative.array, elapsed, config, rng)


def equivalent_sigma_at(
    config: RetentionConfig, elapsed: float, n_samples: int = 20000,
    rng: np.random.Generator | None = None,
) -> float:
    """Std of the drift log-multiplier at ``elapsed`` seconds.

    The drift multiplier ``(1 + t/t0)^(-nu)`` acts on the programmed
    window exactly like a (one-sided) variation multiplier; its
    log-standard-deviation is the extra sigma a variation-aware
    training budget should cover for a refresh interval of
    ``elapsed``.  Estimated by sampling the exponent distribution.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    nu = sample_drift_exponents(config, (n_samples,), rng)
    log_mult = -nu * np.log1p(elapsed / config.t0)
    return float(np.std(log_mult))
