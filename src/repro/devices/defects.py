"""Stuck-at defect modelling for memristor crossbars.

Section 4.2.2 of the paper notes that fabrication defects leave cells
stuck at HRS or LRS, and that AMP detects them as devices with extreme
variation and routes high-impact weight rows away from them.  This
module provides the defect map representation and the conversion of a
defect map into equivalent extreme ``theta`` values so that the rest of
the pipeline (pre-testing, SWV, greedy mapping) handles defects with no
special cases.
"""

from __future__ import annotations

import numpy as np

from repro.config import DeviceConfig

__all__ = [
    "STUCK_AT_LRS",
    "STUCK_AT_HRS",
    "HEALTHY",
    "defect_theta",
    "apply_defects_to_conductance",
    "count_defects",
]

HEALTHY = 0
STUCK_AT_LRS = 1
STUCK_AT_HRS = -1


def defect_theta(
    defects: np.ndarray,
    target_conductance: np.ndarray,
    device: DeviceConfig | None = None,
) -> np.ndarray:
    """Equivalent ``theta`` for stuck-at cells given programming targets.

    A cell stuck at LRS behaves as if programmed to ``g_on`` regardless
    of target, i.e. an effective multiplier ``g_on / g_target``; a cell
    stuck at HRS behaves as multiplier ``g_off / g_target``.  Healthy
    cells get ``theta = 0``.

    Args:
        defects: Integer defect map (0 / +1 / -1).
        target_conductance: Targets the cells would be programmed to.
        device: Device parameters providing ``g_on`` / ``g_off``.

    Returns:
        Array of equivalent theta values, same shape as ``defects``.
    """
    device = device if device is not None else DeviceConfig()
    target = np.asarray(target_conductance, dtype=float)
    if target.shape != defects.shape:
        raise ValueError(
            f"defect map shape {defects.shape} does not match target "
            f"shape {target.shape}"
        )
    if np.any(target <= 0):
        raise ValueError("target conductances must be positive")
    theta = np.zeros(defects.shape, dtype=float)
    lrs = defects == STUCK_AT_LRS
    hrs = defects == STUCK_AT_HRS
    theta[lrs] = np.log(device.g_on / target[lrs])
    theta[hrs] = np.log(device.g_off / target[hrs])
    return theta


def apply_defects_to_conductance(
    conductance: np.ndarray,
    defects: np.ndarray,
    device: DeviceConfig | None = None,
) -> np.ndarray:
    """Overwrite defective cells with their stuck conductances."""
    device = device if device is not None else DeviceConfig()
    g = np.array(conductance, dtype=float, copy=True)
    if g.shape != defects.shape:
        raise ValueError(
            f"defect map shape {defects.shape} does not match conductance "
            f"shape {g.shape}"
        )
    g[defects == STUCK_AT_LRS] = device.g_on
    g[defects == STUCK_AT_HRS] = device.g_off
    return g


def count_defects(defects: np.ndarray) -> dict[str, int]:
    """Summary counts of a defect map."""
    return {
        "healthy": int(np.sum(defects == HEALTHY)),
        "stuck_at_lrs": int(np.sum(defects == STUCK_AT_LRS)),
        "stuck_at_hrs": int(np.sum(defects == STUCK_AT_HRS)),
    }
