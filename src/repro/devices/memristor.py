"""Physical memristor array: state, persistent variation, programming.

``MemristorArray`` is the device-level substrate under the crossbar
model.  It owns, per cell:

* the internal switching state ``s`` in [0, 1] (see
  :mod:`repro.devices.switching`),
* a persistent parametric-variation angle ``theta`` sampled once at
  construction (fabrication), and
* a stuck-at defect flag.

Programming a cell toward a target conductance lands at
``g_target * exp(theta + eta)`` (clipped into the physical range),
where ``eta`` is a fresh cycle-to-cycle draw -- exactly the model used
throughout the paper.  Incremental (close-loop) updates scale the
requested conductance change by the same persistent multiplier, so the
feedback loop of CLD sees a consistent, device-specific gain error that
it can regress away, while open-loop programming is blind to it.
"""

from __future__ import annotations

import numpy as np

from repro.config import DeviceConfig, VariationConfig
from repro.devices.defects import (
    STUCK_AT_HRS,
    STUCK_AT_LRS,
    apply_defects_to_conductance,
)
from repro.devices.switching import SwitchingModel
from repro.seeding import ensure_rng
from repro.devices.variation import VariationModel

__all__ = ["MemristorArray"]


class MemristorArray:
    """A fabricated array of memristors with persistent variation.

    Args:
        shape: Array shape ``(rows, cols)``.
        device: Nominal device parameters.
        variation: Variation statistics; ``sigma=0`` yields an ideal
            array.
        rng: Random generator used both for the one-time fabrication
            draw and the per-event cycle noise.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        device: DeviceConfig | None = None,
        variation: VariationConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) < 1:
            raise ValueError(f"shape must be (rows, cols), got {shape}")
        self.device = device if device is not None else DeviceConfig()
        self.switching = SwitchingModel(self.device)
        self.variation = VariationModel(
            variation if variation is not None else VariationConfig(),
            ensure_rng(rng, "repro.devices.memristor.MemristorArray"),
        )
        # Monotone counter bumped on every state/defect write; consumers
        # (e.g. the crossbar's cached nodal factorisation) compare it to
        # detect that their view of the conductances went stale.
        self.state_version = 0
        # Fabrication: one persistent theta and defect flag per device.
        self.theta = self.variation.sample_parametric_theta(self.shape)
        self.defects = self.variation.sample_defects(self.shape)
        # All devices start at HRS (state 0), the post-forming idle state.
        self.state = np.zeros(self.shape, dtype=float)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def state(self) -> np.ndarray:
        """Internal switching states in [0, 1], shape ``shape``."""
        return self._state

    @state.setter
    def state(self, value: np.ndarray) -> None:
        self._state = value
        self.state_version += 1

    @property
    def defects(self) -> np.ndarray:
        """Stuck-at defect map (0 healthy, +1 LRS, -1 HRS)."""
        return self._defects

    @defects.setter
    def defects(self, value: np.ndarray) -> None:
        self._defects = value
        self.state_version += 1

    @property
    def conductance(self) -> np.ndarray:
        """Actual cell conductances (S), honouring stuck-at defects."""
        g = self.switching.conductance_of(self.state)
        return apply_defects_to_conductance(g, self.defects, self.device)

    @property
    def resistance(self) -> np.ndarray:
        """Actual cell resistances (Ohm)."""
        return 1.0 / self.conductance

    # ------------------------------------------------------------------
    # open-loop programming
    # ------------------------------------------------------------------
    def program_conductance(
        self,
        target: np.ndarray,
        with_cycle_noise: bool = True,
    ) -> np.ndarray:
        """Open-loop program every cell toward a target conductance.

        The achieved conductance is the target scaled by each device's
        persistent lognormal multiplier (plus cycle noise), clipped to
        the physical range -- the programming pulses themselves are
        assumed pre-calculated from the nominal switching model, which
        is the open-loop (OLD) abstraction of Section 2.2.3.

        Args:
            target: Target conductances, shape ``(rows, cols)``, inside
                ``[g_off, g_on]``.
            with_cycle_noise: Include the cycle-to-cycle component.

        Returns:
            The achieved conductance array.
        """
        target = np.asarray(target, dtype=float)
        if target.shape != self.shape:
            raise ValueError(
                f"target shape {target.shape} != array shape {self.shape}"
            )
        d = self.device
        if np.any(target < d.g_off - 1e-15) or np.any(target > d.g_on + 1e-15):
            raise ValueError("targets must lie within [g_off, g_on]")
        achieved = self.variation.apply(target, self.theta, with_cycle_noise)
        achieved = np.clip(achieved, d.g_off, d.g_on)
        self.state = self.switching.state_of(achieved)
        return self.conductance

    # ------------------------------------------------------------------
    # close-loop incremental programming
    # ------------------------------------------------------------------
    def update_conductance(
        self,
        delta_g: np.ndarray,
        efficiency: np.ndarray | float = 1.0,
        with_cycle_noise: bool = True,
    ) -> np.ndarray:
        """Apply incremental conductance changes (close-loop step).

        Each requested change is scaled by the device's persistent
        multiplier ``exp(theta)``, optional cycle noise, and an external
        ``efficiency`` factor (e.g. the IR-drop induced nonlinearity
        factor of Section 3.2), then clipped to the physical range.
        Stuck-at cells ignore updates.

        Args:
            delta_g: Requested conductance changes (S), shape
                ``(rows, cols)``.
            efficiency: Per-cell multiplier in (0, 1] modelling degraded
                programming voltage; scalar or broadcastable array.
            with_cycle_noise: Include cycle-to-cycle noise on the step.

        Returns:
            The conductance array after the update.
        """
        delta_g = np.asarray(delta_g, dtype=float)
        if delta_g.shape != self.shape:
            raise ValueError(
                f"delta shape {delta_g.shape} != array shape {self.shape}"
            )
        step = delta_g * np.exp(self.theta) * np.asarray(efficiency, dtype=float)
        if with_cycle_noise and self.variation.config.sigma_cycle > 0:
            step = step * self.variation.sample_cycle(self.shape)
        d = self.device
        g = self.switching.conductance_of(self.state)
        g = np.clip(g + step, d.g_off, d.g_on)
        self.state = self.switching.state_of(g)
        return self.conductance

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def reset_to_hrs(self) -> None:
        """Erase: return every healthy cell to HRS."""
        self.state = np.zeros(self.shape, dtype=float)

    def restore_state(
        self,
        conductance: np.ndarray | None = None,
        theta: np.ndarray | None = None,
        defects: np.ndarray | None = None,
    ) -> None:
        """Overwrite device state from a persisted snapshot, noise-free.

        Unlike :meth:`program_conductance`, nothing stochastic happens:
        the internal states are set so that the array reproduces the
        snapshot conductances exactly.  Used when a serving process
        reconstructs a programmed crossbar from an artifact bundle
        (:mod:`repro.serve.artifact`) -- programming already happened
        elsewhere, restoring must not redraw any variation.

        Args:
            conductance: Cell conductances to reproduce (clipped into
                the physical range).
            theta: Persistent variation map to adopt (kept for later
                re-pretests / remaps on the restored array).
            defects: Stuck-at defect map to adopt.
        """
        if theta is not None:
            theta = np.asarray(theta, dtype=float)
            if theta.shape != self.shape:
                raise ValueError(
                    f"theta shape {theta.shape} != array shape {self.shape}"
                )
            self.theta = theta
        if defects is not None:
            defects = np.asarray(defects, dtype=int)
            if defects.shape != self.shape:
                raise ValueError(
                    f"defects shape {defects.shape} != array shape "
                    f"{self.shape}"
                )
            self.defects = defects
        if conductance is not None:
            g = np.asarray(conductance, dtype=float)
            if g.shape != self.shape:
                raise ValueError(
                    f"conductance shape {g.shape} != array shape "
                    f"{self.shape}"
                )
            d = self.device
            self.state = self.switching.state_of(np.clip(g, d.g_off, d.g_on))

    def is_stuck(self) -> np.ndarray:
        """Boolean mask of defective cells."""
        return self.defects != 0

    def describe(self) -> dict[str, float]:
        """Summary statistics of the fabricated array."""
        return {
            "rows": float(self.shape[0]),
            "cols": float(self.shape[1]),
            "theta_std": float(np.std(self.theta)),
            "stuck_lrs": float(np.sum(self.defects == STUCK_AT_LRS)),
            "stuck_hrs": float(np.sum(self.defects == STUCK_AT_HRS)),
        }
