"""Lognormal memristor variation models.

The paper adopts the measurement-backed lognormal model of Lee et al.
(VLSIT'12): a device programmed toward resistance ``r`` lands at
``r * exp(theta)`` with ``theta ~ N(0, sigma**2)``.  Two mechanisms are
distinguished (Section 2.1):

* **Parametric variation** -- a *persistent*, device-to-device offset
  caused by fabrication imperfection.  Each physical device owns one
  ``theta`` that recurs every time it is programmed.  This persistence
  is what makes AMP's pre-testing predictive.
* **Switching variation** -- a *cycle-to-cycle* perturbation drawn
  fresh on every programming event.  It is much smaller than the
  parametric component and averages out under repeated sensing.
"""

from __future__ import annotations

import numpy as np

from repro.config import VariationConfig
from repro.seeding import ensure_rng

__all__ = [
    "VariationModel",
    "lognormal_multipliers",
    "sample_standard_thetas",
    "THETA_DISTRIBUTIONS",
]

THETA_DISTRIBUTIONS = ("lognormal", "uniform", "heavy_tailed")


def sample_standard_thetas(
    rng: np.random.Generator,
    distribution: str,
    shape: tuple[int, ...],
) -> np.ndarray:
    """Unit-standard-deviation draws of the log-multiplier ``theta``.

    The device multiplier is always ``exp(sigma * theta)``; the
    *shape* of ``theta`` varies:

    * ``'lognormal'`` -- standard normal theta (the paper's model).
    * ``'uniform'`` -- uniform on ``[-sqrt(3), sqrt(3)]`` (std 1).
    * ``'heavy_tailed'`` -- Student-t with 4 dof scaled to std 1
      (``t / sqrt(2)``), modelling occasional far-out devices.
    """
    if distribution == "lognormal":
        return rng.standard_normal(shape)
    if distribution == "uniform":
        bound = np.sqrt(3.0)
        return rng.uniform(-bound, bound, size=shape)
    if distribution == "heavy_tailed":
        # Var(t_v) = v / (v - 2) = 2 for v = 4.
        return rng.standard_t(4, size=shape) / np.sqrt(2.0)
    raise ValueError(
        f"distribution must be one of {THETA_DISTRIBUTIONS}, "
        f"got {distribution!r}"
    )


def lognormal_multipliers(
    rng: np.random.Generator, sigma: float, shape: tuple[int, ...]
) -> np.ndarray:
    """Draw ``exp(theta)`` multipliers with ``theta ~ N(0, sigma^2)``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return np.ones(shape)
    return np.exp(rng.normal(0.0, sigma, size=shape))


class VariationModel:
    """Samples and applies the two-tier lognormal variation model.

    Args:
        config: Statistical parameters (``sigma``, ``sigma_cycle``,
            defect rates).
        rng: Random generator; pass a seeded generator for
            reproducibility.
    """

    def __init__(
        self,
        config: VariationConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config if config is not None else VariationConfig()
        self.rng = ensure_rng(rng, "repro.devices.variation.VariationModel")

    # ------------------------------------------------------------------
    # parametric (persistent, per-device) component
    # ------------------------------------------------------------------
    def sample_parametric_theta(self, shape: tuple[int, ...]) -> np.ndarray:
        """Persistent per-device ``theta`` values (std ``sigma``).

        The distribution family comes from the config; the paper's
        lognormal model corresponds to normal ``theta``.
        """
        if self.config.sigma == 0:
            return np.zeros(shape)
        return self.config.sigma * sample_standard_thetas(
            self.rng, self.config.distribution, shape
        )

    def sample_parametric(self, shape: tuple[int, ...]) -> np.ndarray:
        """Persistent per-device multipliers ``exp(theta)``."""
        return np.exp(self.sample_parametric_theta(shape))

    # ------------------------------------------------------------------
    # switching (cycle-to-cycle) component
    # ------------------------------------------------------------------
    def sample_cycle(self, shape: tuple[int, ...]) -> np.ndarray:
        """Per-programming-event multipliers ``exp(eta)``."""
        return lognormal_multipliers(self.rng, self.config.sigma_cycle, shape)

    # ------------------------------------------------------------------
    # defects
    # ------------------------------------------------------------------
    def sample_defects(self, shape: tuple[int, ...]) -> np.ndarray:
        """Stuck-at defect map.

        Returns:
            Integer array of the given shape: 0 for healthy devices,
            +1 for stuck-at-LRS, -1 for stuck-at-HRS.
        """
        cfg = self.config
        defects = np.zeros(shape, dtype=int)
        if cfg.defect_rate <= 0:
            return defects
        mask = self.rng.random(shape) < cfg.defect_rate
        polarity = self.rng.random(shape) < cfg.defect_lrs_fraction
        defects[mask & polarity] = 1
        defects[mask & ~polarity] = -1
        return defects

    # ------------------------------------------------------------------
    # application helpers
    # ------------------------------------------------------------------
    def apply(
        self,
        target: np.ndarray,
        parametric_theta: np.ndarray,
        with_cycle_noise: bool = True,
    ) -> np.ndarray:
        """Actual programmed values for targets under this model.

        Args:
            target: Target (conductance or weight) array.
            parametric_theta: Persistent per-device theta of the same
                shape as ``target``.
            with_cycle_noise: Add a fresh cycle-to-cycle draw.

        Returns:
            ``target * exp(theta) [* exp(eta)]``.
        """
        target = np.asarray(target, dtype=float)
        if parametric_theta.shape != target.shape:
            raise ValueError(
                f"theta shape {parametric_theta.shape} does not match "
                f"target shape {target.shape}"
            )
        actual = target * np.exp(parametric_theta)
        if with_cycle_noise and self.config.sigma_cycle > 0:
            actual = actual * self.sample_cycle(target.shape)
        return actual
