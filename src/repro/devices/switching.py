"""Phenomenological memristor switching-dynamics model.

The model reproduces the analogue switching behaviour of Fig. 1(a) of
the paper (Yu et al., APL'11): the internal state ``s`` of a device
relaxes exponentially toward the rail selected by the programming
polarity, with a rate that depends exponentially (``sinh``) on the
applied voltage.  The two anchor points quoted in Section 2.2.2 --
programming at 2.9 V for 0.5 us lands at 900 kOhm while 2.8 V lands at
400 kOhm, and the 1.45 V half-select disturb is negligible -- calibrate
the characteristic voltage ``v0`` and the rate prefactor ``k``.

State convention: ``s = 1`` is the fully-ON state (LRS, conductance
``g_on``); ``s = 0`` is the fully-OFF state (HRS, ``g_off``).  The
device conductance is the affine interpolation

    g(s) = g_off + s * (g_on - g_off).

SET pulses (positive polarity) drive ``s`` toward 1; RESET pulses drive
``s`` toward 0.  Under a constant pulse the state follows

    s(t) = target + (s0 - target) * exp(-t * rate(V)),

with ``rate(V) = k * sinh(|V| / v0)``.  Because ``rate`` is exponential
in ``V``, the half-selected devices of the V/2 programming scheme see a
rate several orders of magnitude below the selected device, which is
what makes single-cell programming possible (Section 2.2.2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import DeviceConfig

__all__ = [
    "SwitchingModel",
    "switching_rate",
]


def switching_rate(voltage: float | np.ndarray, k: float, v0: float):
    """Exponential voltage dependence of the switching rate.

    Args:
        voltage: Applied programming voltage magnitude (V); may be an
            array for vectorised evaluation.
        k: Rate prefactor in 1/s.
        v0: Characteristic voltage in V.

    Returns:
        Switching rate in 1/s, same shape as ``voltage``.
    """
    return k * np.sinh(np.abs(voltage) / v0)


class SwitchingModel:
    """Analogue switching dynamics calibrated to the paper's anchors.

    The model exposes the three primitives the training schemes need:

    * :meth:`apply_pulse` -- integrate the state change produced by a
      pulse of given voltage and width (used by CLD and by half-select
      disturb accounting).
    * :meth:`pulse_width_for` -- closed-form inversion: the pulse width
      that moves the state from ``s0`` to ``s_target`` at a given
      voltage (used by the open-loop pre-calculation of OLD/Vortex).
    * :meth:`state_of` / :meth:`conductance_of` -- conversions between
      internal state and conductance.
    """

    def __init__(self, device: DeviceConfig | None = None):
        self.device = device if device is not None else DeviceConfig()

    # ------------------------------------------------------------------
    # state <-> conductance conversions
    # ------------------------------------------------------------------
    def conductance_of(self, state: np.ndarray | float):
        """Conductance (S) for internal state ``s`` in [0, 1]."""
        d = self.device
        return d.g_off + np.asarray(state, dtype=float) * d.g_range

    def state_of(self, conductance: np.ndarray | float):
        """Internal state in [0, 1] for a conductance in [g_off, g_on]."""
        d = self.device
        s = (np.asarray(conductance, dtype=float) - d.g_off) / d.g_range
        return np.clip(s, 0.0, 1.0)

    def resistance_of(self, state: np.ndarray | float):
        """Resistance (Ohm) for internal state ``s`` in [0, 1]."""
        return 1.0 / self.conductance_of(state)

    # ------------------------------------------------------------------
    # forward dynamics
    # ------------------------------------------------------------------
    def rate(self, voltage: float | np.ndarray, polarity: str):
        """Switching rate (1/s) at ``voltage`` for 'set' or 'reset'."""
        d = self.device
        if polarity == "set":
            return switching_rate(voltage, d.k_set, d.v0_set)
        if polarity == "reset":
            return switching_rate(voltage, d.k_reset, d.v0_reset)
        raise ValueError(f"polarity must be 'set' or 'reset', got {polarity!r}")

    def apply_pulse(
        self,
        state: np.ndarray | float,
        voltage: float | np.ndarray,
        width: float | np.ndarray,
        polarity: str,
    ):
        """State after a programming pulse.

        Args:
            state: Initial internal state(s) in [0, 1].
            voltage: Pulse magnitude(s) in V.
            width: Pulse width(s) in seconds.
            polarity: ``'set'`` (toward LRS, s -> 1) or ``'reset'``
                (toward HRS, s -> 0).

        Returns:
            New state(s), clipped to [0, 1].
        """
        target = 1.0 if polarity == "set" else 0.0
        rate = self.rate(voltage, polarity)
        decay = np.exp(-np.asarray(width, dtype=float) * rate)
        new_state = target + (np.asarray(state, dtype=float) - target) * decay
        return np.clip(new_state, 0.0, 1.0)

    # ------------------------------------------------------------------
    # open-loop inversion
    # ------------------------------------------------------------------
    def pulse_width_for(
        self,
        s0: np.ndarray | float,
        s_target: np.ndarray | float,
        voltage: float | np.ndarray,
        polarity: str,
    ):
        """Pulse width that moves the state from ``s0`` to ``s_target``.

        Inverts the exponential relaxation in closed form.  The caller
        is responsible for picking a polarity consistent with the move
        direction; a move *against* the polarity (e.g. asking a RESET
        pulse to increase ``s``) raises ``ValueError``.

        Args:
            s0: Initial state(s).
            s_target: Desired final state(s); must lie strictly between
                the polarity target and ``s0`` (or equal ``s0``, which
                yields width 0).
            voltage: Pulse voltage magnitude(s) in V.
            polarity: ``'set'`` or ``'reset'``.

        Returns:
            Required pulse width(s) in seconds.
        """
        s0 = np.asarray(s0, dtype=float)
        s_target = np.asarray(s_target, dtype=float)
        target = 1.0 if polarity == "set" else 0.0
        num = s0 - target
        den = s_target - target
        moving = ~np.isclose(s0, s_target)
        if np.any(moving & (np.abs(den) > np.abs(num))):
            raise ValueError(
                "target state is farther from the polarity rail than the "
                "initial state; wrong polarity for this move"
            )
        if np.any(moving & np.isclose(den, 0.0)):
            raise ValueError(
                "cannot reach the polarity rail exactly in finite time"
            )
        rate = self.rate(voltage, polarity)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(moving, num / np.where(den == 0, 1.0, den), 1.0)
            width = np.where(moving, np.log(np.abs(ratio)) / rate, 0.0)
        return width

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def half_select_disturb(self, width: float, polarity: str = "reset") -> float:
        """Worst-case fractional state change of a half-selected device.

        Evaluates the exponential relaxation factor for a device biased
        at ``v_half_ratio`` of the full programming voltage for the
        given pulse width.  Section 2.2.2 of the paper argues this is
        negligible; the returned number quantifies "negligible" for the
        calibrated model.
        """
        d = self.device
        v_full = d.v_set if polarity == "set" else d.v_reset
        rate = self.rate(v_full * d.v_half_ratio, polarity)
        return float(1.0 - math.exp(-width * float(rate)))

    def nonlinearity_factor(
        self, delivered_voltage: np.ndarray | float, polarity: str = "set"
    ):
        """Relative switching speed at a degraded programming voltage.

        Ratio ``rate(V_delivered) / rate(V_nominal)``.  This is the
        quantity through which IR-drop skews close-loop training: a cell
        that only receives 80 % of the nominal voltage switches orders
        of magnitude more slowly (Section 3.2).
        """
        d = self.device
        v_full = d.v_set if polarity == "set" else d.v_reset
        return np.asarray(
            self.rate(delivered_voltage, polarity) / self.rate(v_full, polarity)
        )
