"""Memristor device physics substrate.

Switching dynamics, lognormal variation models, stuck-at defects, and
the fabricated :class:`MemristorArray` used by the crossbar layer.
"""

from repro.devices.defects import (
    HEALTHY,
    STUCK_AT_HRS,
    STUCK_AT_LRS,
    apply_defects_to_conductance,
    count_defects,
    defect_theta,
)
from repro.devices.memristor import MemristorArray
from repro.devices.retention import (
    RetentionConfig,
    age_array,
    age_pair,
    drift_factor,
    equivalent_sigma_at,
    sample_drift_exponents,
)
from repro.devices.switching import SwitchingModel, switching_rate
from repro.devices.variation import (
    THETA_DISTRIBUTIONS,
    VariationModel,
    lognormal_multipliers,
    sample_standard_thetas,
)

__all__ = [
    "HEALTHY",
    "STUCK_AT_HRS",
    "STUCK_AT_LRS",
    "THETA_DISTRIBUTIONS",
    "MemristorArray",
    "RetentionConfig",
    "SwitchingModel",
    "VariationModel",
    "age_array",
    "age_pair",
    "apply_defects_to_conductance",
    "count_defects",
    "defect_theta",
    "drift_factor",
    "equivalent_sigma_at",
    "lognormal_multipliers",
    "sample_drift_exponents",
    "sample_standard_thetas",
    "switching_rate",
]
