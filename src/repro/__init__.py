"""Vortex: variation-aware training for memristor crossbars.

A full reproduction of Liu et al., "Vortex: Variation-aware Training
for Memristor X-bar" (DAC 2015): the memristor device and crossbar
circuit substrates, the OLD and CLD baseline training schemes, the VAT
robust training objective, the AMP adaptive row mapping, and the
integrated Vortex pipeline, together with drivers regenerating every
table and figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import (
        HardwareSpec, WeightScaler, build_pair, make_dataset,
        run_vortex,
    )

    ds = make_dataset(n_train=1000, n_test=500, seed=1)
    spec = HardwareSpec()
    scaler = WeightScaler(1.0)
    pair = build_pair(spec, scaler, np.random.default_rng(0),
                      rows=ds.n_features)
    result = run_vortex(pair, ds.x_train, ds.y_train, n_classes=10,
                        rng=np.random.default_rng(1))
    print("test rate:", result.test_rate(pair, ds.x_test, ds.y_test))
"""

from repro.config import (
    CrossbarConfig,
    DeviceConfig,
    SensingConfig,
    VariationConfig,
)
from repro.core import (
    AMPResult,
    CLDConfig,
    HardwareSpec,
    OLDConfig,
    RowMapping,
    SelfTuningConfig,
    TrainingOutcome,
    VATConfig,
    VortexConfig,
    VortexResult,
    build_pair,
    hardware_test_rate,
    program_pair_open_loop,
    program_pair_physical,
    run_amp,
    run_vortex,
    train_cld,
    train_old,
    train_vat,
    tune_gamma,
)
from repro.backend import available_backends, get_namespace
from repro.data import Dataset, make_dataset
from repro.nn import LinearClassifier, one_vs_all_targets, train_gdt
from repro.runtime import RunLog, RuntimeConfig, use_run_log, use_runtime
from repro.xbar import Crossbar, DifferentialCrossbar, WeightScaler

__version__ = "1.0.0"

__all__ = [
    "AMPResult",
    "CLDConfig",
    "Crossbar",
    "CrossbarConfig",
    "Dataset",
    "DeviceConfig",
    "DifferentialCrossbar",
    "HardwareSpec",
    "LinearClassifier",
    "OLDConfig",
    "RowMapping",
    "RunLog",
    "RuntimeConfig",
    "SelfTuningConfig",
    "SensingConfig",
    "TrainingOutcome",
    "VATConfig",
    "VariationConfig",
    "VortexConfig",
    "VortexResult",
    "WeightScaler",
    "available_backends",
    "build_pair",
    "get_namespace",
    "hardware_test_rate",
    "make_dataset",
    "one_vs_all_targets",
    "program_pair_open_loop",
    "program_pair_physical",
    "run_amp",
    "run_vortex",
    "train_cld",
    "train_gdt",
    "train_old",
    "train_vat",
    "tune_gamma",
    "use_run_log",
    "use_runtime",
]
