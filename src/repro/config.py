"""Global configuration objects shared across the Vortex reproduction.

The values collected here mirror the experimental setup of the DAC'15
paper: nominal on/off resistances of 10 kOhm / 1 MOhm, a 784x10 crossbar
for 28x28 MNIST-style images, a wire resistance of 2.5 Ohm for the
IR-drop studies, and a default device-variation sigma of 0.6.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DeviceConfig:
    """Nominal memristor device parameters.

    Attributes:
        r_on: Nominal low-resistance-state (LRS) resistance in Ohm.
        r_off: Nominal high-resistance-state (HRS) resistance in Ohm.
        v_set: Programming voltage magnitude for SET (toward LRS) in Volt.
        v_reset: Programming voltage magnitude for RESET (toward HRS) in Volt.
        v_half_ratio: Fraction of the full programming voltage seen by
            half-selected devices under the V/2 scheme.
        v0_set: Characteristic voltage of the exponential SET dynamics.
        v0_reset: Characteristic voltage of the exponential RESET dynamics.
        k_set: SET rate prefactor in 1/second.
        k_reset: RESET rate prefactor in 1/second.
    """

    r_on: float = 10e3
    r_off: float = 1e6
    v_set: float = 2.9
    v_reset: float = 2.9
    v_half_ratio: float = 0.5
    v0_set: float = 0.207
    v0_reset: float = 0.207
    k_set: float = 22.6
    k_reset: float = 22.6

    @property
    def g_on(self) -> float:
        """On-state (maximum) conductance in Siemens."""
        return 1.0 / self.r_on

    @property
    def g_off(self) -> float:
        """Off-state (minimum) conductance in Siemens."""
        return 1.0 / self.r_off

    @property
    def g_range(self) -> float:
        """Programmable conductance span ``g_on - g_off`` in Siemens."""
        return self.g_on - self.g_off


@dataclasses.dataclass(frozen=True)
class VariationConfig:
    """Statistical model of memristor variability.

    The paper adopts the lognormal parametric-variation model of
    Lee et al. (VLSIT'12): a device programmed toward target resistance
    ``r`` lands at ``r * exp(theta)`` with ``theta ~ N(0, sigma**2)``.
    Cycle-to-cycle (switching) variation is modelled the same way with a
    much smaller ``sigma_cycle`` and a fresh draw per programming event.

    Attributes:
        sigma: Standard deviation of the persistent (parametric,
            device-to-device) log-multiplier ``theta``.
        sigma_cycle: Standard deviation of the per-programming-event
            (cycle-to-cycle) lognormal switching variation.
        defect_rate: Probability that a device is a stuck-at defect.
        defect_lrs_fraction: Fraction of defects stuck at LRS (the rest
            are stuck at HRS).
        distribution: Shape of the persistent ``theta`` distribution:
            ``'lognormal'`` (theta normal -- the paper's model from
            [14]), ``'uniform'`` (theta uniform, matched std), or
            ``'heavy_tailed'`` (Student-t theta with 4 dof, matched
            std).  The paper notes its techniques "are not restricted
            to any particular variation models"; these alternatives
            exercise that claim.
    """

    sigma: float = 0.6
    sigma_cycle: float = 0.03
    defect_rate: float = 0.0
    defect_lrs_fraction: float = 0.5
    distribution: str = "lognormal"


#: Valid nodal-solver selections, in accuracy/cost order: ``"lu"`` is
#: the generic sparse-LU oracle, ``"schur"`` the structure-exploiting
#: reduced direct solve, ``"cg"`` the preconditioned iterative solve
#: (see :mod:`repro.xbar.solvers`).
NODAL_SOLVERS = ("lu", "schur", "cg")


@dataclasses.dataclass(frozen=True)
class CrossbarConfig:
    """Crossbar array geometry and interconnect parameters.

    Attributes:
        rows: Number of word lines (inputs), ``n`` in the paper.
        cols: Number of bit lines (outputs), ``m`` in the paper.
        r_wire: Resistance of one wire segment between adjacent
            cross-points, in Ohm (the paper uses 2.5 Ohm).
        v_read: Read voltage applied on the word lines during inference
            and sensing, in Volt.
        nodal_solver: Solver backing ``ir_mode="nodal"`` reads on this
            crossbar: one of :data:`NODAL_SOLVERS`, or ``None`` (the
            default) to adopt the ambient
            :class:`~repro.runtime.config.RuntimeConfig` selection.
            Every solver answers the same circuit problem; they differ
            only in cost and in last-ulp rounding (``"lu"`` is the
            bit-exact oracle, the others carry tolerance contracts --
            see ``docs/ir_drop.md``).
    """

    rows: int = 784
    cols: int = 10
    r_wire: float = 2.5
    v_read: float = 1.0
    nodal_solver: str | None = None

    def __post_init__(self) -> None:
        if self.nodal_solver is not None and (
            self.nodal_solver not in NODAL_SOLVERS
        ):
            raise ValueError(
                f"nodal_solver must be one of {NODAL_SOLVERS} or None, "
                f"got {self.nodal_solver!r}"
            )


@dataclasses.dataclass(frozen=True)
class SensingConfig:
    """Peripheral sensing-circuit parameters.

    Attributes:
        adc_bits: ADC resolution in bits (the paper fixes 6 bits after
            the Fig. 8 sweep).
        sense_repeats: Number of repeated sense operations averaged
            during pre-testing to suppress switching variation.
        full_scale_margin: Head-room multiplier applied to the largest
            expected current when choosing the ADC full-scale range.
    """

    adc_bits: int = 6
    sense_repeats: int = 4
    full_scale_margin: float = 1.0


DEFAULT_DEVICE = DeviceConfig()
DEFAULT_VARIATION = VariationConfig()
DEFAULT_CROSSBAR = CrossbarConfig()
DEFAULT_SENSING = SensingConfig()
