"""Deterministic parallel execution of Monte-Carlo trials.

The engine fans trials out over a :class:`~concurrent.futures.\
ProcessPoolExecutor` in fixed index chunks while keeping one invariant
absolute: **the worker count can never change a result**.  Trial ``i``
always runs against the generator spawned at position ``i`` of the
master ``SeedSequence`` tree -- the executor constructs it directly as
``SeedSequence(entropy=seed, spawn_key=(i,))``, which NumPy guarantees
equals ``SeedSequence(seed).spawn(n)[i]`` -- and results are
reassembled in index order.  ``jobs=1`` and ``jobs=8`` therefore
produce bit-identical value arrays, and the serial path spawns
generators lazily chunk by chunk, so memory stays flat at large trial
counts.

Two entry points:

* :func:`map_trials` -- the Monte-Carlo primitive: run
  ``trial(rng)`` for ``trials`` independent draws, return the stacked
  value array.
* :func:`parallel_map` -- order-preserving map over independent
  *deterministic* tasks (the gamma grid of the self-tuning loop, the
  per-gamma training of the Fig. 4 sweep).

Both fall back to in-process execution when the callable cannot be
pickled (e.g. a closure), when only one worker is requested, or when
the platform cannot start worker processes -- parallelism is an
optimisation here, never a requirement.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.runtime.config import current_runtime, resolve_jobs
from repro.runtime.telemetry import current_run_log

__all__ = [
    "trial_seed_sequence",
    "chunk_bounds",
    "map_trials",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")

TrialFn = Callable[[np.random.Generator], Any]

# Upper bound on trials per worker task: small enough for progress
# reporting and load balancing, large enough to amortise dispatch.
_MAX_CHUNK = 64


def trial_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The seed sequence of trial ``index`` under master ``seed``.

    Identical to ``np.random.SeedSequence(seed).spawn(n)[index]`` for
    any ``n > index``, but O(1): children of a fresh parent carry
    ``spawn_key=(index,)``, so they can be constructed directly without
    materialising the whole spawn tree.  This is what lets workers (and
    the lazy serial path) derive exactly the generators the original
    all-up-front implementation used.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))


def trial_rng(seed: int, index: int) -> np.random.Generator:
    """The dedicated generator of trial ``index`` under ``seed``."""
    return np.random.default_rng(trial_seed_sequence(seed, index))


def chunk_bounds(
    trials: int, jobs: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` index ranges covering all trials.

    The partition depends only on ``trials`` and the requested chunk
    size -- never on scheduling -- so the same work decomposition is
    replayed on every run.
    """
    if chunk_size is None:
        # A few chunks per worker balances load without tiny tasks.
        chunk_size = max(1, min(_MAX_CHUNK, -(-trials // (jobs * 4))))
    return [
        (start, min(start + chunk_size, trials))
        for start in range(0, trials, chunk_size)
    ]


def _run_chunk(
    trial: TrialFn, seed: int, start: int, stop: int
) -> list[np.ndarray]:
    """Run trials ``start..stop`` with their dedicated generators."""
    return [
        np.asarray(trial(trial_rng(seed, i)), dtype=float)
        for i in range(start, stop)
    ]


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def map_trials(
    trial: TrialFn,
    trials: int,
    seed: int = 0,
    jobs: int | None = None,
    chunk_size: int | None = None,
    label: str = "montecarlo",
) -> np.ndarray:
    """Run ``trial`` over independent draws; stack the per-trial values.

    Args:
        trial: Callable receiving a dedicated generator.  Must be
            picklable (a module-level function or ``functools.partial``
            of one) to actually run in worker processes; closures fall
            back to serial execution.
        trials: Number of independent repetitions (>= 1).
        seed: Master seed of the spawn tree.
        jobs: Worker processes; ``None`` reads the ambient
            :class:`~repro.runtime.config.RuntimeConfig`, ``0`` means
            one per CPU.  Any value yields bit-identical results.
        chunk_size: Trials per worker task; ``None`` auto-sizes.
        label: Telemetry label for the run log.

    Returns:
        Array of shape ``(trials,) + value_shape``.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    jobs = resolve_jobs(jobs)
    if chunk_size is None:
        chunk_size = current_runtime().chunk_size
    log = current_run_log()
    bounds = chunk_bounds(trials, jobs, chunk_size)

    t0 = time.perf_counter()
    chunks: list[list[np.ndarray]]
    if jobs > 1 and trials > 1 and _is_picklable(trial):
        chunks = _map_chunks_parallel(trial, seed, bounds, jobs, label)
    else:
        chunks = []
        done = 0
        for start, stop in bounds:
            chunks.append(_run_chunk(trial, seed, start, stop))
            done += stop - start
            if log is not None:
                log.report_progress(label, done, trials)
    values = np.asarray([v for chunk in chunks for v in chunk])
    if log is not None:
        log.record_batch(
            label, trials, time.perf_counter() - t0, jobs
        )
    return values


def _map_chunks_parallel(
    trial: TrialFn,
    seed: int,
    bounds: Sequence[tuple[int, int]],
    jobs: int,
    label: str,
) -> list[list[np.ndarray]]:
    """Fan chunks out over worker processes, reassemble in order."""
    log = current_run_log()
    total = bounds[-1][1] if bounds else 0
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(bounds))
        ) as pool:
            futures = [
                pool.submit(_run_chunk, trial, seed, start, stop)
                for start, stop in bounds
            ]
            done = 0
            for future, (start, stop) in zip(futures, bounds):
                # Await in submission order: completion order varies
                # run to run, assembly order must not.
                future.result()
                done += stop - start
                if log is not None:
                    log.report_progress(label, done, total)
            return [f.result() for f in futures]
    except (OSError, PermissionError):
        # Platforms without working process pools (e.g. missing
        # /dev/shm semaphores) degrade to the serial path.
        return [_run_chunk(trial, seed, start, stop) for start, stop in bounds]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    label: str = "tasks",
) -> list[R]:
    """Order-preserving map over independent deterministic tasks.

    Only sound for pure functions: results must not depend on execution
    order or shared mutable state, which is exactly what makes the
    output independent of ``jobs``.  Falls back to a plain in-process
    map when ``jobs == 1``, when ``fn`` (or an item) is unpicklable, or
    when worker processes cannot start.

    Args:
        fn: Pure function applied to every item.
        items: Task inputs (materialised up front).
        jobs: Worker processes; ``None`` reads the ambient config.
        label: Telemetry label for the run log.

    Returns:
        ``[fn(item) for item in items]``, in input order.
    """
    seq = list(items)
    jobs = resolve_jobs(jobs)
    log = current_run_log()
    t0 = time.perf_counter()
    results: list[R]
    if (
        jobs > 1
        and len(seq) > 1
        and _is_picklable(fn)
        and all(_is_picklable(item) for item in seq)
    ):
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(seq))
            ) as pool:
                results = list(pool.map(fn, seq))
        except (OSError, PermissionError):
            results = [fn(item) for item in seq]
    else:
        results = [fn(item) for item in seq]
    if log is not None:
        log.record_batch(label, len(seq), time.perf_counter() - t0, jobs)
    return results
