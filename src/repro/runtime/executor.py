"""Deterministic parallel execution of Monte-Carlo trials.

The engine fans trials out over a :class:`~concurrent.futures.\
ProcessPoolExecutor` in fixed index chunks while keeping one invariant
absolute: **the worker count can never change a result**.  Trial ``i``
always runs against the generator spawned at position ``i`` of the
master ``SeedSequence`` tree -- the executor constructs it directly as
``SeedSequence(entropy=seed, spawn_key=(i,))``, which NumPy guarantees
equals ``SeedSequence(seed).spawn(n)[i]`` -- and results are
reassembled in index order.  ``jobs=1`` and ``jobs=8`` therefore
produce bit-identical value arrays, and the serial path spawns
generators lazily chunk by chunk, so memory stays flat at large trial
counts.

Three entry points:

* :func:`map_trials` -- the Monte-Carlo primitive: run
  ``trial(rng)`` for ``trials`` independent draws, return the stacked
  value array.
* :func:`map_trials_batched` -- the trial-batched kernel primitive:
  hand a whole chunk's per-trial generators to one vectorised kernel,
  which draws every trial's variations into stacked tensors and
  evaluates the chunk with fixed-accumulation array math.  Because the
  kernel consumes *exactly* the per-trial generator streams of the
  looped path, its values are bit-identical to :func:`map_trials` of
  the equivalent scalar trial at any jobs/chunk-size combination.
* :func:`parallel_map` -- order-preserving map over independent
  *deterministic* tasks (the gamma grid of the self-tuning loop, the
  per-gamma training of the Fig. 4 sweep).

All fall back to in-process execution when the callable cannot be
pickled (e.g. a closure), when only one worker is requested, or when
the platform cannot start worker processes -- parallelism is an
optimisation here, never a requirement.

Chunk results cross process boundaries as whole ``ndarray`` blocks
(one binary pickle per chunk) and are assembled into a preallocated
output array; large blocks ride through POSIX shared memory when the
platform provides it, so the parent never re-serialises bulk trial
values through per-trial Python lists.
"""

from __future__ import annotations

import concurrent.futures
import functools
import inspect
import pickle
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.backend import ArrayBackend, resolve_backend, to_numpy
from repro.runtime.config import current_runtime, resolve_jobs
from repro.runtime.telemetry import current_run_log

__all__ = [
    "trial_seed_sequence",
    "chunk_bounds",
    "map_trials",
    "map_trials_batched",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")

TrialFn = Callable[[np.random.Generator], Any]
BatchTrialFn = Callable[[Sequence[np.random.Generator]], np.ndarray]

# Upper bound on trials per worker task: small enough for progress
# reporting and load balancing, large enough to amortise dispatch.
_MAX_CHUNK = 64


def trial_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The seed sequence of trial ``index`` under master ``seed``.

    Identical to ``np.random.SeedSequence(seed).spawn(n)[index]`` for
    any ``n > index``, but O(1): children of a fresh parent carry
    ``spawn_key=(index,)``, so they can be constructed directly without
    materialising the whole spawn tree.  This is what lets workers (and
    the lazy serial path) derive exactly the generators the original
    all-up-front implementation used.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))


def trial_rng(seed: int, index: int) -> np.random.Generator:
    """The dedicated generator of trial ``index`` under ``seed``."""
    return np.random.default_rng(trial_seed_sequence(seed, index))


def chunk_bounds(
    trials: int, jobs: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` index ranges covering all trials.

    The partition depends only on ``trials`` and the requested chunk
    size -- never on scheduling -- so the same work decomposition is
    replayed on every run.
    """
    if chunk_size is None:
        # A few chunks per worker balances load without tiny tasks.
        chunk_size = max(1, min(_MAX_CHUNK, -(-trials // (jobs * 4))))
    return [
        (start, min(start + chunk_size, trials))
        for start in range(0, trials, chunk_size)
    ]


def _run_chunk(trial: TrialFn, seed: int, start: int, stop: int) -> np.ndarray:
    """Run trials ``start..stop`` with their dedicated generators.

    Returns one stacked block of shape ``(stop - start,) + value_shape``
    so a chunk crosses the process boundary as a single binary array
    payload instead of a pickled list of per-trial arrays.
    """
    return np.stack([
        np.asarray(trial(trial_rng(seed, i)), dtype=float)
        for i in range(start, stop)
    ])


def _run_batch_chunk(
    batch_trial: BatchTrialFn, seed: int, start: int, stop: int
) -> np.ndarray:
    """Run one chunk through a vectorised kernel.

    The kernel receives the *same* per-trial child generators, in the
    same order, that :func:`_run_chunk` would hand to the scalar trial
    one by one -- the stream identity that makes batched results
    bit-identical to looped ones.
    """
    rngs = [trial_rng(seed, i) for i in range(start, stop)]
    block = np.asarray(to_numpy(batch_trial(rngs)), dtype=float)
    if block.ndim < 1 or block.shape[0] != stop - start:
        raise ValueError(
            f"batch kernel returned shape {block.shape} for a chunk of "
            f"{stop - start} trials; expected a leading trial axis"
        )
    return block


# Chunk blocks above this size cross the process boundary through
# POSIX shared memory instead of a pickle copy.
_SHM_THRESHOLD_BYTES = 1 << 20


def _export_block(block: np.ndarray) -> tuple:
    """Package a worker's chunk block for the cheapest transfer home."""
    if block.nbytes >= _SHM_THRESHOLD_BYTES:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True, size=block.nbytes
            )
            view = np.ndarray(
                block.shape, dtype=block.dtype, buffer=segment.buf
            )
            view[...] = block
            name = segment.name
            segment.close()
            return ("shm", name, block.shape, str(block.dtype))
        except (ImportError, OSError):
            pass  # No /dev/shm (or too small): pickle the array.
    return ("array", block)


def _import_block(payload: tuple) -> np.ndarray:
    """Materialise a worker's chunk block in the parent process."""
    if payload[0] == "array":
        return payload[1]
    from multiprocessing import shared_memory

    _, name, shape, dtype = payload
    segment = shared_memory.SharedMemory(name=name)
    try:
        return np.array(
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        )
    finally:
        segment.close()
        segment.unlink()


def _run_chunk_remote(
    trial: TrialFn, seed: int, start: int, stop: int
) -> tuple:
    return _export_block(_run_chunk(trial, seed, start, stop))


def _run_batch_chunk_remote(
    batch_trial: BatchTrialFn, seed: int, start: int, stop: int
) -> tuple:
    return _export_block(_run_batch_chunk(batch_trial, seed, start, stop))


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


# Item types that are trivially picklable, so :func:`parallel_map` can
# route them to workers without serialising each payload up front (a
# full ``pickle.dumps`` probe of every item copies entire arrays just
# to decide the execution path).
_CHEAP_PICKLABLE_TYPES = (
    type(None), bool, int, float, complex, str, bytes,
    np.integer, np.floating, np.bool_,
)


def _item_is_picklable(item: Any, _depth: int = 0) -> bool:
    """Cheap, conservative picklability check for task items.

    Scalars, strings and numeric arrays are accepted by type alone;
    shallow containers are checked element-wise.  Anything else falls
    back to a real pickle probe -- typically a small config object,
    never a bulk payload.
    """
    if isinstance(item, _CHEAP_PICKLABLE_TYPES):
        return True
    if isinstance(item, np.ndarray):
        return item.dtype != object
    if isinstance(item, (tuple, list, frozenset, set)) and _depth < 2:
        return all(_item_is_picklable(v, _depth + 1) for v in item)
    return _is_picklable(item)


def map_trials(
    trial: TrialFn,
    trials: int,
    seed: int = 0,
    jobs: int | None = None,
    chunk_size: int | None = None,
    label: str = "montecarlo",
) -> np.ndarray:
    """Run ``trial`` over independent draws; stack the per-trial values.

    Args:
        trial: Callable receiving a dedicated generator.  Must be
            picklable (a module-level function or ``functools.partial``
            of one) to actually run in worker processes; closures fall
            back to serial execution.
        trials: Number of independent repetitions (>= 1).
        seed: Master seed of the spawn tree.
        jobs: Worker processes; ``None`` reads the ambient
            :class:`~repro.runtime.config.RuntimeConfig`, ``0`` means
            one per CPU.  Any value yields bit-identical results.
        chunk_size: Trials per worker task; ``None`` auto-sizes.
        label: Telemetry label for the run log.

    Returns:
        Array of shape ``(trials,) + value_shape``.
    """
    return _map_chunked(
        _run_chunk, _run_chunk_remote, trial, trials,
        seed=seed, jobs=jobs, chunk_size=chunk_size, label=label,
        kernel="loop",
    )


def _kernel_accepts_backend(fn: Callable) -> bool:
    """Whether a batch kernel has opted into backend execution.

    A kernel opts in by declaring a ``backend`` parameter (directly or
    via ``**kwargs``); :func:`map_trials_batched` only forwards the
    active backend to kernels that did, so an ambient non-numpy
    backend accelerates ported kernels without breaking legacy ones.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "backend" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def map_trials_batched(
    batch_trial: BatchTrialFn,
    trials: int,
    seed: int = 0,
    jobs: int | None = None,
    chunk_size: int | None = None,
    label: str = "montecarlo",
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Run a vectorised kernel over deterministic chunks of trials.

    The batched counterpart of :func:`map_trials`: instead of one
    callable per draw, ``batch_trial`` receives the *list* of per-trial
    child generators of a whole chunk and returns the stacked block of
    that chunk's values, shape ``(len(rngs),) + value_shape``.  A
    conforming kernel draws each trial's variations from its own
    generator (in the same order the scalar trial would -- e.g. via
    :func:`repro.analysis.lognormal.stacked_standard_thetas`) and then
    evaluates the whole stack with fixed-accumulation array math, so
    its output is bit-identical to looping the scalar trial while the
    per-trial Python overhead is paid once per chunk.

    Args:
        batch_trial: Vectorised kernel ``rngs -> (T, ...)`` block.
            Must be picklable (module-level function or a
            ``functools.partial`` of one) to unlock process fan-out.
        trials: Number of independent repetitions (>= 1).
        seed: Master seed of the spawn tree (same tree as
            :func:`map_trials`).
        jobs: Worker processes; ``None`` reads the ambient config.
        chunk_size: Trials per kernel invocation; ``None`` auto-sizes.
            Any value yields bit-identical results; larger chunks
            amortise more Python overhead at more memory per call.
        label: Telemetry label for the run log.
        backend: Array namespace handed to backend-aware kernels
            (``backend=`` parameter); ``None`` reads the ambient
            :class:`~repro.runtime.config.RuntimeConfig`.  The numpy
            default leaves the reference path untouched (bit-identical
            to pre-backend behaviour).  A non-numpy backend is
            forwarded only to kernels that declare a ``backend``
            parameter: an explicit request on an unported kernel
            raises, while an ambient one silently falls back to the
            reference path.  Kernel outputs are always converted back
            to numpy before assembly.

    Returns:
        Array of shape ``(trials,) + value_shape``.
    """
    bk = resolve_backend(
        backend if backend is not None else current_runtime().backend
    )
    if not bk.is_reference:
        if _kernel_accepts_backend(batch_trial):
            batch_trial = functools.partial(batch_trial, backend=bk)
        elif backend is not None:
            raise TypeError(
                f"kernel {getattr(batch_trial, '__name__', batch_trial)!r} "
                "does not accept a 'backend' parameter; port it to "
                "repro.backend or drop the explicit backend argument"
            )
    # Results are host numpy arrays by contract at any backend, so the
    # chunk-assembly helpers allocate numpy on purpose (host boundary).
    return _map_chunked(  # repro-lint: disable=REP010
        _run_batch_chunk, _run_batch_chunk_remote, batch_trial, trials,
        seed=seed, jobs=jobs, chunk_size=chunk_size, label=label,
        kernel="batched",
    )


def _map_chunked(
    run_chunk: Callable[..., np.ndarray],
    run_chunk_remote: Callable[..., tuple],
    fn: Callable,
    trials: int,
    seed: int,
    jobs: int | None,
    chunk_size: int | None,
    label: str,
    kernel: str,
) -> np.ndarray:
    """Shared chunked dispatch of the looped and batched trial paths."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    jobs = resolve_jobs(jobs)
    if chunk_size is None:
        chunk_size = current_runtime().chunk_size
    log = current_run_log()
    bounds = chunk_bounds(trials, jobs, chunk_size)

    t0 = time.perf_counter()
    values: np.ndarray | None = None
    if jobs > 1 and trials > 1 and _is_picklable(fn):
        values = _map_chunks_parallel(
            run_chunk, run_chunk_remote, fn, seed, bounds, jobs, label,
            trials,
        )
    if values is None:
        done = 0
        for start, stop in bounds:
            block = run_chunk(fn, seed, start, stop)
            values = _store_block(values, block, trials, start, stop)
            done += stop - start
            if log is not None:
                log.report_progress(label, done, trials)
    if log is not None:
        log.record_batch(
            label, trials, time.perf_counter() - t0, jobs,
            kernel=kernel,
            chunk_size=bounds[0][1] - bounds[0][0] if bounds else 0,
        )
    return values


def _store_block(
    values: np.ndarray | None,
    block: np.ndarray,
    trials: int,
    start: int,
    stop: int,
) -> np.ndarray:
    """Copy one chunk block into the preallocated result array.

    The output is allocated once, from the first block's value shape,
    and every chunk lands at its trial offset -- no per-trial Python
    list is ever materialised in the parent.
    """
    if values is None:
        values = np.empty((trials,) + block.shape[1:], dtype=block.dtype)
    if block.shape[1:] != values.shape[1:]:
        raise ValueError(
            f"chunk value shape {block.shape[1:]} differs from earlier "
            f"chunks {values.shape[1:]}; trials must return a "
            "consistent shape"
        )
    values[start:stop] = block
    return values


def _map_chunks_parallel(
    run_chunk: Callable[..., np.ndarray],
    run_chunk_remote: Callable[..., tuple],
    fn: Callable,
    seed: int,
    bounds: Sequence[tuple[int, int]],
    jobs: int,
    label: str,
    trials: int,
) -> np.ndarray | None:
    """Fan chunks out over worker processes, reassemble in order.

    Returns ``None`` when worker processes cannot start, signalling the
    caller to run the serial path instead.
    """
    log = current_run_log()
    total = bounds[-1][1] if bounds else 0
    values: np.ndarray | None = None
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(bounds))
        ) as pool:
            futures = [
                pool.submit(run_chunk_remote, fn, seed, start, stop)
                for start, stop in bounds
            ]
            done = 0
            for future, (start, stop) in zip(futures, bounds):
                # Await in submission order: completion order varies
                # run to run, assembly order must not.
                block = _import_block(future.result())
                values = _store_block(values, block, total, start, stop)
                done += stop - start
                if log is not None:
                    log.report_progress(label, done, total)
            return values
    except (OSError, PermissionError):
        # Platforms without working process pools (e.g. missing
        # /dev/shm semaphores) degrade to the serial path.
        return None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    label: str = "tasks",
) -> list[R]:
    """Order-preserving map over independent deterministic tasks.

    Only sound for pure functions: results must not depend on execution
    order or shared mutable state, which is exactly what makes the
    output independent of ``jobs``.  Falls back to a plain in-process
    map when ``jobs == 1``, when ``fn`` (or an item) is unpicklable, or
    when worker processes cannot start.  The callable is pickle-probed
    once; items only get a cheap type check, never a full serialisation
    of bulk array payloads.

    Args:
        fn: Pure function applied to every item.
        items: Task inputs (materialised up front).
        jobs: Worker processes; ``None`` reads the ambient config.
        label: Telemetry label for the run log.

    Returns:
        ``[fn(item) for item in items]``, in input order.
    """
    seq = list(items)
    jobs = resolve_jobs(jobs)
    log = current_run_log()
    t0 = time.perf_counter()
    results: list[R]
    if (
        jobs > 1
        and len(seq) > 1
        and _is_picklable(fn)
        and all(_item_is_picklable(item) for item in seq)
    ):
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(seq))
            ) as pool:
                results = list(pool.map(fn, seq))
        except (OSError, PermissionError):
            results = [fn(item) for item in seq]
    else:
        results = [fn(item) for item in seq]
    if log is not None:
        log.record_batch(label, len(seq), time.perf_counter() - t0, jobs)
    return results
