"""Ambient runtime configuration for the execution engine.

The experiment drivers sit several call layers below the CLI, so the
engine's knobs (worker count, cache location) travel through a context
variable instead of through every function signature.  ``use_runtime``
installs a :class:`RuntimeConfig` for the duration of a ``with`` block;
:func:`current_runtime` reads whatever is installed (a serial,
cache-less default otherwise), which keeps every existing call site
working unchanged.

The configuration deliberately carries *no* randomness and does not
participate in seeding: the executor derives every trial generator
from the experiment seed alone, so changing ``jobs`` or the cache
location can never change a result.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
from pathlib import Path
from typing import Iterator

from repro.config import NODAL_SOLVERS

__all__ = ["RuntimeConfig", "current_runtime", "use_runtime", "resolve_jobs"]


@dataclasses.dataclass(frozen=True)
class RuntimeConfig:
    """Execution-engine settings shared by every runner below the CLI.

    Attributes:
        jobs: Worker processes for Monte-Carlo fan-out; ``1`` (the
            default) runs everything serially in-process, ``0`` means
            "one per CPU".
        cache_dir: Directory for the artifact cache; ``None`` disables
            persistence entirely.
        use_cache: When ``False``, the cache is neither read nor
            written even if ``cache_dir`` is set (the CLI's
            ``--no-cache``).
        chunk_size: Trials per worker task; ``None`` picks a size that
            gives each worker a few chunks for load balancing.
        backend: Array namespace for backend-aware batched kernels
            (``"numpy"`` or ``"torch"``; see :mod:`repro.backend`).
            Kernels that have not opted into backend execution keep
            running the numpy reference path, so flipping this switch
            can accelerate but never break an experiment.  Availability
            is checked lazily at the first backend-aware call.
        nodal_solver: Default solver for ``ir_mode="nodal"`` reads
            (one of :data:`~repro.config.NODAL_SOLVERS`); crossbars
            whose :class:`~repro.config.CrossbarConfig` pins an
            explicit ``nodal_solver`` keep their own.  Like ``backend``,
            this knob never participates in seeding or cache keys:
            every solver answers the same circuit system, so switching
            it changes wall-clock and last-ulp rounding only (see
            ``docs/ir_drop.md`` for the tolerance contract).
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    use_cache: bool = True
    chunk_size: int | None = None
    backend: str = "numpy"
    nodal_solver: str = "lu"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.nodal_solver not in NODAL_SOLVERS:
            raise ValueError(
                f"nodal_solver must be one of {NODAL_SOLVERS}, "
                f"got {self.nodal_solver!r}"
            )

    @property
    def effective_jobs(self) -> int:
        """Worker count with ``0`` resolved to the CPU count."""
        if self.jobs == 0:
            return os.cpu_count() or 1
        return self.jobs


_CURRENT: contextvars.ContextVar[RuntimeConfig] = contextvars.ContextVar(
    "repro_runtime_config", default=RuntimeConfig()
)


def current_runtime() -> RuntimeConfig:
    """The ambient :class:`RuntimeConfig` (serial default if unset)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_runtime(config: RuntimeConfig) -> Iterator[RuntimeConfig]:
    """Install ``config`` as the ambient runtime for a ``with`` block."""
    token = _CURRENT.set(config)
    try:
        yield config
    finally:
        _CURRENT.reset(token)


def resolve_jobs(jobs: int | None) -> int:
    """An explicit ``jobs`` argument, or the ambient one when ``None``."""
    if jobs is None:
        return current_runtime().effective_jobs
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs
