"""Observability for the execution engine: run logs and progress.

Two kinds of records accumulate while a report (or any engine-driven
workload) runs:

* :class:`TrialBatch` -- one per Monte-Carlo dispatch, with trial
  count, wall time, worker count and throughput.
* :class:`ExperimentRecord` -- one per report section, with wall time
  and whether the artifact cache served it.

The records split into a *deterministic* view (``render_summary``:
names, trial counts, cache status -- safe to embed in the report text,
which must be byte-identical across worker counts) and a *timing* view
(``render_timing`` / ``to_json``: wall times and throughput, emitted
on stderr or to a JSON file where nondeterminism is fine).

Like the runtime configuration, the active :class:`RunLog` travels
through a context variable so deep call sites can record into it
without signature changes.  When no log is installed, recording is a
cheap no-op on a throwaway default.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import json
import math
import time
from typing import Callable, Iterator

__all__ = [
    "TrialBatch",
    "ExperimentRecord",
    "RequestRecord",
    "DriftEvent",
    "FleetEvent",
    "RunLog",
    "current_run_log",
    "use_run_log",
]

ProgressCallback = Callable[[str, int, int], None]


@dataclasses.dataclass
class TrialBatch:
    """Telemetry for one Monte-Carlo dispatch.

    Attributes:
        label: Caller-supplied name of the workload.
        trials: Trials executed (0 when served from cache).
        seconds: Wall time of the dispatch.
        jobs: Worker processes used (1 = serial in-process).
        cache_hit: Whether the artifact cache supplied the result.
        kernel: Execution path: ``'loop'`` (one Python callable per
            trial) or ``'batched'`` (vectorised chunk kernel).
        chunk_size: Trials per chunk dispatch (0 when unknown, e.g.
            cache hits and ``parallel_map`` batches).
    """

    label: str
    trials: int
    seconds: float
    jobs: int
    cache_hit: bool = False
    kernel: str = "loop"
    chunk_size: int = 0

    @property
    def trials_per_second(self) -> float:
        if self.seconds <= 0.0 or self.trials == 0:
            return 0.0
        return self.trials / self.seconds


@dataclasses.dataclass
class ExperimentRecord:
    """Telemetry for one report section.

    Attributes:
        name: Experiment key (``fig2`` ... ``table1``).
        seconds: Wall time spent producing the section.
        cache_hit: Whether the section came from the artifact cache.
        cache_key: Stable artifact key (empty when caching is off).
    """

    name: str
    seconds: float
    cache_hit: bool
    cache_key: str = ""


@dataclasses.dataclass
class RequestRecord:
    """Telemetry for one inference request served by ``repro.serve``.

    Attributes:
        latency_s: Submit-to-result wall time.
        queue_s: Portion of the latency spent waiting in the queue.
        batch_size: Size of the microbatch the request rode in.
        ok: ``False`` when the request was dropped (deadline exceeded,
            shutdown) instead of answered.
        label: Which serving lane answered the request (a fleet shard
            replica such as ``"shard2/r0"``; empty for a single-array
            scheduler), so one shared log can split latency per shard.
    """

    latency_s: float
    queue_s: float = 0.0
    batch_size: int = 1
    ok: bool = True
    label: str = ""


@dataclasses.dataclass
class FleetEvent:
    """Telemetry for one fleet health-management action.

    Attributes:
        shard: Index of the shard the action concerns.
        replica: Index of the replica within the shard.
        action: What happened: ``'reprogram'`` (drain + reprogram +
            return to rotation), ``'defer'`` (drifted but recovering it
            would drop the shard below quorum), or ``'kill'`` (replica
            removed from rotation, e.g. a simulated crash).
        seconds: Wall time of the action (drain through re-entry for
            reprograms; the rolling-recovery time the fleet benchmark
            reports).
        discrepancy: Probe discrepancy that motivated the action, when
            one was measured.
        recovered_discrepancy: Probe discrepancy re-measured after a
            reprogram (``None`` for other actions).
    """

    shard: int
    replica: int
    action: str
    seconds: float = 0.0
    discrepancy: float | None = None
    recovered_discrepancy: float | None = None


@dataclasses.dataclass
class DriftEvent:
    """Telemetry for one drift-monitor check that crossed a threshold.

    Attributes:
        discrepancy: Probe-set discrepancy that tripped the monitor
            (the Fig. 2 relative column-output error, measured against
            the programming-time baseline).
        threshold: Policy threshold in force.
        action: What the monitor did: ``'remap'`` (AMP re-pretest and
            reprogram) or ``'alert'`` (detected but no repair path).
        defects: Defect counts reported by the re-pretest, when one ran.
        recovered_discrepancy: Probe discrepancy re-measured after the
            action (``None`` when no repair ran).
    """

    discrepancy: float
    threshold: float
    action: str
    defects: dict = dataclasses.field(default_factory=dict)
    recovered_discrepancy: float | None = None


@dataclasses.dataclass
class RunLog:
    """Structured log of one engine run.

    Attributes:
        experiments: Section records, in execution order.
        batches: Monte-Carlo dispatch records, in execution order.
        progress: Optional callback ``(label, done, total)`` invoked as
            trial chunks complete.
    """

    experiments: list[ExperimentRecord] = dataclasses.field(
        default_factory=list
    )
    batches: list[TrialBatch] = dataclasses.field(default_factory=list)
    requests: list[RequestRecord] = dataclasses.field(default_factory=list)
    drift_events: list[DriftEvent] = dataclasses.field(default_factory=list)
    fleet_events: list[FleetEvent] = dataclasses.field(default_factory=list)
    progress: ProgressCallback | None = None

    # -- recording -----------------------------------------------------
    def record_experiment(
        self,
        name: str,
        seconds: float,
        cache_hit: bool,
        cache_key: str = "",
    ) -> ExperimentRecord:
        record = ExperimentRecord(
            name=name, seconds=seconds, cache_hit=cache_hit,
            cache_key=cache_key,
        )
        self.experiments.append(record)
        return record

    def record_batch(
        self,
        label: str,
        trials: int,
        seconds: float,
        jobs: int,
        cache_hit: bool = False,
        kernel: str = "loop",
        chunk_size: int = 0,
    ) -> TrialBatch:
        batch = TrialBatch(
            label=label, trials=trials, seconds=seconds, jobs=jobs,
            cache_hit=cache_hit, kernel=kernel, chunk_size=chunk_size,
        )
        self.batches.append(batch)
        return batch

    def record_request(
        self,
        latency_s: float,
        queue_s: float = 0.0,
        batch_size: int = 1,
        ok: bool = True,
        label: str = "",
    ) -> RequestRecord:
        record = RequestRecord(
            latency_s=latency_s, queue_s=queue_s, batch_size=batch_size,
            ok=ok, label=label,
        )
        self.requests.append(record)
        return record

    def record_fleet(
        self,
        shard: int,
        replica: int,
        action: str,
        seconds: float = 0.0,
        discrepancy: float | None = None,
        recovered_discrepancy: float | None = None,
    ) -> FleetEvent:
        event = FleetEvent(
            shard=shard,
            replica=replica,
            action=action,
            seconds=seconds,
            discrepancy=discrepancy,
            recovered_discrepancy=recovered_discrepancy,
        )
        self.fleet_events.append(event)
        return event

    def record_drift(
        self,
        discrepancy: float,
        threshold: float,
        action: str,
        defects: dict | None = None,
        recovered_discrepancy: float | None = None,
    ) -> DriftEvent:
        event = DriftEvent(
            discrepancy=discrepancy,
            threshold=threshold,
            action=action,
            defects=dict(defects) if defects else {},
            recovered_discrepancy=recovered_discrepancy,
        )
        self.drift_events.append(event)
        return event

    def report_progress(self, label: str, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(label, done, total)

    @contextlib.contextmanager
    def time_experiment(self, name: str) -> Iterator[ExperimentRecord]:
        """Time a section; the yielded record is appended on exit."""
        record = ExperimentRecord(
            name=name, seconds=0.0, cache_hit=False
        )
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - t0
            self.experiments.append(record)

    # -- aggregates ----------------------------------------------------
    @property
    def recomputed_experiments(self) -> int:
        """Sections actually executed (the cache-hit ones excluded)."""
        return sum(1 for r in self.experiments if not r.cache_hit)

    @property
    def cached_experiments(self) -> int:
        return sum(1 for r in self.experiments if r.cache_hit)

    @property
    def total_trials(self) -> int:
        return sum(b.trials for b in self.batches)

    @property
    def dropped_requests(self) -> int:
        return sum(1 for r in self.requests if not r.ok)

    def latency_percentiles(
        self, quantiles: tuple[int, ...] = (50, 95, 99)
    ) -> dict[str, float]:
        """Nearest-rank latency percentiles over answered requests."""
        latencies = sorted(r.latency_s for r in self.requests if r.ok)
        if not latencies:
            return {f"p{q}": 0.0 for q in quantiles}
        out = {}
        for q in quantiles:
            rank = max(1, math.ceil(q / 100.0 * len(latencies)))
            out[f"p{q}"] = latencies[rank - 1]
        return out

    def serve_summary(self) -> dict:
        """Aggregate serving telemetry (latency, drops, drift)."""
        answered = [r for r in self.requests if r.ok]
        total_latency = sum(r.latency_s for r in answered)
        summary = {
            "requests": len(self.requests),
            "answered": len(answered),
            "dropped": self.dropped_requests,
            "mean_latency_s": (
                total_latency / len(answered) if answered else 0.0
            ),
            "mean_batch_size": (
                sum(r.batch_size for r in answered) / len(answered)
                if answered else 0.0
            ),
            "drift_events": len(self.drift_events),
            "remaps": sum(
                1 for e in self.drift_events if e.action == "remap"
            ),
        }
        summary.update(self.latency_percentiles())
        if self.fleet_events:
            summary["fleet_events"] = len(self.fleet_events)
            summary["reprograms"] = sum(
                1 for e in self.fleet_events if e.action == "reprogram"
            )
        return summary

    def label_summary(self) -> dict[str, dict]:
        """Per-label (per fleet shard replica) request breakdown.

        Labels sort lexicographically so the summary is deterministic
        for a fixed request history.
        """
        by_label: dict[str, list[RequestRecord]] = {}
        for record in self.requests:
            if record.label:
                by_label.setdefault(record.label, []).append(record)
        summary = {}
        for label in sorted(by_label):
            records = by_label[label]
            answered = [r for r in records if r.ok]
            summary[label] = {
                "requests": len(records),
                "answered": len(answered),
                "dropped": len(records) - len(answered),
                "mean_latency_s": (
                    sum(r.latency_s for r in answered) / len(answered)
                    if answered else 0.0
                ),
            }
        return summary

    # -- rendering -----------------------------------------------------
    def render_summary(self) -> str:
        """Deterministic run-log section (no wall times).

        Safe to embed in the report body: for a fixed cache state the
        text depends only on what ran and what the cache served, never
        on how fast it ran or how many workers ran it.
        """
        lines = []
        for r in self.experiments:
            status = "cached" if r.cache_hit else "computed"
            key = f"  key={r.cache_key[:12]}" if r.cache_key else ""
            lines.append(f"{r.name:<8s} {status:<8s}{key}")
        lines.append(
            f"({len(self.experiments)} experiments: "
            f"{self.recomputed_experiments} computed, "
            f"{self.cached_experiments} cached)"
        )
        return "\n".join(lines)

    def render_timing(self) -> str:
        """Wall-time view for stderr (not embedded in the report)."""
        lines = []
        for r in self.experiments:
            status = "cached" if r.cache_hit else "computed"
            lines.append(f"{r.name:<8s} {r.seconds:8.2f}s  {status}")
        for b in self.batches:
            rate = (
                f"{b.trials_per_second:9.1f} trials/s"
                if b.trials else "    (cache)"
            )
            lines.append(
                f"  mc {b.label:<24s} {b.trials:6d} trials "
                f"{b.seconds:8.2f}s  jobs={b.jobs} "
                f"kernel={b.kernel} {rate}"
            )
        total = sum(r.seconds for r in self.experiments)
        lines.append(
            f"total {total:.2f}s over {len(self.experiments)} experiments, "
            f"{self.total_trials} Monte-Carlo trials"
        )
        if self.requests:
            s = self.serve_summary()
            lines.append(
                f"serve {s['answered']}/{s['requests']} answered "
                f"({s['dropped']} dropped), "
                f"p50 {s['p50'] * 1e3:.2f}ms p95 {s['p95'] * 1e3:.2f}ms "
                f"p99 {s['p99'] * 1e3:.2f}ms, "
                f"{s['drift_events']} drift events ({s['remaps']} remaps)"
            )
        if self.fleet_events:
            reprograms = [
                e for e in self.fleet_events if e.action == "reprogram"
            ]
            recovery = sum(e.seconds for e in reprograms)
            lines.append(
                f"fleet {len(self.fleet_events)} events "
                f"({len(reprograms)} rolling reprograms, "
                f"{recovery:.2f}s total recovery)"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Structured run log (one JSON document)."""
        return json.dumps(
            {
                "experiments": [
                    dataclasses.asdict(r) for r in self.experiments
                ],
                "batches": [dataclasses.asdict(b) for b in self.batches],
                "drift_events": [
                    dataclasses.asdict(e) for e in self.drift_events
                ],
                "fleet_events": [
                    dataclasses.asdict(e) for e in self.fleet_events
                ],
                "recomputed_experiments": self.recomputed_experiments,
                "cached_experiments": self.cached_experiments,
                "total_trials": self.total_trials,
                "serve": self.serve_summary() if self.requests else None,
            },
            indent=2,
            sort_keys=True,
        )


_CURRENT: contextvars.ContextVar[RunLog | None] = contextvars.ContextVar(
    "repro_run_log", default=None
)


def current_run_log() -> RunLog | None:
    """The ambient :class:`RunLog`, or ``None`` when not observing."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_run_log(log: RunLog) -> Iterator[RunLog]:
    """Install ``log`` as the ambient run log for a ``with`` block."""
    token = _CURRENT.set(log)
    try:
        yield log
    finally:
        _CURRENT.reset(token)
