"""Observability for the execution engine: run logs and progress.

Two kinds of records accumulate while a report (or any engine-driven
workload) runs:

* :class:`TrialBatch` -- one per Monte-Carlo dispatch, with trial
  count, wall time, worker count and throughput.
* :class:`ExperimentRecord` -- one per report section, with wall time
  and whether the artifact cache served it.

The records split into a *deterministic* view (``render_summary``:
names, trial counts, cache status -- safe to embed in the report text,
which must be byte-identical across worker counts) and a *timing* view
(``render_timing`` / ``to_json``: wall times and throughput, emitted
on stderr or to a JSON file where nondeterminism is fine).

Like the runtime configuration, the active :class:`RunLog` travels
through a context variable so deep call sites can record into it
without signature changes.  When no log is installed, recording is a
cheap no-op on a throwaway default.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import json
import time
from typing import Callable, Iterator

__all__ = [
    "TrialBatch",
    "ExperimentRecord",
    "RunLog",
    "current_run_log",
    "use_run_log",
]

ProgressCallback = Callable[[str, int, int], None]


@dataclasses.dataclass
class TrialBatch:
    """Telemetry for one Monte-Carlo dispatch.

    Attributes:
        label: Caller-supplied name of the workload.
        trials: Trials executed (0 when served from cache).
        seconds: Wall time of the dispatch.
        jobs: Worker processes used (1 = serial in-process).
        cache_hit: Whether the artifact cache supplied the result.
    """

    label: str
    trials: int
    seconds: float
    jobs: int
    cache_hit: bool = False

    @property
    def trials_per_second(self) -> float:
        if self.seconds <= 0.0 or self.trials == 0:
            return 0.0
        return self.trials / self.seconds


@dataclasses.dataclass
class ExperimentRecord:
    """Telemetry for one report section.

    Attributes:
        name: Experiment key (``fig2`` ... ``table1``).
        seconds: Wall time spent producing the section.
        cache_hit: Whether the section came from the artifact cache.
        cache_key: Stable artifact key (empty when caching is off).
    """

    name: str
    seconds: float
    cache_hit: bool
    cache_key: str = ""


@dataclasses.dataclass
class RunLog:
    """Structured log of one engine run.

    Attributes:
        experiments: Section records, in execution order.
        batches: Monte-Carlo dispatch records, in execution order.
        progress: Optional callback ``(label, done, total)`` invoked as
            trial chunks complete.
    """

    experiments: list[ExperimentRecord] = dataclasses.field(
        default_factory=list
    )
    batches: list[TrialBatch] = dataclasses.field(default_factory=list)
    progress: ProgressCallback | None = None

    # -- recording -----------------------------------------------------
    def record_experiment(
        self,
        name: str,
        seconds: float,
        cache_hit: bool,
        cache_key: str = "",
    ) -> ExperimentRecord:
        record = ExperimentRecord(
            name=name, seconds=seconds, cache_hit=cache_hit,
            cache_key=cache_key,
        )
        self.experiments.append(record)
        return record

    def record_batch(
        self,
        label: str,
        trials: int,
        seconds: float,
        jobs: int,
        cache_hit: bool = False,
    ) -> TrialBatch:
        batch = TrialBatch(
            label=label, trials=trials, seconds=seconds, jobs=jobs,
            cache_hit=cache_hit,
        )
        self.batches.append(batch)
        return batch

    def report_progress(self, label: str, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(label, done, total)

    @contextlib.contextmanager
    def time_experiment(self, name: str) -> Iterator[ExperimentRecord]:
        """Time a section; the yielded record is appended on exit."""
        record = ExperimentRecord(
            name=name, seconds=0.0, cache_hit=False
        )
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - t0
            self.experiments.append(record)

    # -- aggregates ----------------------------------------------------
    @property
    def recomputed_experiments(self) -> int:
        """Sections actually executed (the cache-hit ones excluded)."""
        return sum(1 for r in self.experiments if not r.cache_hit)

    @property
    def cached_experiments(self) -> int:
        return sum(1 for r in self.experiments if r.cache_hit)

    @property
    def total_trials(self) -> int:
        return sum(b.trials for b in self.batches)

    # -- rendering -----------------------------------------------------
    def render_summary(self) -> str:
        """Deterministic run-log section (no wall times).

        Safe to embed in the report body: for a fixed cache state the
        text depends only on what ran and what the cache served, never
        on how fast it ran or how many workers ran it.
        """
        lines = []
        for r in self.experiments:
            status = "cached" if r.cache_hit else "computed"
            key = f"  key={r.cache_key[:12]}" if r.cache_key else ""
            lines.append(f"{r.name:<8s} {status:<8s}{key}")
        lines.append(
            f"({len(self.experiments)} experiments: "
            f"{self.recomputed_experiments} computed, "
            f"{self.cached_experiments} cached)"
        )
        return "\n".join(lines)

    def render_timing(self) -> str:
        """Wall-time view for stderr (not embedded in the report)."""
        lines = []
        for r in self.experiments:
            status = "cached" if r.cache_hit else "computed"
            lines.append(f"{r.name:<8s} {r.seconds:8.2f}s  {status}")
        for b in self.batches:
            rate = (
                f"{b.trials_per_second:9.1f} trials/s"
                if b.trials else "    (cache)"
            )
            lines.append(
                f"  mc {b.label:<24s} {b.trials:6d} trials "
                f"{b.seconds:8.2f}s  jobs={b.jobs} {rate}"
            )
        total = sum(r.seconds for r in self.experiments)
        lines.append(
            f"total {total:.2f}s over {len(self.experiments)} experiments, "
            f"{self.total_trials} Monte-Carlo trials"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Structured run log (one JSON document)."""
        return json.dumps(
            {
                "experiments": [
                    dataclasses.asdict(r) for r in self.experiments
                ],
                "batches": [dataclasses.asdict(b) for b in self.batches],
                "recomputed_experiments": self.recomputed_experiments,
                "cached_experiments": self.cached_experiments,
                "total_trials": self.total_trials,
            },
            indent=2,
            sort_keys=True,
        )


_CURRENT: contextvars.ContextVar[RunLog | None] = contextvars.ContextVar(
    "repro_run_log", default=None
)


def current_run_log() -> RunLog | None:
    """The ambient :class:`RunLog`, or ``None`` when not observing."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_run_log(log: RunLog) -> Iterator[RunLog]:
    """Install ``log`` as the ambient run log for a ``with`` block."""
    token = _CURRENT.set(log)
    try:
        yield log
    finally:
        _CURRENT.reset(token)
