"""``repro.runtime`` -- the execution engine for variation studies.

Every robustness number in the paper is a Monte-Carlo average over
fabrication draws; this subsystem is the shared machinery that runs
those draws fast without ever changing them:

* :mod:`repro.runtime.config` -- the ambient :class:`RuntimeConfig`
  (worker count, cache location) installed by the CLI and read by the
  drivers, so knobs travel without signature churn.
* :mod:`repro.runtime.executor` -- deterministic chunked fan-out over
  a process pool; ``jobs=1`` and ``jobs=N`` are bit-identical because
  trial ``i`` always gets the generator at spawn position ``i``.
* :mod:`repro.runtime.cache` -- persistent artifacts keyed on a stable
  hash of (trial config, seed, trial count, package version), so
  re-runs skip unchanged experiments.
* :mod:`repro.runtime.telemetry` -- run logs, progress callbacks and
  throughput counters; the deterministic part is embedded in the
  report, the timing part goes to stderr / JSON.
"""

from repro.runtime.cache import ArtifactCache, get_cache, stable_key
from repro.runtime.config import (
    RuntimeConfig,
    current_runtime,
    resolve_jobs,
    use_runtime,
)
from repro.runtime.executor import (
    chunk_bounds,
    map_trials,
    map_trials_batched,
    parallel_map,
    trial_seed_sequence,
)
from repro.runtime.telemetry import (
    DriftEvent,
    ExperimentRecord,
    RequestRecord,
    RunLog,
    TrialBatch,
    current_run_log,
    use_run_log,
)

__all__ = [
    "ArtifactCache",
    "DriftEvent",
    "ExperimentRecord",
    "RequestRecord",
    "RunLog",
    "RuntimeConfig",
    "TrialBatch",
    "chunk_bounds",
    "current_run_log",
    "current_runtime",
    "get_cache",
    "map_trials",
    "map_trials_batched",
    "parallel_map",
    "resolve_jobs",
    "stable_key",
    "trial_seed_sequence",
    "use_run_log",
    "use_runtime",
]
