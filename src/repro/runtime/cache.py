"""Persistent artifact cache keyed on stable configuration hashes.

Re-running ``python -m repro report`` recomputes every experiment from
scratch even when nothing changed.  This cache closes that gap: a
result is stored under a key derived from everything that determines
it -- the trial configuration (typically a frozen dataclass), the
master seed, the trial count and the package version -- so a re-run
with identical inputs is a pure read, while *any* change to the
configuration or an upgrade of the package silently invalidates the
entry by changing its key.

Two payload shapes cover everything the engine produces: JSON
documents (report sections, metadata) and ``.npz`` array bundles
(Monte-Carlo value arrays).  Entries are written atomically (temp file
+ rename) so a crashed run never leaves a truncated artifact behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["stable_key", "ArtifactCache", "get_cache"]

# Bump when the on-disk layout or hashing scheme changes; part of every
# key, so old layouts are abandoned rather than misread.
_FORMAT_VERSION = 1


def _package_version() -> str:
    # Lazy: repro/__init__ defines __version__ after its re-exports, so
    # reading it at import time would race package initialisation.
    import repro

    return getattr(repro, "__version__", "0")


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-stable primitives for hashing.

    Dataclasses hash as ``{class name: {field: value}}`` so two config
    types with identical fields cannot collide; arrays hash by shape
    and exact contents; floats keep full precision via ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            type(obj).__name__: {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        }
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(obj).tobytes()
            ).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        # repr round-trips doubles exactly; 0.1 != 0.1000000001.
        return repr(float(obj))
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!r}; "
        "use dataclasses, mappings, sequences, scalars or arrays"
    )


def stable_key(kind: str, config: Any, version: str | None = None) -> str:
    """Deterministic hex key for an artifact.

    Args:
        kind: Artifact namespace (``"montecarlo"``, ``"section"``...).
        config: Everything that determines the result -- typically a
            dict of {config dataclass, seed, trials}.
        version: Package version baked into the key (the installed
            :data:`repro.__version__` when omitted), so upgrades
            invalidate every prior artifact.
    """
    payload = {
        "kind": kind,
        "config": _canonical(config),
        "version": version if version is not None else _package_version(),
        "format": _FORMAT_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Directory-backed artifact store with hit/miss accounting.

    Attributes:
        root: Cache directory (created lazily on first write).
        hits: Successful reads this process.
        misses: Failed reads this process.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

    def make_key(
        self, kind: str, config: Any, version: str | None = None
    ) -> str:
        """See :func:`stable_key`."""
        return stable_key(kind, config, version)

    def _path(self, key: str, suffix: str) -> Path:
        # Two-level fan-out keeps directory listings manageable.
        return self.root / key[:2] / f"{key}{suffix}"

    def _atomic_write(self, path: Path, write) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                write(f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- JSON payloads -------------------------------------------------
    def get_json(self, key: str) -> Any | None:
        """The stored document, or ``None`` on a miss."""
        path = self._path(key, ".json")
        try:
            with open(path, encoding="utf-8") as f:
                value = json.load(f)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put_json(self, key: str, obj: Any) -> Path:
        """Persist a JSON-serialisable document under ``key``."""
        path = self._path(key, ".json")
        blob = json.dumps(obj, sort_keys=True).encode("utf-8")
        self._atomic_write(path, lambda f: f.write(blob))
        return path

    # -- array payloads ------------------------------------------------
    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """The stored array bundle, or ``None`` on a miss."""
        path = self._path(key, ".npz")
        try:
            with np.load(path) as npz:
                value = {name: npz[name] for name in npz.files}
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put_arrays(self, key: str, **arrays: np.ndarray) -> Path:
        """Persist named arrays under ``key`` (compressed ``.npz``)."""
        path = self._path(key, ".npz")
        self._atomic_write(
            path, lambda f: np.savez_compressed(f, **arrays)
        )
        return path

    # -- maintenance ---------------------------------------------------
    def entries(self) -> list[Path]:
        """Every artifact file in the cache (stale ``.tmp`` included)."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*/*") if p.is_file())

    def stats(self) -> dict:
        """Size and composition summary of the on-disk cache."""
        files = self.entries()
        by_suffix: dict[str, int] = {}
        total = 0
        keys = set()
        for path in files:
            total += path.stat().st_size
            by_suffix[path.suffix] = by_suffix.get(path.suffix, 0) + 1
            if path.suffix in (".json", ".npz"):
                keys.add(path.stem)
        return {
            "root": str(self.root),
            "files": len(files),
            "keys": len(keys),
            "total_bytes": total,
            "by_suffix": dict(sorted(by_suffix.items())),
        }

    def prune(self, max_size_mb: float) -> dict:
        """Evict oldest entries until the cache fits under a size cap.

        Files sharing a key (the ``.json`` / ``.npz`` halves of one
        artifact) are evicted together -- a half-deleted artifact would
        read as a confusing partial miss.  Eviction order is
        oldest-by-mtime (of the newest file in each group), so recently
        refreshed artifacts survive.

        Args:
            max_size_mb: Target cache size in megabytes (>= 0).

        Returns:
            A summary dict with ``removed_keys``, ``removed_files``,
            ``freed_bytes`` and ``total_bytes`` after pruning.
        """
        if max_size_mb < 0:
            raise ValueError(f"max_size_mb must be >= 0, got {max_size_mb}")
        cap = int(max_size_mb * 1024 * 1024)
        groups: dict[str, list[Path]] = {}
        for path in self.entries():
            groups.setdefault(path.stem, []).append(path)
        sized = []
        total = 0
        for stem, paths in groups.items():
            size = sum(p.stat().st_size for p in paths)
            mtime = max(p.stat().st_mtime for p in paths)
            total += size
            sized.append((mtime, stem, paths, size))
        sized.sort(key=lambda item: (item[0], item[1]))
        removed_keys = 0
        removed_files = 0
        freed = 0
        for _, _, paths, size in sized:
            if total <= cap:
                break
            for path in paths:
                try:
                    path.unlink()
                    removed_files += 1
                except OSError:
                    continue
            removed_keys += 1
            total -= size
            freed += size
        return {
            "removed_keys": removed_keys,
            "removed_files": removed_files,
            "freed_bytes": freed,
            "total_bytes": total,
        }


def get_cache() -> ArtifactCache | None:
    """The cache implied by the ambient runtime config, if any.

    Returns ``None`` when no ``cache_dir`` is configured or caching is
    disabled, so call sites can use ``if cache := get_cache():``.
    """
    from repro.runtime.config import current_runtime

    cfg = current_runtime()
    if cfg.cache_dir is None or not cfg.use_cache:
        return None
    return ArtifactCache(cfg.cache_dir)
