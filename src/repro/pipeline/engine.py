"""Staged pipeline execution: chained lanes, digital glue, recall loop.

A pipeline forward pass alternates analog reads with digital work:

    DAC -> layer-0 tiles -> sense/ADC -> scale -> activation ->
    DAC -> layer-1 tiles -> sense/ADC -> scale -> scores

:class:`PipelineEngine` runs that chain over abstract *lanes* — any
object with ``submit(x, deadline_s) -> Future`` — so the same engine
drives both deployment shapes:

* **Served**: each lane is a :class:`~repro.fleet.service.FleetService`
  (scatter-gather routing, batching, backpressure, per-layer drift
  monitors).  Stages chain through future callbacks: a query occupies
  no thread between reads, and layer ``k+1`` starts batching a query
  the moment layer ``k`` answers it.
* **Offline**: each lane is a :class:`DirectLane` over the restored
  :class:`~repro.xbar.tiling.TiledPair` hardware.  Because both
  deployments run *this same engine* and the routed read is
  bit-identical to the direct tiled read, served results equal offline
  results float for float.

For BSB pipelines the engine iterates the saturating recall dynamics,
driving the two bipolar phases (positive and negative half-states)
through the single weight layer each iteration, exactly as the offline
:func:`~repro.nn.bsb.bsb_recall` hardware loop does.
"""

from __future__ import annotations

import concurrent.futures
import time

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.lint.sanitize import make_lock
from repro.nn.bsb import BSBConfig, BSBResult

__all__ = [
    "DirectLane",
    "PipelineEngine",
    "offline_engine",
    "stage_activation",
]


def stage_activation(out_scaled, gain: float,
                     xp: ArrayBackend | str | None = None):
    """Digital inter-layer activation: ReLU, gain, clamp to [0, 1].

    The scaled layer output re-enters the next crossbar as word-line
    drives, so it must land in [0, 1]; the calibrated ``gain``
    normalises the activation range first (the same expression
    :meth:`~repro.nn.mlp.MLPOnCrossbars.scores` computes, kept
    identical so the pipeline is bit-compatible with the offline
    reference).  ``xp`` selects the array namespace (default: the
    bit-identical numpy reference path).
    """
    bk = resolve_backend(xp)
    return bk.clip(
        bk.maximum(out_scaled, 0.0) * gain, 0.0, 1.0
    )


class DirectLane:
    """Synchronous in-process lane over restored tile hardware.

    The offline counterpart of a served fleet layer: ``submit``
    answers immediately with a resolved future, reading through the
    exact :class:`~repro.xbar.tiling.TiledPair` restore of the layer's
    golden snapshot.  Deadlines are ignored — there is no queue to
    wait in.

    Args:
        tiled: Restored layer hardware
            (:meth:`~repro.fleet.plan.ProgrammedFleet.build_tiled`).
        ir_mode: Read-fidelity model for every read.
        backend: Array namespace forwarded to the tiled read path.
    """

    def __init__(self, tiled, ir_mode: str = "ideal",
                 backend: ArrayBackend | str | None = None):
        self.tiled = tiled
        self.ir_mode = ir_mode
        self.backend = backend

    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(
                self.tiled.matvec(
                    np.asarray(x, dtype=float), self.ir_mode,
                    backend=self.backend,
                )
            )
        except Exception as exc:  # pragma: no cover - hardware faults
            future.set_exception(exc)
        return future


class PipelineEngine:
    """Drives the staged forward pass over per-layer lanes.

    Args:
        lanes: One lane per weight layer, in forward order (a
            :class:`~repro.fleet.service.FleetService` or
            :class:`DirectLane`).
        scales: Digital restore gain per layer.
        kind: ``'mlp'`` (feed-forward chain) or ``'bsb'`` (iterated
            recall on a single layer).
        hidden_gain: Calibrated inter-layer gain (MLP).
        dynamics: Recall dynamics (required for ``'bsb'``).
        xp: Array namespace for the digital activation stage; the
            default numpy reference path is what the bit-identity
            contract is stated against.
    """

    def __init__(
        self,
        lanes: list,
        scales: list[float],
        kind: str = "mlp",
        hidden_gain: float = 1.0,
        dynamics: BSBConfig | None = None,
        xp: ArrayBackend | str | None = None,
    ):
        if not lanes:
            raise ValueError("a pipeline needs at least one lane")
        if len(lanes) != len(scales):
            raise ValueError(
                f"{len(lanes)} lanes but {len(scales)} scales"
            )
        if kind not in ("mlp", "bsb"):
            raise ValueError(f"unknown pipeline kind {kind!r}")
        if kind == "bsb":
            if dynamics is None:
                raise ValueError("a BSB pipeline needs its dynamics")
            if len(lanes) != 1:
                raise ValueError(
                    "BSB recall iterates a single weight layer"
                )
        self.lanes = list(lanes)
        self.scales = [float(s) for s in scales]
        self.kind = kind
        self.hidden_gain = float(hidden_gain)
        self.dynamics = dynamics
        self.xp = xp
        # Recall telemetry, written by lane worker callbacks and read
        # by status/stats callers; one leaf lock guards every access.
        self._state = make_lock("pipeline-state")
        self._recalls = 0  # guarded-by: _state
        self._recalls_converged = 0  # guarded-by: _state
        self._recall_iterations = 0  # guarded-by: _state

    # -- feed-forward chain --------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Start one query through the staged chain.

        For ``'mlp'`` the future resolves to the score vector; for
        ``'bsb'`` to the recalled state vector (use
        :meth:`submit_recall` for the full :class:`BSBResult`).  The
        deadline budget spans the *whole* chain: each stage is
        submitted with whatever time remains.
        """
        if self.kind == "bsb":
            inner = self.submit_recall(x, deadline_s)
            done: concurrent.futures.Future = concurrent.futures.Future()
            inner.add_done_callback(
                lambda f: self._adapt_recall(done, f)
            )
            return done
        done = concurrent.futures.Future()
        deadline = (
            None if deadline_s is None
            else time.monotonic() + deadline_s
        )
        self._stage(0, np.asarray(x, dtype=float), deadline, done)
        return done

    @staticmethod
    def _remaining(deadline: float | None) -> float | None:
        return (
            None if deadline is None else deadline - time.monotonic()
        )

    def _stage(
        self,
        index: int,
        x: np.ndarray,
        deadline: float | None,
        done: concurrent.futures.Future,
    ) -> None:
        try:
            future = self.lanes[index].submit(
                x, self._remaining(deadline)
            )
        except Exception as exc:
            done.set_exception(exc)
            return
        future.add_done_callback(
            lambda f: self._on_stage(index, deadline, done, f)
        )

    def _on_stage(  # repro-lint: thread=worker
        self,
        index: int,
        deadline: float | None,
        done: concurrent.futures.Future,
        future: concurrent.futures.Future,
    ) -> None:
        exc = future.exception()
        if exc is not None:
            done.set_exception(exc)
            return
        out = (
            np.asarray(future.result(), dtype=float)
            * self.scales[index]
        )
        if index + 1 == len(self.lanes):
            done.set_result(out)
            return
        self._stage(
            index + 1,
            stage_activation(out, self.hidden_gain, xp=self.xp),
            deadline,
            done,
        )

    # -- BSB recall loop -----------------------------------------------
    def submit_recall(
        self, probe: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Start one recall; the future resolves to a :class:`BSBResult`.

        Each iteration drives the positive then the negative phase of
        the current state through the weight layer (word lines accept
        [0, 1] drives), recombines them digitally, applies the
        saturating update, and either stops at a corner or resubmits —
        the same float sequence as the offline bipolar
        :func:`~repro.nn.bsb.bsb_recall` loop.
        """
        if self.kind != "bsb":
            raise ValueError("recall is only defined for BSB pipelines")
        done: concurrent.futures.Future = concurrent.futures.Future()
        deadline = (
            None if deadline_s is None
            else time.monotonic() + deadline_s
        )
        state = np.clip(np.asarray(probe, dtype=float), -1.0, 1.0)
        self._recall_iterate(state, 1, deadline, done)
        return done

    @staticmethod
    def _adapt_recall(  # repro-lint: thread=worker
        done: concurrent.futures.Future,
        future: concurrent.futures.Future,
    ) -> None:
        exc = future.exception()
        if exc is not None:
            done.set_exception(exc)
        else:
            done.set_result(future.result().state)

    def _recall_iterate(
        self,
        state: np.ndarray,
        iteration: int,
        deadline: float | None,
        done: concurrent.futures.Future,
    ) -> None:
        try:
            future = self.lanes[0].submit(
                np.clip(state, 0.0, 1.0), self._remaining(deadline)
            )
        except Exception as exc:
            done.set_exception(exc)
            return
        future.add_done_callback(
            lambda f: self._recall_pos(
                state, iteration, deadline, done, f
            )
        )

    def _recall_pos(  # repro-lint: thread=worker
        self,
        state: np.ndarray,
        iteration: int,
        deadline: float | None,
        done: concurrent.futures.Future,
        future: concurrent.futures.Future,
    ) -> None:
        exc = future.exception()
        if exc is not None:
            done.set_exception(exc)
            return
        pos = np.asarray(future.result(), dtype=float)
        try:
            neg_future = self.lanes[0].submit(
                np.clip(-state, 0.0, 1.0), self._remaining(deadline)
            )
        except Exception as submit_exc:
            done.set_exception(submit_exc)
            return
        neg_future.add_done_callback(
            lambda f: self._recall_neg(
                state, pos, iteration, deadline, done, f
            )
        )

    def _recall_neg(  # repro-lint: thread=worker
        self,
        state: np.ndarray,
        pos: np.ndarray,
        iteration: int,
        deadline: float | None,
        done: concurrent.futures.Future,
        future: concurrent.futures.Future,
    ) -> None:
        exc = future.exception()
        if exc is not None:
            done.set_exception(exc)
            return
        neg = np.asarray(future.result(), dtype=float)
        cfg = self.dynamics
        # Same expression order as the offline hardware loop:
        # mv = (pos - neg) * scale, then the saturating update.
        mv = (pos - neg) * self.scales[0]
        updated = np.clip(
            cfg.alpha * mv + cfg.lam * state, -1.0, 1.0
        )
        if np.all(np.abs(updated) >= 1.0 - 1e-12):
            self._record_recall(iteration, True)
            done.set_result(BSBResult(
                state=updated, iterations=iteration, converged=True,
            ))
        elif iteration >= cfg.max_iterations:
            self._record_recall(cfg.max_iterations, False)
            done.set_result(BSBResult(
                state=updated, iterations=cfg.max_iterations,
                converged=False,
            ))
        else:
            self._recall_iterate(updated, iteration + 1, deadline, done)

    def _record_recall(self, iterations: int, converged: bool) -> None:
        with self._state:
            self._recalls += 1
            self._recall_iterations += int(iterations)
            if converged:
                self._recalls_converged += 1

    def recall_stats(self) -> dict:
        """Aggregate recall telemetry (count, convergence, iterations)."""
        with self._state:
            recalls = self._recalls
            converged = self._recalls_converged
            iterations = self._recall_iterations
        return {
            "recalls": recalls,
            "converged": converged,
            "mean_iterations": (
                iterations / recalls if recalls else 0.0
            ),
        }

    # -- synchronous conveniences --------------------------------------
    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Submit one query and wait for its result vector."""
        return self.submit(x, deadline_s).result(timeout=timeout)

    def recall(
        self,
        probe: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> BSBResult:
        """Run one recall to completion and return the full result."""
        return self.submit_recall(probe, deadline_s).result(
            timeout=timeout
        )

    def forward(
        self, x: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Run a whole batch, one chained query per row.

        Per-row submission lets every layer's schedulers pack their
        own batches; results are still bit-identical to single-query
        runs because every read and digital stage in the chain is
        batch-invariant.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = x[None, :] if single else x
        futures = [self.submit(row) for row in xb]
        out = np.stack(
            [f.result(timeout=timeout) for f in futures], axis=0
        )
        return out[0] if single else out


def offline_engine(
    artifact,
    ir_mode: str | None = None,
    backend: ArrayBackend | str | None = None,
) -> PipelineEngine:
    """The in-process reference deployment of a programmed pipeline.

    Restores every layer's golden snapshot into a
    :class:`~repro.xbar.tiling.TiledPair` and runs the same
    :class:`PipelineEngine` over :class:`DirectLane` adapters.  Because
    the routed fleet read is bit-identical to the direct tiled read,
    a :class:`~repro.pipeline.service.PipelineService` over the same
    artifact answers every query with exactly these floats — this
    engine is the ground truth the served pipeline is tested against.

    Args:
        artifact: A :class:`~repro.pipeline.plan.PipelineArtifact`.
        ir_mode: Read-model override (the artifact's mode when
            ``None``).
        backend: Array namespace for the tiled reads.
    """
    mode = ir_mode if ir_mode is not None else artifact.config.ir_mode
    lanes = [
        DirectLane(fleet.build_tiled(), mode, backend=backend)
        for fleet in artifact.layers
    ]
    kind = artifact.config.kind
    return PipelineEngine(
        lanes=lanes,
        scales=artifact.scales,
        kind=kind,
        hidden_gain=artifact.hidden_gain,
        dynamics=(
            artifact.bsb_dynamics() if kind == "bsb" else None
        ),
    )
