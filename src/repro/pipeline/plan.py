"""Pipeline planning: trained network in, programmed layer stack out.

`repro.fleet` serves one sharded layer; the workloads the paper's
story actually cares about — MNIST-like classification through a
hidden layer, BSB associative recall — are *multi-layer* (or
iterative) programs over crossbar reads.  This module turns a trained
network into a served product:

* :class:`PipelineConfig` is the frozen recipe (workload kind,
  dataset geometry, training hyper-parameters, fabric variation,
  tiling, read model) and doubles as the artifact cache key.
* :func:`program_pipeline` trains (or recalls from cache) the
  network, programs every layer once as its own
  :class:`~repro.fleet.plan.ProgrammedFleet` — tiled through
  :class:`~repro.xbar.tiling.TiledPair` when the layer is wider than a
  tile — calibrates the inter-layer digital gain, and snapshots the
  whole stack as a :class:`PipelineArtifact`.
* :class:`PipelineArtifact` persists bit-identically: the restored
  stack reproduces the programming-time hardware exactly, so the
  served forward pass can be checked against the offline
  :class:`~repro.nn.mlp.MLPOnCrossbars` / :func:`~repro.nn.bsb.bsb_recall`
  references float for float.

Layer probes chain: layer ``k+1``'s drift probes are the pipeline's
probe inputs *as transformed by the programmed layers before it*, so
every per-layer drift monitor watches the distribution the layer
actually serves.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data import Dataset, make_dataset
from repro.fleet.plan import FleetConfig, ProgrammedFleet, program_fleet
from repro.nn.bsb import BSBConfig, train_bsb_weights
from repro.nn.mlp import MLPConfig, MLPWeights, train_mlp
from repro.runtime.cache import ArtifactCache, stable_key
from repro.xbar.crossbar import IR_MODES

__all__ = [
    "PIPELINE_KINDS",
    "PipelineConfig",
    "PipelineArtifact",
    "bsb_prototypes",
    "pipeline_key",
    "program_pipeline",
    "trained_weights_key",
]

PIPELINE_KINDS = ("mlp", "bsb")


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines a programmed pipeline.

    Frozen and hashable so it doubles as the artifact cache key
    (rule REP003): any field change produces a different key.

    Attributes:
        kind: Workload: ``'mlp'`` (two-layer classifier) or ``'bsb'``
            (auto-associative recall).
        image_size: Side length of the benchmark images (7/14/28).
        n_train: Training-sample count.
        hidden: MLP hidden-layer width (ignored for ``'bsb'``).
        epochs: MLP training epochs (ignored for ``'bsb'``).
        n_prototypes: Stored BSB patterns, one per digit class
            (ignored for ``'mlp'``).
        sigma: Persistent device variation of the fabricated tiles.
        r_wire: Wire resistance per crossbar segment (ohm).
        tile_rows: Rows per shard in every layer's fleet.
        seed: Master seed: dataset rendering, weight init, fabrication.
        ir_mode: Read-fidelity model the pipeline serves with.
        n_probes: Drift-monitor probe count per layer.
        backend: Default array namespace the pipeline is served with;
            programming always runs the numpy reference path.
    """

    kind: str = "mlp"
    image_size: int = 7
    n_train: int = 300
    hidden: int = 32
    epochs: int = 200
    n_prototypes: int = 4
    sigma: float = 0.15
    r_wire: float = 0.0
    tile_rows: int = 32
    seed: int = 0
    ir_mode: str = "ideal"
    n_probes: int = 16
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.kind not in PIPELINE_KINDS:
            raise ValueError(
                f"kind must be one of {PIPELINE_KINDS}, got {self.kind!r}"
            )
        if self.image_size not in (7, 14, 28):
            raise ValueError(
                f"image_size must be 7, 14 or 28, got {self.image_size}"
            )
        for field in ("n_train", "hidden", "epochs", "n_prototypes",
                      "tile_rows", "n_probes"):
            value = getattr(self, field)
            if value < 1:
                raise ValueError(f"{field} must be >= 1, got {value}")
        if self.n_probes > self.n_train:
            raise ValueError(
                f"n_probes ({self.n_probes}) cannot exceed n_train "
                f"({self.n_train})"
            )
        if self.n_prototypes > 10:
            raise ValueError(
                f"n_prototypes must be <= 10 digit classes, got "
                f"{self.n_prototypes}"
            )
        if self.ir_mode not in IR_MODES:
            raise ValueError(
                f"ir_mode must be one of {IR_MODES}, got {self.ir_mode!r}"
            )

    @property
    def n_features(self) -> int:
        return self.image_size * self.image_size

    def mlp_config(self) -> MLPConfig:
        """The software training recipe this pipeline deploys."""
        return MLPConfig(
            hidden=self.hidden, epochs=self.epochs, seed=self.seed
        )

    def bsb_config(self) -> BSBConfig:
        """The recall dynamics this pipeline serves."""
        return BSBConfig()

    def dataset(self) -> Dataset:
        """Render the benchmark corpus the pipeline is built from."""
        data = make_dataset(
            n_train=self.n_train, n_test=2 * self.n_train,
            seed=self.seed,
        )
        if self.image_size != 28:
            data = data.undersampled(self.image_size)
        return data


def pipeline_key(config: PipelineConfig) -> str:
    """Stable cache key of the pipeline a config produces."""
    return stable_key("pipeline", {"config": config})


def trained_weights_key(config: PipelineConfig) -> str:
    """Stable cache key of the *software* training outcome.

    Keyed on the frozen training sub-config (:class:`MLPConfig` /
    :class:`BSBConfig`) plus the dataset recipe, so retraining is
    skipped whenever the pipeline fabric (sigma, tiling, ir_mode)
    changes but the network itself does not.
    """
    if config.kind == "mlp":
        training: object = config.mlp_config()
    else:
        training = config.bsb_config()
    return stable_key("pipeline_weights", {
        "kind": config.kind,
        "training": training,
        "image_size": config.image_size,
        "n_train": config.n_train,
        "n_prototypes": config.n_prototypes,
        "seed": config.seed,
    })


def _layer_key(manifest_key: str, layer_index: int) -> str:
    return stable_key(
        "pipeline_layer",
        {"pipeline": manifest_key, "layer": layer_index},
    )


def bsb_prototypes(dataset: Dataset, n_prototypes: int) -> np.ndarray:
    """Bipolar class prototypes: thresholded per-class pixel means.

    Ties the BSB workload to the same MNIST-like corpus the classifier
    serves: prototype ``c`` is the mean training image of digit ``c``,
    binarised to {-1, +1} at its own mean intensity.  Deterministic
    for a fixed dataset.
    """
    protos = []
    for label in range(n_prototypes):
        members = dataset.x_train[dataset.y_train == label]
        if members.shape[0] == 0:
            raise ValueError(
                f"dataset has no training samples of class {label}"
            )
        mean = members.mean(axis=0)
        protos.append(np.where(mean >= mean.mean(), 1.0, -1.0))
    return np.stack(protos, axis=0)


@dataclasses.dataclass
class PipelineArtifact:
    """A programmed pipeline: per-layer fleets plus the digital recipe.

    Attributes:
        config: The :class:`PipelineConfig` that produced the stack.
        layers: One :class:`~repro.fleet.plan.ProgrammedFleet` per
            weight layer, in forward order.
        scales: Digital restore gain per layer (``max |w|`` of the
            layer's logical weights; the fleet programs the normalised
            weights and the scale is re-applied after the read).
        hidden_gain: Calibrated inter-layer digital gain (MLP); 1.0
            for BSB.
        activation: Digital recipe between/around the reads.  For
            ``'mlp'``: ``{"kind": "relu_clip"}``.  For ``'bsb'``:
            ``{"kind": "bsb", "alpha", "lam", "max_iterations"}``.
        layer_weights: The exact logical (signed, unnormalised)
            weights each layer was programmed from — the offline
            reference is rebuilt from these, byte for byte.
        prototypes: Stored BSB patterns ``(k, n)`` (``None`` for MLP).
    """

    config: PipelineConfig
    layers: list[ProgrammedFleet]
    scales: list[float]
    hidden_gain: float
    activation: dict
    layer_weights: list[np.ndarray]
    prototypes: np.ndarray | None = None

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def shapes(self) -> list[tuple[int, int]]:
        """Logical (rows, cols) of every layer, in forward order."""
        return [fleet.shape for fleet in self.layers]

    def mlp_weights(self) -> MLPWeights:
        """The trained software parameters (MLP pipelines only)."""
        if self.config.kind != "mlp":
            raise ValueError("not an MLP pipeline")
        return MLPWeights(
            w1=self.layer_weights[0], w2=self.layer_weights[1]
        )

    def bsb_dynamics(self) -> BSBConfig:
        """The recall dynamics recorded at programming time."""
        if self.activation.get("kind") != "bsb":
            raise ValueError("not a BSB pipeline")
        return BSBConfig(
            alpha=float(self.activation["alpha"]),
            lam=float(self.activation["lam"]),
            max_iterations=int(self.activation["max_iterations"]),
        )

    # -- persistence ---------------------------------------------------
    def save(self, cache: ArtifactCache, key: str) -> str:
        """Persist the manifest, array payloads and every layer fleet."""
        for i, fleet in enumerate(self.layers):
            fleet.save(cache, _layer_key(key, i))
        arrays = {
            f"w{i}": np.asarray(w, dtype=float)
            for i, w in enumerate(self.layer_weights)
        }
        if self.prototypes is not None:
            arrays["prototypes"] = np.asarray(
                self.prototypes, dtype=float
            )
        cache.put_arrays(key, **arrays)
        cache.put_json(key, {
            "kind": "pipeline_manifest",
            "config": dataclasses.asdict(self.config),
            "n_layers": self.n_layers,
            "scales": [float(s) for s in self.scales],
            "hidden_gain": float(self.hidden_gain),
            "activation": self.activation,
        })
        return key

    @classmethod
    def load(cls, cache: ArtifactCache, key: str) -> "PipelineArtifact":
        """Load a pipeline; ``KeyError`` when any piece is missing."""
        doc = cache.get_json(key)
        if doc is None or doc.get("kind") != "pipeline_manifest":
            raise KeyError(f"no pipeline manifest under key {key!r}")
        arrays = cache.get_arrays(key)
        if arrays is None:
            raise KeyError(f"no pipeline arrays under key {key!r}")
        n_layers = int(doc["n_layers"])
        return cls(
            config=PipelineConfig(**doc["config"]),
            layers=[
                ProgrammedFleet.load(cache, _layer_key(key, i))
                for i in range(n_layers)
            ],
            scales=[float(s) for s in doc["scales"]],
            hidden_gain=float(doc["hidden_gain"]),
            activation=dict(doc["activation"]),
            layer_weights=[arrays[f"w{i}"] for i in range(n_layers)],
            prototypes=arrays.get("prototypes"),
        )


def _trained_weights(
    config: PipelineConfig,
    dataset: Dataset,
    cache: ArtifactCache | None,
) -> tuple[list[np.ndarray], np.ndarray | None]:
    """Train the software network, or recall it from the cache.

    Returns ``(layer_weights, prototypes)``; the cache round-trips the
    arrays bit-identically, so a cached pipeline programs the exact
    conductances a cold one would.
    """
    key = trained_weights_key(config)
    if cache is not None:
        cached = cache.get_arrays(key)
        if cached is not None:
            n = int(cached["n_layers"][0])
            return (
                [cached[f"w{i}"] for i in range(n)],
                cached.get("prototypes"),
            )
    if config.kind == "mlp":
        weights = train_mlp(
            dataset.x_train, dataset.y_train, n_classes=10,
            config=config.mlp_config(),
        )
        layer_weights = [weights.w1, weights.w2]
        prototypes = None
    else:
        prototypes = bsb_prototypes(dataset, config.n_prototypes)
        layer_weights = [
            train_bsb_weights(prototypes, config.bsb_config())
        ]
    if cache is not None:
        arrays = {
            f"w{i}": w for i, w in enumerate(layer_weights)
        }
        arrays["n_layers"] = np.array([len(layer_weights)])
        if prototypes is not None:
            arrays["prototypes"] = prototypes
        cache.put_arrays(key, **arrays)
    return layer_weights, prototypes


def program_pipeline(
    config: PipelineConfig,
    dataset: Dataset | None = None,
    cache: ArtifactCache | None = None,
) -> PipelineArtifact:
    """Train, program and snapshot a full inference pipeline.

    Each layer is fabricated and programmed as its own
    :class:`~repro.fleet.plan.ProgrammedFleet` (layer ``k`` seeds its
    fabric with ``config.seed + k``, so layers carry independent
    variation draws).  Drift probes chain through the *programmed*
    hardware: layer ``k+1`` is probed with layer ``k``'s calibrated
    outputs on the pipeline probe inputs, which is exactly what it
    will see in serving.

    Args:
        config: The pipeline recipe.
        dataset: Pre-rendered corpus override; rendered from the
            config when omitted (same seed, same corpus).
        cache: Optional artifact cache: trained software weights are
            recalled from it, and the finished artifact is stored
            under :func:`pipeline_key`.
    """
    if dataset is None:
        dataset = config.dataset()
    if dataset.n_features != config.n_features:
        raise ValueError(
            f"dataset features {dataset.n_features} != config "
            f"image_size^2 ({config.n_features})"
        )
    layer_weights, prototypes = _trained_weights(config, dataset, cache)

    def layer_fleet(index: int, w: np.ndarray,
                    probes: np.ndarray) -> ProgrammedFleet:
        fleet_config = FleetConfig(
            n_rows=w.shape[0],
            cols=w.shape[1],
            tile_rows=config.tile_rows,
            sigma=config.sigma,
            r_wire=config.r_wire,
            seed=config.seed + index,
            ir_mode=config.ir_mode,
            n_probes=probes.shape[0],
            backend=config.backend,
        )
        return program_fleet(fleet_config, w, probes=probes)

    scales = [
        float(np.max(np.abs(w))) or 1.0 for w in layer_weights
    ]
    if config.kind == "mlp":
        probes0 = dataset.x_train[: config.n_probes].copy()
        fleet0 = layer_fleet(0, layer_weights[0], probes0)
        tiled0 = fleet0.build_tiled()
        # Calibrate the inter-layer gain on the training inputs, read
        # through the *programmed* first layer — the same 0.999-quantile
        # rule MLPOnCrossbars.program applies.
        hidden_cal = np.maximum(
            tiled0.matvec(dataset.x_train, config.ir_mode) * scales[0],
            0.0,
        )
        peak = float(np.quantile(hidden_cal, 0.999))
        hidden_gain = 1.0 / peak if peak > 0 else 1.0
        probes1 = np.clip(
            np.maximum(
                tiled0.matvec(probes0, config.ir_mode) * scales[0], 0.0
            ) * hidden_gain,
            0.0, 1.0,
        )
        fleets = [fleet0, layer_fleet(1, layer_weights[1], probes1)]
        activation = {"kind": "relu_clip"}
    else:
        # BSB states are bipolar; the drift probes are the two
        # word-line drive phases of the stored prototypes, which is
        # what recall traffic actually applies to the array.
        probes0 = np.concatenate([
            np.clip(prototypes, 0.0, 1.0),
            np.clip(-prototypes, 0.0, 1.0),
        ], axis=0)
        fleets = [layer_fleet(0, layer_weights[0], probes0)]
        dynamics = config.bsb_config()
        hidden_gain = 1.0
        activation = {
            "kind": "bsb",
            "alpha": dynamics.alpha,
            "lam": dynamics.lam,
            "max_iterations": dynamics.max_iterations,
        }

    artifact = PipelineArtifact(
        config=config,
        layers=fleets,
        scales=scales,
        hidden_gain=hidden_gain,
        activation=activation,
        layer_weights=[np.asarray(w, dtype=float)
                       for w in layer_weights],
        prototypes=prototypes,
    )
    if cache is not None:
        artifact.save(cache, pipeline_key(config))
    return artifact
