"""Multi-layer inference pipelines served as first-class traffic.

Composes programmed crossbar tiles into end-to-end analog inference
programs — MNIST-like MLP classification and BSB associative recall —
on top of the fleet serving plane: program once
(:func:`~repro.pipeline.plan.program_pipeline`), snapshot bit-exactly
(:class:`~repro.pipeline.plan.PipelineArtifact`), serve staged
(:class:`~repro.pipeline.service.PipelineService`).
"""

from repro.pipeline.engine import (
    DirectLane,
    PipelineEngine,
    offline_engine,
    stage_activation,
)
from repro.pipeline.plan import (
    PIPELINE_KINDS,
    PipelineArtifact,
    PipelineConfig,
    bsb_prototypes,
    pipeline_key,
    program_pipeline,
    trained_weights_key,
)
from repro.pipeline.service import PipelineService, Service

__all__ = [
    "PIPELINE_KINDS",
    "DirectLane",
    "PipelineArtifact",
    "PipelineConfig",
    "PipelineEngine",
    "PipelineService",
    "Service",
    "bsb_prototypes",
    "offline_engine",
    "pipeline_key",
    "program_pipeline",
    "stage_activation",
    "trained_weights_key",
]
