"""The pipeline facade: programmed layer stack in, served workload out.

:class:`PipelineService` composes one
:class:`~repro.fleet.service.FleetService` per programmed layer —
every layer gets its own sharded, replicated, drift-monitored serving
plane, labelled ``layer<k>/shard<i>/r<j>`` in the shared run log — and
fronts them with a :class:`~repro.pipeline.engine.PipelineEngine` that
chains the stages (or iterates the recall loop) through future
callbacks.  It implements the shared
:class:`~repro.serve.protocol.Service` protocol, so the generic CLI
front ends (stdin/HTTP) and the lifecycle contract (drain-on-close)
apply unchanged.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np

from repro.backend import ArrayBackend
from repro.fleet.service import FleetService
from repro.nn.bsb import BSBResult
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.plan import PipelineArtifact
from repro.runtime.telemetry import (
    FleetEvent,
    RunLog,
    current_run_log,
)
from repro.serve.health import DriftPolicy
from repro.serve.protocol import Service, ServiceLifecycle

__all__ = ["PipelineService", "Service"]


class PipelineService(ServiceLifecycle):
    """Multi-layer analog inference as one routed service.

    Implements the :class:`~repro.serve.protocol.Service` protocol.

    Args:
        artifact: The programmed pipeline to serve.
        replicas: Serving copies per shard, in every layer.
        ir_mode: Read-model override (the artifact's mode when
            ``None``).
        policy: Drift policy shared by every replica monitor.
        max_batch / max_queue / min_retry_after_s: Per-replica
            scheduler parameters.
        default_deadline_s: Deadline applied to pipeline queries that
            do not carry their own; the budget spans the whole staged
            chain (each stage consumes from what remains).
        microbatch: Per-replica engine microbatch size.
        min_live: Quorum for rolling recovery, per layer.
        log: Telemetry sink shared by every layer; the ambient run log
            (or a private one) when omitted.
        backend: Array namespace every replica reads with; ``None``
            adopts the pipeline's recorded serving default.
        nodal_solver: Solver every replica in every layer uses for
            ``ir_mode="nodal"`` reads (``None`` keeps the hardware's
            own selection).
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        replicas: int = 1,
        ir_mode: str | None = None,
        policy: DriftPolicy | None = None,
        max_batch: int = 32,
        max_queue: int = 256,
        default_deadline_s: float | None = None,
        microbatch: int = 64,
        min_retry_after_s: float = 0.05,
        min_live: int = 1,
        log: RunLog | None = None,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
    ):
        self.artifact = artifact
        self.kind = artifact.config.kind
        self.ir_mode = (
            ir_mode if ir_mode is not None else artifact.config.ir_mode
        )
        self.default_deadline_s = default_deadline_s
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        if backend is None:
            backend = artifact.config.backend
        self.backend = backend
        self.layer_services = [
            FleetService(
                fleet,
                replicas=replicas,
                ir_mode=self.ir_mode,
                policy=policy,
                max_batch=max_batch,
                max_queue=max_queue,
                # Deadlines live at the pipeline level: the engine
                # passes each stage the remaining chain budget.
                default_deadline_s=None,
                microbatch=microbatch,
                min_retry_after_s=min_retry_after_s,
                min_live=min_live,
                log=self.log,
                backend=backend,
                nodal_solver=nodal_solver,
                label_prefix=f"layer{i}/",
            )
            for i, fleet in enumerate(artifact.layers)
        ]
        self.engine = PipelineEngine(
            lanes=self.layer_services,
            scales=artifact.scales,
            kind=self.kind,
            hidden_gain=artifact.hidden_gain,
            dynamics=(
                artifact.bsb_dynamics() if self.kind == "bsb" else None
            ),
        )

    # -- request path --------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Start one query through the staged chain.

        The future resolves to the score vector (MLP) or the recalled
        state vector (BSB).
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self.engine.submit(x, deadline_s)

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous single-query result vector."""
        return self.submit(x, deadline_s).result(timeout=timeout)

    def forward(
        self, x: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Run a whole batch through the chain, one query per row."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = x[None, :] if single else x
        futures = [self.submit(row) for row in xb]
        out = np.stack(
            [f.result(timeout=timeout) for f in futures], axis=0
        )
        return out[0] if single else out

    def recall(
        self,
        probe: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> BSBResult:
        """Run one BSB recall to convergence through the served layer."""
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self.engine.submit_recall(probe, deadline_s).result(
            timeout=timeout
        )

    # -- health --------------------------------------------------------
    def kill_replica(
        self, layer: int, shard: int, replica: int
    ) -> None:
        """Crash one replica (testing/benchmark failure injection)."""
        self.layer_services[layer].kill_replica(shard, replica)

    def run_recovery_cycle(self) -> dict[str, list[FleetEvent]]:
        """One rolling scan-and-reprogram pass over every layer."""
        return {
            f"layer{i}": service.run_recovery_cycle()
            for i, service in enumerate(self.layer_services)
        }

    def status(self) -> dict:
        """Deterministic pipeline inventory with per-lane counters.

        ``queues`` maps every replica lane label to its live queue
        depth and deadline-miss count, across all layers — the
        observable the scheduler satellite exposes.  Layer entries
        carry the full per-shard fleet inventory (a status call costs
        one probe read per live replica).
        """
        queues: dict[str, dict] = {}
        layers = []
        for i, service in enumerate(self.layer_services):
            layer_status = service.status()
            layers.append({
                "layer": i,
                "shape": list(self.artifact.shapes[i]),
                "scale": self.artifact.scales[i],
                **layer_status,
            })
            for shard in layer_status["shards"]:
                for lane in shard["replicas"]:
                    queues[lane["name"]] = {
                        "depth": lane["depth"],
                        "deadline_misses": lane["deadline_misses"],
                    }
        status = {
            "kind": self.kind,
            "n_layers": self.artifact.n_layers,
            "ir_mode": self.ir_mode,
            "backend": layers[0]["backend"] if layers else "numpy",
            "hidden_gain": self.artifact.hidden_gain,
            "activation": self.artifact.activation,
            "layers": layers,
            "queues": queues,
            "deadline_misses": sum(
                q["deadline_misses"] for q in queues.values()
            ),
        }
        if self.kind == "bsb":
            status["recall"] = self.engine.recall_stats()
        return status

    def stats(self) -> dict:
        """Pipeline-wide serving telemetry with a per-stage breakdown.

        ``stages`` aggregates the shared run log's labelled request
        records by layer prefix (requests, drops, mean latency per
        layer); ``lanes`` keeps the full per-replica split.
        """
        summary = self.log.serve_summary()
        labels = self.log.label_summary()
        if labels:
            summary["lanes"] = labels
        stages: dict[str, dict] = {}
        for label in sorted(labels):
            prefix = label.split("/", 1)[0]
            stage = stages.setdefault(prefix, {
                "requests": 0, "answered": 0, "dropped": 0,
                "latency_weight": 0.0,
            })
            lane = labels[label]
            stage["requests"] += lane["requests"]
            stage["answered"] += lane["answered"]
            stage["dropped"] += lane["dropped"]
            stage["latency_weight"] += (
                lane["mean_latency_s"] * lane["answered"]
            )
        summary["stages"] = {
            name: {
                "requests": s["requests"],
                "answered": s["answered"],
                "dropped": s["dropped"],
                "mean_latency_s": (
                    s["latency_weight"] / s["answered"]
                    if s["answered"] else 0.0
                ),
            }
            for name, s in sorted(stages.items())
        }
        if self.kind == "bsb":
            summary["recall"] = self.engine.recall_stats()
        return summary

    # -- lifecycle (close/shutdown/context from ServiceLifecycle) ------
    def drain(self, timeout: float | None = None) -> None:
        """Drain every replica of every layer, front to back.

        Front-to-back order lets queries already past layer ``k``
        finish on the layers behind it before those drain.
        """
        for service in self.layer_services:
            service.drain(timeout)
