"""Column-current sensing chain.

Combines a (optional) thermal/readout noise source with an ADC into the
sense path used for both computation and pre-testing.  The paper's CLD
scheme requires "accurately sensing the memristor (output current from
the crossbar) in the real-time" (Section 1); this module is where that
accuracy is bounded.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.adc import ADC
from repro.seeding import ensure_rng

__all__ = ["CurrentSense", "repeated_sense_average"]


class CurrentSense:
    """Current sensing front-end: additive noise followed by an ADC.

    Args:
        adc: Quantiser applied to the (noisy) current; ``None`` models
            an ideal infinite-resolution sense amplifier.
        noise_std: Standard deviation of additive Gaussian readout
            noise, in the same units as the sensed current (A).
        rng: Random generator for the noise draws.
    """

    def __init__(
        self,
        adc: ADC | None = None,
        noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.adc = adc
        self.noise_std = float(noise_std)
        self.rng = ensure_rng(rng, "repro.circuits.sensing.CurrentSense")

    def sense(self, current: np.ndarray | float) -> np.ndarray:
        """One sensing operation on a current (or array of currents)."""
        i = np.asarray(current, dtype=float)
        if self.noise_std > 0:
            i = i + self.rng.normal(0.0, self.noise_std, size=i.shape)
        if self.adc is not None:
            i = self.adc.quantize(i)
        return i

    @property
    def resolution(self) -> float:
        """Smallest distinguishable current step (A); 0 if ideal."""
        return self.adc.lsb if self.adc is not None else 0.0


def repeated_sense_average(
    sense: CurrentSense, currents: np.ndarray, repeats: int
) -> np.ndarray:
    """Average of ``repeats`` independent sense operations.

    Pre-testing in AMP senses each device multiple times "to eliminate
    the impacts of switching variations" (Section 4.2.1).  Averaging
    suppresses the random components (readout noise) but cannot recover
    information below the quantisation floor, which is why Fig. 8 shows
    a hard saturation with ADC resolution.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    acc = np.zeros_like(np.asarray(currents, dtype=float))
    for _ in range(repeats):
        acc = acc + sense.sense(currents)
    return acc / repeats
