"""Peripheral circuit substrate: ADC, input driver, current sensing."""

from repro.circuits.adc import ADC
from repro.circuits.dac import InputDriver
from repro.circuits.sensing import CurrentSense, repeated_sense_average

__all__ = ["ADC", "CurrentSense", "InputDriver", "repeated_sense_average"]
