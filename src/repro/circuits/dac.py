"""Input driver (DAC) model.

The paper adopts digital input voltages on the word lines
(Section 2.1): each pixel of the benchmark image is converted to a
voltage level on a horizontal wire.  ``InputDriver`` maps normalised
feature values in [0, 1] (or [-1, 1] for differential drive) onto
voltage levels with a configurable number of digital levels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InputDriver"]


class InputDriver:
    """Converts normalised features into word-line voltages.

    Args:
        v_read: Full-scale read voltage in Volt.
        levels: Number of digital voltage levels (``None`` or 0 means
            ideal analog drive).
        signed: Accept features in [-1, 1] and produce signed voltages
            (the sign is realised by input-phase encoding in hardware;
            the model keeps signed values for simplicity).
    """

    def __init__(self, v_read: float = 1.0, levels: int | None = None,
                 signed: bool = False):
        if v_read <= 0:
            raise ValueError(f"v_read must be positive, got {v_read}")
        if levels is not None and levels < 2 and levels != 0:
            raise ValueError(f"levels must be >= 2 (or 0/None), got {levels}")
        self.v_read = float(v_read)
        self.levels = int(levels) if levels else 0
        self.signed = bool(signed)

    def drive(self, features: np.ndarray) -> np.ndarray:
        """Voltages for a feature vector or batch.

        Args:
            features: Array of normalised features; values are clipped
                to the accepted range.

        Returns:
            Voltage array of the same shape.
        """
        x = np.asarray(features, dtype=float)
        lo = -1.0 if self.signed else 0.0
        x = np.clip(x, lo, 1.0)
        if self.levels:
            span = 1.0 - lo
            step = span / (self.levels - 1)
            x = lo + np.round((x - lo) / step) * step
        return x * self.v_read

    def __repr__(self) -> str:
        mode = "signed" if self.signed else "unsigned"
        lv = self.levels if self.levels else "analog"
        return f"InputDriver(v_read={self.v_read:g}, levels={lv}, {mode})"
