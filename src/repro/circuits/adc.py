"""Analog-to-digital converter model.

The paper's NCS senses crossbar column currents through an ADC
(Section 2.1) and Fig. 8 sweeps the ADC resolution from 4 to 8 bits,
showing test-rate saturation at 6 bits.  The model here is a uniform
mid-rise quantiser over a configurable full-scale range, which captures
the two effects the paper attributes to finite resolution:

* quantisation of sensed currents during computation and close-loop
  training (limits the convergence criterion of CLD, Section 3.3), and
* quantisation of pre-test measurements, which bounds how accurately
  AMP can estimate per-device variation (Section 5.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ADC"]


class ADC:
    """Uniform quantiser with clipping.

    Args:
        bits: Resolution in bits (>= 1).
        full_scale: Largest representable input; inputs are clipped to
            ``[-full_scale, full_scale]`` when ``bipolar`` else
            ``[0, full_scale]``.
        bipolar: Whether the input range is symmetric around zero.
    """

    def __init__(self, bits: int, full_scale: float, bipolar: bool = False):
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {full_scale}")
        self.bits = int(bits)
        self.full_scale = float(full_scale)
        self.bipolar = bool(bipolar)
        self.levels = 2**self.bits

    @property
    def lsb(self) -> float:
        """Least-significant-bit step size in input units."""
        span = 2 * self.full_scale if self.bipolar else self.full_scale
        return span / self.levels

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Quantise input(s) to the nearest representable level."""
        x = np.asarray(x, dtype=float)
        lo = -self.full_scale if self.bipolar else 0.0
        clipped = np.clip(x, lo, self.full_scale)
        codes = np.round((clipped - lo) / self.lsb)
        codes = np.clip(codes, 0, self.levels - 1)
        return lo + codes * self.lsb

    def codes(self, x: np.ndarray | float) -> np.ndarray:
        """Integer output codes for input(s)."""
        x = np.asarray(x, dtype=float)
        lo = -self.full_scale if self.bipolar else 0.0
        clipped = np.clip(x, lo, self.full_scale)
        codes = np.round((clipped - lo) / self.lsb)
        return np.clip(codes, 0, self.levels - 1).astype(int)

    def __repr__(self) -> str:
        kind = "bipolar" if self.bipolar else "unipolar"
        return f"ADC(bits={self.bits}, full_scale={self.full_scale:g}, {kind})"
