"""Command-line interface for the Vortex reproduction.

Usage::

    python -m repro report                 # regenerate the evaluation
    python -m repro report --experiments fig2 fig3
    python -m repro report --paper-scale --image-size 28
    python -m repro report --jobs 8 --cache-dir ~/.cache/repro
    python -m repro quickstart             # end-to-end Vortex demo
    python -m repro lint src               # determinism contract check

The report subcommand regenerates the paper's tables/figures at the
chosen scale and prints (or writes) the combined text report.
``--jobs`` fans Monte-Carlo trials out over worker processes without
changing a single number (the report text is byte-identical at any
worker count); ``--cache-dir`` persists experiment artifacts so
unchanged experiments are skipped on re-runs; a timing summary goes to
stderr and ``--run-log`` saves the full structured log as JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentScale
from repro.experiments.report import EXPERIMENT_RUNNERS, generate_report
from repro.lint.cli import add_lint_arguments, run_lint
from repro.runtime import RunLog, RuntimeConfig, use_run_log, use_runtime

__all__ = ["main", "build_parser"]


def _write_text(path: str | Path, text: str) -> None:
    """Write UTF-8 text, creating missing parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Vortex (DAC'15) reproduction: regenerate the paper's "
            "evaluation or run the end-to-end demo."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="regenerate the paper's tables and figures"
    )
    report.add_argument(
        "--experiments",
        nargs="+",
        choices=sorted(EXPERIMENT_RUNNERS),
        default=None,
        help="subset of experiments (default: all)",
    )
    report.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's sample counts (much slower)",
    )
    report.add_argument(
        "--image-size",
        type=int,
        choices=(7, 14, 28),
        default=14,
        help="benchmark resolution (28 = the paper's 784-row crossbar)",
    )
    report.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to a file instead of stdout",
    )
    report.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for Monte-Carlo fan-out (0 = one per "
            "CPU); results are bit-identical at any value"
        ),
    )
    report.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="persist experiment artifacts here and reuse them on re-runs",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the artifact cache even when --cache-dir is set",
    )
    report.add_argument(
        "--run-log",
        type=str,
        default=None,
        help="write the structured telemetry run log to this JSON file",
    )

    quick = sub.add_parser(
        "quickstart", help="run the end-to-end Vortex pipeline demo"
    )
    quick.add_argument("--sigma", type=float, default=0.6)
    quick.add_argument("--image-size", type=int, choices=(7, 14, 28),
                       default=14)
    quick.add_argument("--seed", type=int, default=42)

    lint = sub.add_parser(
        "lint",
        help=(
            "check the determinism/picklability/cache contracts "
            "(rules REP001-REP005, see docs/determinism.md)"
        ),
    )
    add_lint_arguments(lint)
    return parser


def _run_report(args: argparse.Namespace) -> int:
    scale = (
        ExperimentScale.paper()
        if args.paper_scale
        else ExperimentScale.quick()
    )
    if args.seed is not None:
        import dataclasses

        scale = dataclasses.replace(scale, seed=args.seed)
    experiments = tuple(args.experiments) if args.experiments else None
    runtime = RuntimeConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    log = RunLog()
    with use_runtime(runtime), use_run_log(log):
        text = generate_report(scale, args.image_size, experiments)
    if args.output:
        _write_text(args.output, text)
        print(f"report written to {args.output}")
    else:
        print(text)
    # Wall times are nondeterministic, so they go to stderr / JSON and
    # never into the report body.
    print(log.render_timing(), file=sys.stderr)
    if args.run_log:
        _write_text(args.run_log, log.to_json())
        print(f"run log written to {args.run_log}", file=sys.stderr)
    return 0


def _run_quickstart(args: argparse.Namespace) -> int:
    from repro import (
        CrossbarConfig,
        HardwareSpec,
        VariationConfig,
        WeightScaler,
        build_pair,
        make_dataset,
        run_vortex,
    )

    dataset = make_dataset(n_train=1500, n_test=800, seed=7)
    if args.image_size != 28:
        dataset = dataset.undersampled(args.image_size)
    spec = HardwareSpec(
        variation=VariationConfig(sigma=args.sigma),
        crossbar=CrossbarConfig(rows=dataset.n_features, cols=10,
                                r_wire=0.0),
    )
    rng = np.random.default_rng(args.seed)
    pair = build_pair(spec, WeightScaler(1.0), rng,
                      rows=dataset.n_features + 16)
    result = run_vortex(pair, dataset.x_train, dataset.y_train,
                        n_classes=10, rng=rng)
    print(f"pre-test sigma estimate : {result.sigma_pretest:.3f}")
    print(f"effective sigma post-AMP: {result.sigma_effective:.3f}")
    print(f"self-tuned gamma        : {result.gamma:.2f}")
    print(f"training rate (software): {result.training_rate:.3f}")
    rate = result.test_rate(pair, dataset.x_test, dataset.y_test)
    print(f"test rate (hardware)    : {rate:.3f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command == "quickstart":
        return _run_quickstart(args)
    if args.command == "lint":
        return run_lint(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
