"""Command-line interface for the Vortex reproduction.

Usage::

    python -m repro report                 # regenerate the evaluation
    python -m repro report --experiments fig2 fig3
    python -m repro report --paper-scale --image-size 28
    python -m repro report --jobs 8 --cache-dir ~/.cache/repro
    python -m repro quickstart             # end-to-end Vortex demo
    python -m repro lint src               # determinism contract check
    python -m repro program --cache-dir C  # program + snapshot an array
    python -m repro serve --cache-dir C --artifact KEY --stdin
    python -m repro fleet program --cache-dir C --image-size 14
    python -m repro fleet serve --cache-dir C --fleet KEY --stdin
    python -m repro fleet status --cache-dir C --fleet KEY
    python -m repro cache stats --cache-dir C
    python -m repro cache prune --cache-dir C --max-size-mb 100
    python -m repro bench nodal            # IR-drop solver benchmark

The report subcommand regenerates the paper's tables/figures at the
chosen scale and prints (or writes) the combined text report.
``--jobs`` fans Monte-Carlo trials out over worker processes without
changing a single number (the report text is byte-identical at any
worker count); ``--cache-dir`` persists experiment artifacts so
unchanged experiments are skipped on re-runs; a timing summary goes to
stderr and ``--run-log`` saves the full structured log as JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentScale
from repro.experiments.report import EXPERIMENT_RUNNERS, generate_report
from repro.lint.cli import add_lint_arguments, run_lint
from repro.runtime import RunLog, RuntimeConfig, use_run_log, use_runtime

__all__ = ["main", "build_parser"]


def _write_text(path: str | Path, text: str) -> None:
    """Write UTF-8 text, creating missing parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")


_IR_MODE_CHOICES = ("ideal", "reference", "fixed_point", "nodal")
_BACKEND_CHOICES = ("numpy", "torch")
_NODAL_SOLVER_CHOICES = ("lu", "schur", "cg")


def _add_programming_options(
    parser: argparse.ArgumentParser,
    image_size_default: int = 7,
    sigma_default: float = 0.3,
) -> None:
    """Options shared by ``repro program`` and ``repro fleet program``.

    Both subcommands build the same (dataset, training, fabric) recipe;
    only their geometry extras (redundancy vs. tile rows) differ, so
    the shared surface lives here and cannot drift apart.
    """
    parser.add_argument(
        "--cache-dir", type=str, required=True,
        help="artifact cache directory the snapshot is stored in",
    )
    parser.add_argument(
        "--image-size", type=int, choices=(7, 14, 28),
        default=image_size_default,
    )
    parser.add_argument("--n-train", type=int, default=300)
    parser.add_argument("--sigma", type=float, default=sigma_default)
    parser.add_argument("--r-wire", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ir-mode", choices=_IR_MODE_CHOICES, default="ideal",
    )
    parser.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default="numpy",
        help=(
            "array namespace recorded as the snapshot's serving "
            "default; programming itself always runs the numpy "
            "reference path"
        ),
    )


def _add_serving_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``repro serve`` and ``repro fleet serve``."""
    io_mode = parser.add_mutually_exclusive_group(required=True)
    io_mode.add_argument(
        "--stdin", action="store_true",
        help="read one CSV feature vector per line, answer JSON lines",
    )
    io_mode.add_argument(
        "--port", type=int, default=None,
        help="serve HTTP on this port (POST /predict, GET /stats)",
    )
    parser.add_argument(
        "--ir-mode", choices=_IR_MODE_CHOICES, default=None,
        help="override the snapshot's read model",
    )
    parser.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default=None,
        help=(
            "array namespace to serve with (default: the snapshot's "
            "recorded serving default)"
        ),
    )
    parser.add_argument(
        "--nodal-solver", choices=_NODAL_SOLVER_CHOICES, default=None,
        help=(
            "solver for ir_mode=nodal reads: lu (bit-exact oracle), "
            "schur (structure-exploiting direct) or cg (preconditioned "
            "iterative); default keeps the hardware's own selection "
            "(see docs/ir_drop.md)"
        ),
    )
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-queue", type=int, default=128)
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline in milliseconds",
    )
    parser.add_argument("--drift-threshold", type=float, default=0.1)
    parser.add_argument("--check-every", type=int, default=5)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    import repro
    from repro.backend import available_backends

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Vortex (DAC'15) reproduction: regenerate the paper's "
            "evaluation or run the end-to-end demo."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=(
            f"%(prog)s {repro.__version__} "
            f"(backends: {', '.join(available_backends())})"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="regenerate the paper's tables and figures"
    )
    report.add_argument(
        "--experiments",
        nargs="+",
        choices=sorted(EXPERIMENT_RUNNERS),
        default=None,
        help="subset of experiments (default: all)",
    )
    report.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's sample counts (much slower)",
    )
    report.add_argument(
        "--image-size",
        type=int,
        choices=(7, 14, 28),
        default=14,
        help="benchmark resolution (28 = the paper's 784-row crossbar)",
    )
    report.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to a file instead of stdout",
    )
    report.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for Monte-Carlo fan-out (0 = one per "
            "CPU); results are bit-identical at any value"
        ),
    )
    report.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="persist experiment artifacts here and reuse them on re-runs",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the artifact cache even when --cache-dir is set",
    )
    report.add_argument(
        "--run-log",
        type=str,
        default=None,
        help="write the structured telemetry run log to this JSON file",
    )
    report.add_argument(
        "--backend", choices=_BACKEND_CHOICES, default="numpy",
        help=(
            "array namespace for backend-aware kernels (numpy is the "
            "bit-identical reference; torch needs the optional "
            "dependency installed)"
        ),
    )

    quick = sub.add_parser(
        "quickstart", help="run the end-to-end Vortex pipeline demo"
    )
    quick.add_argument("--sigma", type=float, default=0.6)
    quick.add_argument("--image-size", type=int, choices=(7, 14, 28),
                       default=14)
    quick.add_argument("--seed", type=int, default=42)

    lint = sub.add_parser(
        "lint",
        help=(
            "check the determinism/picklability/cache contracts "
            "(rules REP001-REP005, see docs/determinism.md)"
        ),
    )
    add_lint_arguments(lint)

    program = sub.add_parser(
        "program",
        help=(
            "train, program and snapshot a crossbar into the artifact "
            "cache (prints the artifact key)"
        ),
    )
    _add_programming_options(program, image_size_default=7,
                             sigma_default=0.3)
    program.add_argument(
        "--scheme", choices=("vortex", "old", "cld"), default="vortex"
    )
    program.add_argument("--redundancy", type=int, default=8)

    serve = sub.add_parser(
        "serve",
        help="serve inference requests from a programmed-array artifact",
    )
    serve.add_argument(
        "--cache-dir", type=str, required=True,
        help="artifact cache directory holding the snapshot",
    )
    serve.add_argument(
        "--artifact", type=str, required=True,
        help="artifact key printed by `repro program`",
    )
    _add_serving_options(serve)

    fleet = sub.add_parser(
        "fleet",
        help=(
            "shard a large layer across tiles and serve it with "
            "replicated, drift-managed scatter-gather routing"
        ),
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fprogram = fleet_sub.add_parser(
        "program",
        help=(
            "train, shard-program and snapshot a fleet into the "
            "artifact cache (prints the fleet key)"
        ),
    )
    _add_programming_options(fprogram, image_size_default=14,
                             sigma_default=0.15)
    fprogram.add_argument(
        "--tile-rows", type=int, default=49,
        help="rows per shard (the last shard may be smaller)",
    )
    fprogram.add_argument("--n-probes", type=int, default=16)

    fserve = fleet_sub.add_parser(
        "serve", help="serve inference requests from a fleet snapshot"
    )
    fserve.add_argument(
        "--cache-dir", type=str, required=True,
        help="artifact cache directory holding the fleet",
    )
    fserve.add_argument(
        "--fleet", type=str, required=True,
        help="fleet key printed by `repro fleet program`",
    )
    fserve.add_argument(
        "--replicas", type=int, default=2,
        help="serving copies per shard",
    )
    _add_serving_options(fserve)

    fstatus = fleet_sub.add_parser(
        "status",
        help="print the per-shard replica inventory of a fleet snapshot",
    )
    fstatus.add_argument("--cache-dir", type=str, required=True)
    fstatus.add_argument("--fleet", type=str, required=True)
    fstatus.add_argument("--replicas", type=int, default=2)

    pipeline = sub.add_parser(
        "pipeline",
        help=(
            "program and serve multi-layer inference pipelines "
            "(MLP classification, BSB associative recall)"
        ),
    )
    pipeline_sub = pipeline.add_subparsers(
        dest="pipeline_command", required=True
    )

    pprogram = pipeline_sub.add_parser(
        "program",
        help=(
            "train, layer-program and snapshot a pipeline into the "
            "artifact cache (prints the pipeline key)"
        ),
    )
    _add_programming_options(pprogram, image_size_default=7,
                             sigma_default=0.15)
    pprogram.add_argument(
        "--kind", choices=("mlp", "bsb"), default="mlp",
        help="workload: two-layer classifier or associative recall",
    )
    pprogram.add_argument(
        "--hidden", type=int, default=32,
        help="MLP hidden-layer width",
    )
    pprogram.add_argument(
        "--epochs", type=int, default=200,
        help="MLP training epochs",
    )
    pprogram.add_argument(
        "--n-prototypes", type=int, default=4,
        help="stored BSB patterns (one per digit class)",
    )
    pprogram.add_argument(
        "--tile-rows", type=int, default=32,
        help="rows per shard in every layer's fleet",
    )
    pprogram.add_argument("--n-probes", type=int, default=16)

    pserve = pipeline_sub.add_parser(
        "serve", help="serve inference requests from a pipeline snapshot"
    )
    pserve.add_argument(
        "--cache-dir", type=str, required=True,
        help="artifact cache directory holding the pipeline",
    )
    pserve.add_argument(
        "--pipeline", type=str, required=True,
        help="pipeline key printed by `repro pipeline program`",
    )
    pserve.add_argument(
        "--replicas", type=int, default=1,
        help="serving copies per shard, in every layer",
    )
    _add_serving_options(pserve)

    peval = pipeline_sub.add_parser(
        "eval",
        help=(
            "evaluate a pipeline snapshot end to end: served accuracy "
            "(MLP) or recall success rate (BSB), checked bit-for-bit "
            "against the offline reference"
        ),
    )
    peval.add_argument("--cache-dir", type=str, required=True)
    peval.add_argument(
        "--pipeline", type=str, required=True,
        help="pipeline key printed by `repro pipeline program`",
    )
    peval.add_argument("--replicas", type=int, default=1)
    peval.add_argument(
        "--ir-mode", choices=_IR_MODE_CHOICES, default=None,
        help="override the snapshot's read model",
    )
    peval.add_argument(
        "--n-test", type=int, default=200,
        help="test queries served (MLP)",
    )
    peval.add_argument(
        "--flip-fraction", type=float, default=0.1,
        help="noise level of the BSB recall probes",
    )
    peval.add_argument(
        "--probes-per-prototype", type=int, default=8,
        help="noisy probes recalled per stored BSB pattern",
    )

    bench = sub.add_parser(
        "bench",
        help="run a performance benchmark and print the JSON entry",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bnodal = bench_sub.add_parser(
        "nodal",
        help=(
            "nodal-solver benchmark: lu/schur/cg wall-clock across "
            "crossbar sizes plus Monte-Carlo trial throughput "
            "(see docs/ir_drop.md)"
        ),
    )
    bnodal.add_argument(
        "--trials", type=int, default=128,
        help="Monte-Carlo trials of the throughput measurement",
    )
    bnodal.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="square crossbar sizes to sweep (default: 64 128 256)",
    )
    bnodal.add_argument(
        "--seed", type=int, default=1234,
    )
    bnodal.add_argument(
        "--output", type=str, default=None,
        help=(
            "append the entry to this JSON trajectory file "
            "(e.g. BENCH_nodal.json) instead of only printing it"
        ),
    )

    cache = sub.add_parser(
        "cache", help="inspect or prune the artifact cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="print cache size and composition as JSON"
    )
    stats.add_argument("--cache-dir", type=str, required=True)
    prune = cache_sub.add_parser(
        "prune", help="evict oldest artifacts down to a size cap"
    )
    prune.add_argument("--cache-dir", type=str, required=True)
    prune.add_argument(
        "--max-size-mb", type=float, required=True,
        help="target cache size in megabytes",
    )
    return parser


def _run_report(args: argparse.Namespace) -> int:
    scale = (
        ExperimentScale.paper()
        if args.paper_scale
        else ExperimentScale.quick()
    )
    if args.seed is not None:
        import dataclasses

        scale = dataclasses.replace(scale, seed=args.seed)
    experiments = tuple(args.experiments) if args.experiments else None
    runtime = RuntimeConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        backend=_resolve_cli_backend(args.backend) or "numpy",
    )
    log = RunLog()
    with use_runtime(runtime), use_run_log(log):
        text = generate_report(scale, args.image_size, experiments)
    if args.output:
        _write_text(args.output, text)
        print(f"report written to {args.output}")
    else:
        print(text)
    # Wall times are nondeterministic, so they go to stderr / JSON and
    # never into the report body.
    print(log.render_timing(), file=sys.stderr)
    if args.run_log:
        _write_text(args.run_log, log.to_json())
        print(f"run log written to {args.run_log}", file=sys.stderr)
    return 0


def _run_quickstart(args: argparse.Namespace) -> int:
    from repro import (
        CrossbarConfig,
        HardwareSpec,
        VariationConfig,
        WeightScaler,
        build_pair,
        make_dataset,
        run_vortex,
    )

    dataset = make_dataset(n_train=1500, n_test=800, seed=7)
    if args.image_size != 28:
        dataset = dataset.undersampled(args.image_size)
    spec = HardwareSpec(
        variation=VariationConfig(sigma=args.sigma),
        crossbar=CrossbarConfig(rows=dataset.n_features, cols=10,
                                r_wire=0.0),
    )
    rng = np.random.default_rng(args.seed)
    pair = build_pair(spec, WeightScaler(1.0), rng,
                      rows=dataset.n_features + 16)
    result = run_vortex(pair, dataset.x_train, dataset.y_train,
                        n_classes=10, rng=rng)
    print(f"pre-test sigma estimate : {result.sigma_pretest:.3f}")
    print(f"effective sigma post-AMP: {result.sigma_effective:.3f}")
    print(f"self-tuned gamma        : {result.gamma:.2f}")
    print(f"training rate (software): {result.training_rate:.3f}")
    rate = result.test_rate(pair, dataset.x_test, dataset.y_test)
    print(f"test rate (hardware)    : {rate:.3f}")
    return 0


def _run_program(args: argparse.Namespace) -> int:
    import json

    from repro.runtime.cache import ArtifactCache
    from repro.serve import (
        ProgramConfig,
        ProgrammedArray,
        artifact_key,
        program_array,
    )

    config = ProgramConfig(
        scheme=args.scheme,
        image_size=args.image_size,
        n_train=args.n_train,
        sigma=args.sigma,
        r_wire=args.r_wire,
        redundancy=args.redundancy,
        seed=args.seed,
        ir_mode=args.ir_mode,
        backend=args.backend,
    )
    cache = ArtifactCache(args.cache_dir)
    key = artifact_key(config)
    try:
        artifact = ProgrammedArray.load(cache, key)
        status = "cached"
    except KeyError:
        artifact = program_array(config)
        artifact.save(cache, key)
        status = "programmed"
    summary = {
        "key": key,
        "status": status,
        "scheme": artifact.scheme,
        "shape": list(artifact.g_pos.shape),
        "logical_rows": artifact.n_logical,
        "training_rate": artifact.metadata.get("training_rate"),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _resolve_cli_backend(name: str | None) -> str | None:
    """Fail fast (with the install hint) on an unavailable backend."""
    if name is None:
        return None
    from repro.backend import BackendUnavailableError, get_namespace

    try:
        get_namespace(name)
    except BackendUnavailableError as exc:
        raise SystemExit(f"repro: backend {name!r} unavailable: {exc}")
    return name


def _build_service(args: argparse.Namespace):
    from repro.runtime.cache import ArtifactCache
    from repro.serve import CrossbarService, DriftPolicy, ProgrammedArray

    cache = ArtifactCache(args.cache_dir)
    artifact = ProgrammedArray.load(cache, args.artifact)
    deadline = (
        None if args.deadline_ms is None else args.deadline_ms / 1e3
    )
    return CrossbarService(
        artifact,
        ir_mode=args.ir_mode,
        policy=DriftPolicy(
            threshold=args.drift_threshold,
            check_every=args.check_every,
        ),
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        default_deadline_s=deadline,
        backend=_resolve_cli_backend(args.backend),
        nodal_solver=args.nodal_solver,
    )


def _serve_stdin(service) -> int:
    """One CSV feature vector per stdin line -> one JSON line out."""
    import json

    from repro.serve import DeadlineExceededError, ServeOverloadedError

    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        x = np.array(
            [float(v) for v in line.replace(",", " ").split()]
        )
        try:
            scores = service.predict(x)
        except ServeOverloadedError as exc:
            print(json.dumps(
                {"error": "overloaded",
                 "retry_after_s": exc.retry_after_s}
            ))
            continue
        except DeadlineExceededError:
            print(json.dumps({"error": "deadline_exceeded"}))
            continue
        print(json.dumps({
            "prediction": int(np.argmax(scores)),
            "scores": [float(s) for s in scores],
        }))
    print(
        json.dumps(service.stats(), sort_keys=True), file=sys.stderr
    )
    return 0


def _serve_http(service, port: int) -> int:
    """Minimal stdlib HTTP front end (POST /predict, GET /stats)."""
    import json
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    from repro.serve import DeadlineExceededError, ServeOverloadedError

    class Handler(BaseHTTPRequestHandler):
        def _send(self, code: int, payload: dict,
                  headers: dict | None = None) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/stats":
                self._send(404, {"error": "not found"})
                return
            self._send(200, service.stats())

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/predict":
                self._send(404, {"error": "not found"})
                return
            length = int(self.headers.get("Content-Length", "0"))
            try:
                doc = json.loads(self.rfile.read(length))
                inputs = np.asarray(doc["inputs"], dtype=float)
            except (json.JSONDecodeError, KeyError, ValueError):
                self._send(400, {"error": "bad request"})
                return
            try:
                futures = [service.submit(x) for x in np.atleast_2d(inputs)]
                scores = [f.result() for f in futures]
            except ServeOverloadedError as exc:
                self._send(
                    503, {"error": "overloaded"},
                    {"Retry-After": f"{exc.retry_after_s:.3f}"},
                )
                return
            except DeadlineExceededError:
                self._send(504, {"error": "deadline_exceeded"})
                return
            self._send(200, {
                "predictions": [int(np.argmax(s)) for s in scores],
            })

        def log_message(self, fmt: str, *log_args) -> None:
            print(f"serve: {fmt % log_args}", file=sys.stderr)

    server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
    print(
        f"serving on http://127.0.0.1:{server.server_address[1]} "
        "(POST /predict, GET /stats; Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    service = _build_service(args)
    try:
        if args.stdin:
            return _serve_stdin(service)
        return _serve_http(service, args.port)
    finally:
        service.close()


def _run_fleet_program(args: argparse.Namespace) -> int:
    import json

    from repro.core.old import train_old
    from repro.data import make_dataset
    from repro.fleet import (
        FleetConfig,
        ProgrammedFleet,
        fleet_key,
        program_fleet,
    )
    from repro.runtime.cache import ArtifactCache

    dataset = make_dataset(
        n_train=args.n_train, n_test=64, seed=args.seed
    )
    if args.image_size != 28:
        dataset = dataset.undersampled(args.image_size)
    outcome = train_old(dataset.x_train, dataset.y_train, n_classes=10)
    config = FleetConfig(
        n_rows=dataset.n_features,
        cols=10,
        tile_rows=args.tile_rows,
        sigma=args.sigma,
        r_wire=args.r_wire,
        seed=args.seed,
        ir_mode=args.ir_mode,
        n_probes=args.n_probes,
        backend=args.backend,
    )
    cache = ArtifactCache(args.cache_dir)
    key = fleet_key(config, outcome.weights)
    try:
        fleet = ProgrammedFleet.load(cache, key)
        status = "cached"
    except KeyError:
        fleet = program_fleet(
            config, outcome.weights, probes=dataset.x_train[: args.n_probes]
        )
        fleet.save(cache, key)
        status = "programmed"
    print(json.dumps({
        "key": key,
        "status": status,
        "n_shards": fleet.n_shards,
        "shape": list(fleet.shape),
        "tile_rows": config.tile_rows,
        "training_rate": outcome.training_rate,
    }, indent=2, sort_keys=True))
    return 0


def _build_fleet_service(args: argparse.Namespace, replicas: int):
    from repro.fleet import FleetService, ProgrammedFleet
    from repro.runtime.cache import ArtifactCache
    from repro.serve import DriftPolicy

    cache = ArtifactCache(args.cache_dir)
    fleet = ProgrammedFleet.load(cache, args.fleet)
    policy = None
    if hasattr(args, "drift_threshold"):
        policy = DriftPolicy(
            threshold=args.drift_threshold,
            check_every=args.check_every,
        )
    deadline = getattr(args, "deadline_ms", None)
    return FleetService(
        fleet,
        replicas=replicas,
        ir_mode=getattr(args, "ir_mode", None),
        policy=policy,
        max_batch=getattr(args, "max_batch", 32),
        max_queue=getattr(args, "max_queue", 128),
        default_deadline_s=None if deadline is None else deadline / 1e3,
        backend=_resolve_cli_backend(getattr(args, "backend", None)),
        nodal_solver=getattr(args, "nodal_solver", None),
    )


def _run_fleet(args: argparse.Namespace) -> int:
    import json

    if args.fleet_command == "program":
        return _run_fleet_program(args)
    service = _build_fleet_service(args, args.replicas)
    try:
        if args.fleet_command == "status":
            print(json.dumps(service.status(), indent=2, sort_keys=True))
            return 0
        if args.stdin:
            return _serve_stdin(service)
        return _serve_http(service, args.port)
    finally:
        service.close()


def _run_pipeline_program(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline import (
        PipelineArtifact,
        PipelineConfig,
        pipeline_key,
        program_pipeline,
    )
    from repro.runtime.cache import ArtifactCache

    config = PipelineConfig(
        kind=args.kind,
        image_size=args.image_size,
        n_train=args.n_train,
        hidden=args.hidden,
        epochs=args.epochs,
        n_prototypes=args.n_prototypes,
        sigma=args.sigma,
        r_wire=args.r_wire,
        tile_rows=args.tile_rows,
        seed=args.seed,
        ir_mode=args.ir_mode,
        n_probes=args.n_probes,
        backend=args.backend,
    )
    cache = ArtifactCache(args.cache_dir)
    key = pipeline_key(config)
    try:
        artifact = PipelineArtifact.load(cache, key)
        status = "cached"
    except KeyError:
        artifact = program_pipeline(config, cache=cache)
        status = "programmed"
    print(json.dumps({
        "key": key,
        "status": status,
        "kind": config.kind,
        "n_layers": artifact.n_layers,
        "shapes": [list(shape) for shape in artifact.shapes],
        "scales": artifact.scales,
        "hidden_gain": artifact.hidden_gain,
        "ir_mode": config.ir_mode,
    }, indent=2, sort_keys=True))
    return 0


def _build_pipeline_service(args: argparse.Namespace, replicas: int):
    from repro.pipeline import PipelineArtifact, PipelineService
    from repro.runtime.cache import ArtifactCache
    from repro.serve import DriftPolicy

    cache = ArtifactCache(args.cache_dir)
    artifact = PipelineArtifact.load(cache, args.pipeline)
    policy = None
    if hasattr(args, "drift_threshold"):
        policy = DriftPolicy(
            threshold=args.drift_threshold,
            check_every=args.check_every,
        )
    deadline = getattr(args, "deadline_ms", None)
    return PipelineService(
        artifact,
        replicas=replicas,
        ir_mode=getattr(args, "ir_mode", None),
        policy=policy,
        max_batch=getattr(args, "max_batch", 32),
        max_queue=getattr(args, "max_queue", 256),
        default_deadline_s=None if deadline is None else deadline / 1e3,
        backend=_resolve_cli_backend(getattr(args, "backend", None)),
        nodal_solver=getattr(args, "nodal_solver", None),
    )


def _run_pipeline_eval(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.nn.bsb import noisy_probe
    from repro.pipeline import offline_engine

    service = _build_pipeline_service(args, args.replicas)
    artifact = service.artifact
    config = artifact.config
    try:
        reference = offline_engine(artifact, ir_mode=args.ir_mode)
        dataset = config.dataset()
        if config.kind == "mlp":
            x = dataset.x_test[: args.n_test]
            y = dataset.y_test[: args.n_test]
            start = time.perf_counter()
            served = service.forward(x, timeout=120.0)
            elapsed = time.perf_counter() - start
            offline = reference.forward(x)
            weights = artifact.mlp_weights()
            result = {
                "kind": "mlp",
                "n_test": int(len(y)),
                "accuracy": float(
                    np.mean(np.argmax(served, axis=1) == y)
                ),
                "software_accuracy": weights.accuracy(x, y),
                "bit_identical": bool(np.array_equal(served, offline)),
                "queries_per_second": (
                    len(y) / elapsed if elapsed > 0 else 0.0
                ),
            }
        else:
            protos = artifact.prototypes
            rng = np.random.default_rng(config.seed + 1)
            probes = np.stack([
                noisy_probe(p, args.flip_fraction, rng)
                for p in protos
                for _ in range(args.probes_per_prototype)
            ])
            sources = np.repeat(
                np.arange(protos.shape[0]), args.probes_per_prototype
            )
            start = time.perf_counter()
            served = service.forward(probes, timeout=300.0)
            elapsed = time.perf_counter() - start
            offline = reference.forward(probes)
            signs = np.sign(served)
            agreements = (
                signs[:, None, :] == protos[None, :, :]
            ).mean(axis=2)
            own = agreements[np.arange(len(probes)), sources]
            hits = (own >= 0.95) & (
                own >= agreements.max(axis=1) - 1e-12
            )
            result = {
                "kind": "bsb",
                "n_probes": int(len(probes)),
                "flip_fraction": args.flip_fraction,
                "recall_success_rate": float(np.mean(hits)),
                "bit_identical": bool(np.array_equal(served, offline)),
                "recall": service.engine.recall_stats(),
                "probes_per_second": (
                    len(probes) / elapsed if elapsed > 0 else 0.0
                ),
            }
        result["ir_mode"] = (
            args.ir_mode if args.ir_mode is not None else config.ir_mode
        )
        result["deadline_misses"] = service.status()["deadline_misses"]
        print(json.dumps(result, indent=2, sort_keys=True))
    finally:
        service.close()
    return 0


def _run_pipeline(args: argparse.Namespace) -> int:
    import json

    if args.pipeline_command == "program":
        return _run_pipeline_program(args)
    if args.pipeline_command == "eval":
        return _run_pipeline_eval(args)
    service = _build_pipeline_service(args, args.replicas)
    try:
        if args.stdin:
            return _serve_stdin(service)
        return _serve_http(service, args.port)
    finally:
        service.close()


def _run_bench(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.experiments.bench_nodal import DEFAULT_SIZES, run_nodal_bench

    sizes = (
        DEFAULT_SIZES
        if args.sizes is None
        else tuple((s, s) for s in args.sizes)
    )
    entry = run_nodal_bench(
        trials=args.trials, sizes=sizes, seed=args.seed
    )
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(json.dumps(entry, indent=2, sort_keys=True))
    if args.output:
        target = Path(args.output)
        trajectory = {"runs": []}
        if target.exists():
            try:
                trajectory = json.loads(
                    target.read_text(encoding="utf-8")
                )
            except json.JSONDecodeError:
                pass
        trajectory.setdefault("runs", []).append(entry)
        _write_text(target, json.dumps(trajectory, indent=2) + "\n")
        print(f"trajectory appended to {target}", file=sys.stderr)
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    import json

    from repro.runtime.cache import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.cache_command == "stats":
        result = cache.stats()
    else:
        result = cache.prune(args.max_size_mb)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command == "quickstart":
        return _run_quickstart(args)
    if args.command == "lint":
        return run_lint(args)
    if args.command == "program":
        return _run_program(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "pipeline":
        return _run_pipeline(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "cache":
        return _run_cache(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
