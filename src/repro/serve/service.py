"""The serving facade: artifact in, scheduled drift-aware service out.

:class:`CrossbarService` wires the four layers together: it rebuilds
the hardware from a :class:`~repro.serve.artifact.ProgrammedArray`,
wraps it in a batched :class:`~repro.serve.engine.InferenceEngine`,
watches it with a :class:`~repro.serve.health.DriftMonitor`, and
fronts it with a :class:`~repro.serve.scheduler.BatchScheduler`.

It also owns the repair path the monitor triggers.  Repair is the
paper's own answer to device degradation, reapplied at run time:
re-pretest the fabric (Section 4.2.1) so drifted and newly-stuck
devices show up in the measured thetas, rerun AMP so sensitive weight
rows move off the bad devices, and reprogram open-loop.  The stored
*logical* weights never change -- only their placement and the device
states do.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend
from repro.core.amp import run_amp
from repro.core.old import program_pair_open_loop
from repro.core.pretest import pretest_pair
from repro.runtime.telemetry import RunLog, current_run_log
from repro.seeding import ensure_rng
from repro.serve.artifact import ProgrammedArray
from repro.serve.engine import InferenceEngine
from repro.serve.health import DriftMonitor, DriftPolicy
from repro.serve.protocol import Service, ServiceLifecycle
from repro.serve.scheduler import BatchScheduler

__all__ = ["CrossbarService", "Service"]


class CrossbarService(ServiceLifecycle):
    """In-process inference service over one programmed crossbar.

    Implements the :class:`~repro.serve.protocol.Service` protocol.

    Args:
        artifact: Deployment snapshot to serve.
        ir_mode: Read-model override (artifact's own mode when
            ``None``).
        policy: Drift policy; defaults applied when ``None``.
        max_batch: Scheduler batch bound.
        max_queue: Scheduler queue bound.
        default_deadline_s: Default per-request deadline.
        microbatch: Engine microbatch size.
        rng: Randomness for re-pretests during repair; derived from
            the artifact's recorded seed when omitted (so a service
            restarted from the same artifact repairs identically).
        log: Telemetry sink shared by scheduler and monitor.
        backend: Array namespace for the hardware reads; ``None``
            adopts the artifact's recorded serving default (see
            :class:`~repro.serve.engine.InferenceEngine`).
        nodal_solver: Solver for ``ir_mode="nodal"`` reads; ``None``
            keeps the hardware's own selection.
    """

    def __init__(
        self,
        artifact: ProgrammedArray,
        ir_mode: str | None = None,
        policy: DriftPolicy | None = None,
        max_batch: int = 32,
        max_queue: int = 128,
        default_deadline_s: float | None = None,
        microbatch: int = 64,
        rng: np.random.Generator | None = None,
        log: RunLog | None = None,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
    ):
        self.artifact = artifact
        if rng is None:
            rng = np.random.default_rng(
                int(artifact.metadata.get("seed", 0))
            )
        self._rng = ensure_rng(rng, "repro.serve.service.CrossbarService")
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        self.pair = artifact.build_pair()
        self.policy = policy if policy is not None else DriftPolicy()
        if backend is None:
            backend = artifact.metadata.get("backend")
        self.engine = InferenceEngine(
            self.pair,
            mapping=artifact.mapping,
            ir_mode=ir_mode if ir_mode is not None else artifact.ir_mode,
            microbatch=microbatch,
            backend=backend,
            nodal_solver=nodal_solver,
        )
        self.monitor = DriftMonitor(
            self.engine,
            probes=artifact.probes,
            baseline=artifact.baseline,
            policy=self.policy,
            repair=self.remap,
            log=self.log,
        )
        self.scheduler = BatchScheduler(
            self.engine,
            max_batch=max_batch,
            max_queue=max_queue,
            default_deadline_s=default_deadline_s,
            on_batch=self.monitor,
            log=self.log,
        )

    # -- request path --------------------------------------------------
    def submit(self, x: np.ndarray, deadline_s: float | None = None):
        """Enqueue one query (see :meth:`BatchScheduler.submit`)."""
        return self.scheduler.submit(x, deadline_s)

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous single-query scores."""
        return self.scheduler.predict(x, deadline_s, timeout)

    def stats(self) -> dict:
        """Serving telemetry summary (latency, drops, drift events)."""
        return self.log.serve_summary()

    def status(self) -> dict:
        """Deterministic inventory of the served hardware.

        The discrepancy comes from a probe replay, so a status call
        costs one hardware read.
        """
        return {
            "scheme": self.artifact.scheme,
            "ir_mode": self.engine.ir_mode,
            "backend": self.engine.backend_name,
            "n_features": self.engine.n_features,
            "depth": self.scheduler.depth,
            "discrepancy": round(self.monitor.discrepancy(), 6),
        }

    # -- lifecycle (close/shutdown/context from ServiceLifecycle) ------
    def drain(self, timeout: float | None = None) -> None:
        """Stop intake, answer everything already queued."""
        self.scheduler.shutdown(timeout)

    # -- repair path ---------------------------------------------------
    def remap(self) -> dict:
        """Re-pretest, re-map and reprogram the drifted fabric.

        Returns:
            Stuck-at defect counts inferred from the re-pretest (a
            measured |theta| beyond the policy cutoff reads as a stuck
            device -- the pre-test cannot distinguish a defect from an
            extreme variation, and AMP does not need it to).
        """
        artifact = self.artifact
        pretest = pretest_pair(self.pair, rng=self._rng)
        amp = run_amp(
            self.pair,
            artifact.weights,
            artifact.x_mean,
            rng=self._rng,
            pretest=pretest,
        )
        mapping = amp.mapping
        program_pair_open_loop(
            self.pair,
            mapping.weights_to_physical(artifact.weights),
            x_reference=mapping.inputs_to_physical(artifact.x_mean),
        )
        self.engine.replace_mapping(mapping)
        cutoff = self.policy.defect_theta_cutoff
        theta = np.concatenate(
            [pretest.theta_pos.ravel(), pretest.theta_neg.ravel()]
        )
        return {
            "stuck_at_lrs": int(np.sum(theta > cutoff)),
            "stuck_at_hrs": int(np.sum(theta < -cutoff)),
        }
