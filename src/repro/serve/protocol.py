"""The shared service surface of the serving stack.

:class:`~repro.serve.service.CrossbarService` (one programmed array)
and :class:`~repro.fleet.service.FleetService` (a sharded, replicated
fleet) expose the same contract, captured here as the runtime-checkable
:class:`Service` protocol.  The CLI's stdin/HTTP front-ends, the
benchmarks and the tests are written against this surface alone, so
they never branch on the concrete service type.

The lifecycle verbs are:

* ``drain(timeout)`` -- stop accepting new queries and answer
  everything already queued.
* ``close(timeout)`` -- full release of the service (drains first);
  also what ``with service:`` runs on exit.
* ``shutdown(timeout)`` -- deprecated alias of :meth:`close`, kept for
  pre-protocol callers.

:class:`ServiceLifecycle` supplies ``close``/``shutdown``/context
management on top of a concrete ``drain``, so both services implement
the lifecycle once.
"""

from __future__ import annotations

import concurrent.futures
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Service", "ServiceLifecycle"]


@runtime_checkable
class Service(Protocol):
    """What every serving facade exposes, single-array or fleet."""

    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Enqueue one query; the future resolves to its scores."""
        ...

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous single-query scores."""
        ...

    def status(self) -> dict:
        """Deterministic inventory of the serving hardware."""
        ...

    def stats(self) -> dict:
        """Serving telemetry summary (latency, drops, health events)."""
        ...

    def drain(self, timeout: float | None = None) -> None:
        """Stop intake, answer everything already queued."""
        ...

    def close(self, timeout: float | None = None) -> None:
        """Drain and release the service."""
        ...


class ServiceLifecycle:
    """Mixin: ``close``/``shutdown``/``with`` on top of ``drain``."""

    def drain(self, timeout: float | None = None) -> None:
        raise NotImplementedError

    def close(self, timeout: float | None = None) -> None:
        """Drain and release the service (idempotent)."""
        self.drain(timeout)

    def shutdown(self, timeout: float | None = None) -> None:
        """Deprecated alias of :meth:`close`."""
        warnings.warn(
            f"{type(self).__name__}.shutdown() is deprecated; "
            "use close() (or drain() to stop intake only)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.close(timeout)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
