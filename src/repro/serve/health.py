"""Drift monitoring: replay probes, compare to the programmed baseline.

A programmed crossbar degrades in service: retention drift relaxes the
conductances toward HRS and devices can fail stuck-at.  Both surface
the same way the paper's Fig. 2 surfaces fabrication variation --
as a growing relative discrepancy between the column outputs and what
the deployer expects.  The monitor replays a fixed probe set between
request batches, measures exactly that discrepancy against the
*programming-time* baseline, and invokes a repair callback (AMP
re-pretest + remap + reprogram, see
:class:`repro.serve.service.CrossbarService`) when the policy
threshold is crossed.

The baseline is never refreshed after a repair: recovery is only
claimed when the array again produces the outputs it produced when it
was first programmed, not merely when it stops getting worse.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.runtime.telemetry import DriftEvent, RunLog, current_run_log
from repro.serve.engine import InferenceEngine

__all__ = ["DriftMonitor", "DriftPolicy"]


@dataclasses.dataclass(frozen=True)
class DriftPolicy:
    """When to check for drift and when to act on it.

    Attributes:
        threshold: Relative probe discrepancy that triggers action
            (the Fig. 2 metric: mean |y - y0| over mean |y0|).
        check_every: Request batches between probe replays; probes
            cost a hardware read, so checking every batch would tax
            throughput.
        defect_theta_cutoff: |theta| above which a re-pretested device
            is counted as a stuck-at defect in the repair report.
    """

    threshold: float = 0.1
    check_every: int = 5
    defect_theta_cutoff: float = 1.5

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(
                f"threshold must be > 0, got {self.threshold}"
            )
        if self.check_every < 1:
            raise ValueError(
                f"check_every must be >= 1, got {self.check_every}"
            )


class DriftMonitor:
    """Probe-replay health check with an optional repair path.

    Callable so it plugs directly into
    :class:`~repro.serve.scheduler.BatchScheduler`'s ``on_batch`` hook.

    Args:
        engine: Engine whose hardware is being watched (the probes run
            through the same routed, microbatched read path requests
            use).
        probes: Logical probe inputs ``(p, n_features)``.
        baseline: Programming-time probe outputs ``(p, cols)``.
        policy: Thresholds and cadence.
        repair: Callback invoked on a threshold crossing; returns a
            defect-count dict for the telemetry record.  When ``None``
            the monitor only records an alert.
        log: Telemetry sink; ambient run log (or a private one) when
            omitted.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        probes: np.ndarray,
        baseline: np.ndarray,
        policy: DriftPolicy | None = None,
        repair: Callable[[], dict] | None = None,
        log: RunLog | None = None,
    ):
        self.engine = engine
        self.probes = np.asarray(probes, dtype=float)
        self.baseline = np.asarray(baseline, dtype=float)
        if self.probes.shape[0] != self.baseline.shape[0]:
            raise ValueError(
                f"{self.probes.shape[0]} probes but "
                f"{self.baseline.shape[0]} baseline rows"
            )
        self.policy = policy if policy is not None else DriftPolicy()
        self.repair = repair
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        self._batches_seen = 0

    def discrepancy(self) -> float:
        """Current probe discrepancy vs the programming-time baseline.

        The paper's Fig. 2 column-output metric: mean absolute output
        deviation normalised by the mean absolute baseline output.
        """
        y = self.engine.forward(self.probes)
        denom = float(np.mean(np.abs(self.baseline)))
        if denom == 0.0:
            return float(np.mean(np.abs(y)))
        return float(np.mean(np.abs(y - self.baseline)) / denom)

    def check(self) -> DriftEvent | None:
        """Replay the probes; act and record if over threshold."""
        value = self.discrepancy()
        if value <= self.policy.threshold:
            return None
        if self.repair is None:
            return self.log.record_drift(
                discrepancy=value,
                threshold=self.policy.threshold,
                action="alert",
            )
        defects = self.repair()
        return self.log.record_drift(
            discrepancy=value,
            threshold=self.policy.threshold,
            action="remap",
            defects=defects,
            recovered_discrepancy=self.discrepancy(),
        )

    def __call__(self) -> None:
        """Per-batch hook: check every ``policy.check_every`` batches."""
        self._batches_seen += 1
        if self._batches_seen % self.policy.check_every == 0:
            self.check()
