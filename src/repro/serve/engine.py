"""Vectorized batched forward pass over a programmed crossbar.

The expensive part of a hardware-faithful read is the IR-drop solve:
one sparse nodal factorization per crossbar state, one triangular
solve per input vector.  Reading queries one at a time pays the Python
and solver dispatch overhead per query; reading them as a matrix lets
one factorization serve the whole batch (multi-right-hand-side solve),
which is where the serving throughput comes from.

The engine wraps any matvec-capable target (a
:class:`~repro.xbar.pair.DifferentialCrossbar` or a
:class:`~repro.xbar.tiling.TiledPair`), routes logical inputs through
the AMP permutation, and chunks very large batches into microbatches
so the multi-RHS solves stay memory-bounded.
"""

from __future__ import annotations

import numpy as np

from repro.core.amp import RowMapping
from repro.serve.artifact import ProgrammedArray

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Batched inference over a programmed (possibly tiled) pair.

    Args:
        target: Programmed hardware exposing ``matvec(x, ir_mode)``.
        mapping: AMP input routing; identity when ``None``.
        ir_mode: Read-fidelity model for every forward pass.
        microbatch: Maximum rows per hardware read; larger input
            batches are chunked to bound the multi-RHS solve size.
    """

    def __init__(
        self,
        target,
        mapping: RowMapping | None = None,
        ir_mode: str = "ideal",
        microbatch: int = 64,
    ):
        if microbatch < 1:
            raise ValueError(f"microbatch must be >= 1, got {microbatch}")
        self.target = target
        self.mapping = mapping
        self.ir_mode = ir_mode
        self.microbatch = int(microbatch)

    @classmethod
    def from_artifact(
        cls,
        artifact: ProgrammedArray,
        ir_mode: str | None = None,
        microbatch: int = 64,
    ) -> "InferenceEngine":
        """Reconstruct the hardware from a snapshot and wrap it."""
        return cls(
            target=artifact.build_pair(),
            mapping=artifact.mapping,
            ir_mode=ir_mode if ir_mode is not None else artifact.ir_mode,
            microbatch=microbatch,
        )

    @property
    def n_features(self) -> int:
        """Logical input width the engine accepts."""
        if self.mapping is not None:
            return self.mapping.n_logical
        return self.target.shape[0]

    def replace_mapping(self, mapping: RowMapping) -> None:
        """Swap the input routing (after a drift-triggered remap)."""
        if (
            self.mapping is not None
            and mapping.n_logical != self.mapping.n_logical
        ):
            raise ValueError(
                f"new mapping has {mapping.n_logical} logical rows, "
                f"engine serves {self.mapping.n_logical}"
            )
        self.mapping = mapping

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Weight-domain scores for a batch of logical inputs.

        Args:
            x: Inputs in [0, 1], ``(n_features,)`` or
                ``(s, n_features)``.

        Returns:
            Scores ``(cols,)`` or ``(s, cols)``.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = x[None, :] if single else x
        if xb.shape[1] != self.n_features:
            raise ValueError(
                f"input width {xb.shape[1]} != engine width "
                f"{self.n_features}"
            )
        chunks = []
        for start in range(0, xb.shape[0], self.microbatch):
            chunk = xb[start : start + self.microbatch]
            if self.mapping is not None:
                chunk = self.mapping.inputs_to_physical(chunk)
            chunks.append(self.target.matvec(chunk, self.ir_mode))
        scores = np.concatenate(chunks, axis=0)
        return scores[0] if single else scores

    def predict(self, x: np.ndarray) -> np.ndarray | int:
        """Argmax class prediction(s) for logical input(s)."""
        scores = self.forward(x)
        if scores.ndim == 1:
            return int(np.argmax(scores))
        return np.argmax(scores, axis=1)
