"""Vectorized batched forward pass over a programmed crossbar.

The expensive part of a hardware-faithful read is the IR-drop solve:
one sparse nodal factorization per crossbar state, one triangular
solve per input vector.  Reading queries one at a time pays the Python
and solver dispatch overhead per query; reading them as a matrix lets
one factorization serve the whole batch (multi-right-hand-side solve),
which is where the serving throughput comes from.

The engine wraps any matvec-capable target (a
:class:`~repro.xbar.pair.DifferentialCrossbar` or a
:class:`~repro.xbar.tiling.TiledPair`), routes logical inputs through
the AMP permutation, and chunks very large batches into microbatches
so the multi-RHS solves stay memory-bounded.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend, to_numpy
from repro.core.amp import RowMapping
from repro.serve.artifact import ProgrammedArray

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Batched inference over a programmed (possibly tiled) pair.

    Args:
        target: Programmed hardware exposing ``matvec(x, ir_mode)``.
        mapping: AMP input routing; identity when ``None``.
        ir_mode: Read-fidelity model for every forward pass.
        microbatch: Maximum rows per hardware read; larger input
            batches are chunked to bound the multi-RHS solve size.
        backend: Array namespace for the hardware reads (see
            :mod:`repro.backend`).  ``None`` (and ``"numpy"``) keep the
            bit-identical reference path; a non-numpy backend is
            forwarded to the target's ``matvec`` and the scores are
            converted back, so the engine's outputs are always numpy.
        nodal_solver: Solver for ``ir_mode="nodal"`` reads (one of
            :data:`~repro.config.NODAL_SOLVERS`); ``None`` keeps the
            target's own selection (config pin or ambient runtime).
            Pinned on the target, so it applies to every forward pass
            regardless of which runtime context later runs them.
    """

    def __init__(
        self,
        target,
        mapping: RowMapping | None = None,
        ir_mode: str = "ideal",
        microbatch: int = 64,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
    ):
        if microbatch < 1:
            raise ValueError(f"microbatch must be >= 1, got {microbatch}")
        self.target = target
        self.mapping = mapping
        self.ir_mode = ir_mode
        self.microbatch = int(microbatch)
        self.backend = None if backend is None else resolve_backend(backend)
        self.nodal_solver = nodal_solver
        if nodal_solver is not None:
            # Tolerate matvec-only targets (test doubles): the knob
            # only matters for hardware that actually solves nodally.
            pin = getattr(target, "set_nodal_solver", None)
            if pin is not None:
                pin(nodal_solver)

    @classmethod
    def from_artifact(
        cls,
        artifact: ProgrammedArray,
        ir_mode: str | None = None,
        microbatch: int = 64,
        backend: ArrayBackend | str | None = None,
        nodal_solver: str | None = None,
    ) -> "InferenceEngine":
        """Reconstruct the hardware from a snapshot and wrap it.

        ``backend=None`` adopts the artifact's recorded serving default
        (its ``metadata["backend"]``, numpy when absent).
        """
        if backend is None:
            backend = artifact.metadata.get("backend")
        return cls(
            target=artifact.build_pair(),
            mapping=artifact.mapping,
            ir_mode=ir_mode if ir_mode is not None else artifact.ir_mode,
            microbatch=microbatch,
            backend=backend,
            nodal_solver=nodal_solver,
        )

    @property
    def backend_name(self) -> str:
        """Name of the active array namespace (``"numpy"`` default)."""
        return "numpy" if self.backend is None else self.backend.name

    @property
    def n_features(self) -> int:
        """Logical input width the engine accepts."""
        if self.mapping is not None:
            return self.mapping.n_logical
        return self.target.shape[0]

    def replace_mapping(self, mapping: RowMapping) -> None:
        """Swap the input routing (after a drift-triggered remap)."""
        if (
            self.mapping is not None
            and mapping.n_logical != self.mapping.n_logical
        ):
            raise ValueError(
                f"new mapping has {mapping.n_logical} logical rows, "
                f"engine serves {self.mapping.n_logical}"
            )
        self.mapping = mapping

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Weight-domain scores for a batch of logical inputs.

        Args:
            x: Inputs in [0, 1], ``(n_features,)`` or
                ``(s, n_features)``.

        Returns:
            Scores ``(cols,)`` or ``(s, cols)``.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        xb = x[None, :] if single else x
        if xb.shape[1] != self.n_features:
            raise ValueError(
                f"input width {xb.shape[1]} != engine width "
                f"{self.n_features}"
            )
        # The reference path calls matvec without a backend argument so
        # any matvec-capable target (including test doubles) serves;
        # only opted-in backends are forwarded, and scores always come
        # home as numpy.
        run_on = None if self.backend is None or self.backend.is_reference \
            else self.backend
        chunks = []
        for start in range(0, xb.shape[0], self.microbatch):
            chunk = xb[start : start + self.microbatch]
            if self.mapping is not None:
                chunk = self.mapping.inputs_to_physical(chunk)
            if run_on is None:
                chunks.append(self.target.matvec(chunk, self.ir_mode))
            else:
                chunks.append(to_numpy(
                    self.target.matvec(chunk, self.ir_mode, backend=run_on)
                ))
        scores = np.concatenate(chunks, axis=0)
        return scores[0] if single else scores

    def predict(self, x: np.ndarray) -> np.ndarray | int:
        """Argmax class prediction(s) for logical input(s)."""
        scores = self.forward(x)
        if scores.ndim == 1:
            return int(np.argmax(scores))
        return np.argmax(scores, axis=1)
