"""Batched request scheduling: queueing, backpressure, deadlines.

One worker thread drains a bounded queue, packs whatever is waiting
(up to ``max_batch``) into a single microbatched forward pass, and
resolves each request's future.  The design choices mirror a real
serving stack scaled down to in-process size:

* **Bounded depth + rejection.**  An unbounded queue converts overload
  into unbounded latency; a full queue instead rejects immediately
  with :class:`ServeOverloadedError` carrying a retry-after hint
  estimated from recent batch throughput.
* **Deadlines.**  A request whose deadline has passed by the time its
  batch forms is dropped (its future receives
  :class:`DeadlineExceededError`) rather than wasting a hardware read
  on an answer nobody is waiting for.
* **Graceful shutdown.**  ``shutdown()`` stops intake, lets the worker
  drain everything already queued, then joins the thread -- accepted
  requests are always answered or explicitly failed, never stranded.

Every request is recorded in the ambient
:class:`~repro.runtime.telemetry.RunLog` (latency, queue share, batch
size, dropped flag), so serving telemetry flows through the same
channel as Monte-Carlo telemetry.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import queue
import threading
import time
from typing import Callable

import numpy as np

from repro.lint.sanitize import make_lock
from repro.runtime.telemetry import RunLog, current_run_log
from repro.serve.engine import InferenceEngine

__all__ = [
    "BatchScheduler",
    "DeadlineExceededError",
    "ServeOverloadedError",
]


class ServeOverloadedError(RuntimeError):
    """The request queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"request queue full; retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before it reached the hardware."""


@dataclasses.dataclass
class _Request:
    x: np.ndarray
    deadline: float | None
    submitted: float
    future: concurrent.futures.Future


_SHUTDOWN = object()


class BatchScheduler:
    """Thread-based batching scheduler over an inference engine.

    Args:
        engine: The batched forward pass to drive.
        max_batch: Largest request count packed into one forward pass.
        max_queue: Queue depth bound; submissions beyond it are
            rejected with :class:`ServeOverloadedError`.
        default_deadline_s: Deadline applied to requests that do not
            carry their own (``None`` = no deadline).
        on_batch: Optional hook invoked after every completed batch
            (the drift monitor's entry point).
        log: Telemetry sink; the ambient run log (or a private one)
            when omitted.
        min_retry_after_s: Floor for the overload retry-after hint.
            Before the first batch completes there is no throughput
            sample, so a cold-start rejection falls back to this floor
            instead of advertising an instant (or zero) retry.
        label: Serving-lane tag stamped on every request record (the
            fleet uses ``"shard<i>/r<j>"``); empty for a lone scheduler.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch: int = 32,
        max_queue: int = 128,
        default_deadline_s: float | None = None,
        on_batch: Callable[[], None] | None = None,
        log: RunLog | None = None,
        min_retry_after_s: float = 0.05,
        label: str = "",
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if min_retry_after_s <= 0:
            raise ValueError(
                f"min_retry_after_s must be > 0, got {min_retry_after_s}"
            )
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.default_deadline_s = default_deadline_s
        self.on_batch = on_batch
        self.min_retry_after_s = float(min_retry_after_s)
        self.label = label
        ambient = current_run_log()
        self.log = log if log is not None else (
            ambient if ambient is not None else RunLog()
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.max_queue)
        # One lock guards everything the submitter and the worker
        # thread both touch: the intake flag, the throughput EMA, the
        # served-batch counter and the deadline-miss counter.
        # Critically, the closed check and
        # the enqueue happen under the same acquisition in submit(),
        # and shutdown() flips the flag under it before posting the
        # sentinel — so no accepted request can ever land behind the
        # sentinel and be stranded.
        self._state = make_lock("scheduler-state")
        self.batches_served = 0
        self._deadline_misses = 0
        self._closed = False
        # EMA of per-batch wall time; None until the first batch lands
        # so cold-start backpressure can fall back to the floor.
        self._batch_seconds: float | None = None
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-worker", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Enqueue one query; the future resolves to its score vector.

        Raises:
            ServeOverloadedError: The queue is at capacity.
            RuntimeError: The scheduler has been shut down.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        now = time.monotonic()
        request = _Request(
            x=np.asarray(x, dtype=float),
            deadline=None if deadline_s is None else now + deadline_s,
            submitted=now,
            future=concurrent.futures.Future(),
        )
        with self._state:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                # Hint: time to drain the current backlog at the recent
                # per-batch pace, never below the configured floor (a
                # cold scheduler has no pace sample and must not
                # advertise an instant retry).
                backlog_batches = 1 + self._queue.qsize() / self.max_batch
                pace = (
                    self._batch_seconds
                    if self._batch_seconds is not None
                    else self.min_retry_after_s
                )
                raise ServeOverloadedError(
                    retry_after_s=max(
                        self.min_retry_after_s, backlog_batches * pace
                    )
                ) from None
        return request.future

    @property
    def depth(self) -> int:
        """Current queue depth (the fleet router's load signal)."""
        return self._queue.qsize()

    @property
    def deadline_misses(self) -> int:
        """Requests dropped because their deadline passed while queued."""
        with self._state:
            return self._deadline_misses

    def predict(
        self,
        x: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Synchronous convenience: submit one query and wait."""
        return self.submit(x, deadline_s).result(timeout=timeout)

    def shutdown(self, timeout: float | None = None) -> None:
        """Stop intake, drain the queue, join the worker thread."""
        with self._state:
            if self._closed:
                return
            self._closed = True
        # The sentinel is posted *outside* the lock: a full queue makes
        # this put block until the worker drains, and the worker needs
        # the state lock to finish each batch.
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- worker side ---------------------------------------------------
    def _collect(self) -> list[_Request] | None:
        """Block for one request, then greedily pack up to max_batch."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return None
        batch = [first]
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Keep draining: shutdown is graceful, so everything
                # queued ahead of the sentinel still gets answered.
                self._queue.put(item)
                break
            batch.append(item)
        return batch

    def _serve_batch(self, batch: list[_Request]) -> None:
        start = time.monotonic()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and request.deadline < start:
                request.future.set_exception(
                    DeadlineExceededError(
                        "deadline passed while queued "
                        f"({start - request.submitted:.3f}s)"
                    )
                )
                with self._state:
                    self._deadline_misses += 1
                self.log.record_request(
                    latency_s=start - request.submitted,
                    queue_s=start - request.submitted,
                    batch_size=len(batch),
                    ok=False,
                    label=self.label,
                )
            else:
                live.append(request)
        if not live:
            return
        try:
            scores = self.engine.forward(
                np.stack([r.x for r in live], axis=0)
            )
        except Exception as exc:
            # Not swallowed: every waiting future receives the error.
            for request in live:
                request.future.set_exception(exc)
            return
        done = time.monotonic()
        measured = done - start
        with self._state:
            self._batch_seconds = (
                measured
                if self._batch_seconds is None
                else 0.7 * self._batch_seconds + 0.3 * measured
            )
        for i, request in enumerate(live):
            request.future.set_result(scores[i])
            self.log.record_request(
                latency_s=done - request.submitted,
                queue_s=start - request.submitted,
                batch_size=len(live),
                ok=True,
                label=self.label,
            )

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._serve_batch(batch)
            with self._state:
                self.batches_served += 1
            if self.on_batch is not None:
                self.on_batch()
