"""``repro.serve`` -- batched, drift-aware inference serving.

The training pipelines (:mod:`repro.core`) end with a programmed
differential crossbar; this subsystem is everything that happens
*after* programming, when the array is deployed as an inference
accelerator:

* :mod:`repro.serve.artifact` -- the :class:`ProgrammedArray` bundle:
  a complete snapshot of a programmed crossbar (conductances, AMP
  permutation, device variation and defect maps, probe baseline)
  persisted through :class:`repro.runtime.cache.ArtifactCache`, so a
  serving process reconstructs the hardware bit-for-bit without
  re-training.
* :mod:`repro.serve.engine` -- the vectorized forward pass: inputs are
  routed through the AMP permutation and read in microbatches, so one
  IR-drop solve serves a whole batch instead of one query.
* :mod:`repro.serve.scheduler` -- a thread-based request queue with
  bounded depth, backpressure (reject with a retry-after hint),
  per-request deadlines and graceful shutdown.
* :mod:`repro.serve.health` -- the drift monitor: the probe set is
  replayed between batches and compared against the programming-time
  baseline (the paper's Fig. 2 column-output discrepancy); when the
  discrepancy crosses the policy threshold, the monitor triggers an
  AMP re-pretest and remap.
* :mod:`repro.serve.service` -- :class:`CrossbarService`, the facade
  wiring all four layers together (and the repair path the monitor
  invokes).
"""

from repro.serve.artifact import (
    ProgramConfig,
    ProgrammedArray,
    artifact_key,
    program_array,
)
from repro.serve.engine import InferenceEngine
from repro.serve.health import DriftMonitor, DriftPolicy
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    ServeOverloadedError,
)
from repro.serve.service import CrossbarService

__all__ = [
    "BatchScheduler",
    "CrossbarService",
    "DeadlineExceededError",
    "DriftMonitor",
    "DriftPolicy",
    "InferenceEngine",
    "ProgramConfig",
    "ProgrammedArray",
    "ServeOverloadedError",
    "artifact_key",
    "program_array",
]
