"""Programmed-array artifacts: persist and restore deployed crossbars.

Training and programming a crossbar is expensive (pre-test, gamma
tuning, AMP, open-loop programming); serving it should not repeat any
of that.  A :class:`ProgrammedArray` is the complete deployment bundle
of one programmed differential pair -- the achieved conductances, the
AMP input permutation, the ground-truth device variation and defect
maps, the calibrated gains, and a probe set with its programming-time
baseline outputs -- stored through the artifact cache under a stable
key derived from the :class:`ProgramConfig` that produced it.

Restoring is exact: :meth:`ProgrammedArray.build_pair` reconstructs
the hardware and adopts the snapshot state noise-free, so a serving
process sees bit-for-bit the array the programming run left behind.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.adc import ADC
from repro.circuits.sensing import CurrentSense
from repro.config import CrossbarConfig, DeviceConfig, VariationConfig
from repro.core.amp import RowMapping
from repro.core.base import HardwareSpec, build_pair
from repro.core.cld import train_cld
from repro.core.old import program_pair_open_loop, train_old
from repro.core.vortex import run_vortex
from repro.data import make_dataset
from repro.runtime.cache import ArtifactCache, stable_key
from repro.seeding import ensure_rng
from repro.xbar.mapping import WeightScaler
from repro.xbar.pair import DifferentialCrossbar

__all__ = [
    "ProgramConfig",
    "ProgrammedArray",
    "artifact_key",
    "program_array",
]

SCHEMES = ("vortex", "old", "cld")


@dataclasses.dataclass(frozen=True)
class ProgramConfig:
    """Everything that determines a programmed-array artifact.

    Frozen and hashable so it doubles as the artifact cache key (rule
    REP003): any field change produces a different key, and a re-run
    with identical settings is a pure cache read.

    Attributes:
        scheme: Training scheme: ``'vortex'``, ``'old'`` or ``'cld'``.
        image_size: Benchmark resolution (7, 14 or 28).
        n_train: Training samples.
        sigma: Persistent device variation of the fabricated pair.
        r_wire: Wire resistance per crossbar segment (ohm).
        redundancy: Extra physical rows for AMP to choose from
            (ignored by CLD, which trains the fabric in place).
        seed: Master seed for fabrication, pre-test and training.
        ir_mode: Read-fidelity model used at serving time.
        n_probes: Size of the drift-monitor probe set.
        backend: Default array namespace the artifact is served with
            (see :mod:`repro.backend`).  Programming always runs the
            bit-identical numpy reference path -- this field never
            changes the programmed conductances, it only records the
            deployment intent that ``serve`` picks up when no explicit
            ``--backend`` is given.
    """

    scheme: str = "vortex"
    image_size: int = 7
    n_train: int = 300
    sigma: float = 0.3
    r_wire: float = 0.0
    redundancy: int = 8
    seed: int = 0
    ir_mode: str = "ideal"
    n_probes: int = 32
    backend: str = "numpy"


def artifact_key(config: ProgramConfig) -> str:
    """Stable cache key of the artifact a config produces."""
    return stable_key("programmed_array", {"config": config})


@dataclasses.dataclass
class ProgrammedArray:
    """Deployment snapshot of one programmed differential pair.

    Attributes:
        scheme: Training scheme that produced the array.
        w_max: Weight magnitude mapped to full conductance.
        ir_mode: Read model the array was deployed for.
        weights: Logical weight matrix ``(n_logical, cols)``.
        assignment: AMP permutation ``assignment[p] = q``.
        n_physical: Physical rows (>= logical rows).
        g_pos: Achieved positive-array conductances ``(n_physical, cols)``.
        g_neg: Achieved negative-array conductances.
        theta_pos: Ground-truth persistent variation, positive array.
        theta_neg: Ground-truth persistent variation, negative array.
        defects_pos: Stuck-at defect map, positive array.
        defects_neg: Stuck-at defect map, negative array.
        x_mean: Mean input activity per logical feature.
        probes: Drift-monitor probe inputs ``(p, n_logical)``.
        baseline: Programming-time probe outputs ``(p, cols)`` -- the
            reference the drift monitor compares against.
        digital_gains: Calibrated per-column gains, or ``None``.
        metadata: Hardware description (crossbar/device/ADC fields)
            plus provenance (seed, training rate, gamma).
    """

    scheme: str
    w_max: float
    ir_mode: str
    weights: np.ndarray
    assignment: np.ndarray
    n_physical: int
    g_pos: np.ndarray
    g_neg: np.ndarray
    theta_pos: np.ndarray
    theta_neg: np.ndarray
    defects_pos: np.ndarray
    defects_neg: np.ndarray
    x_mean: np.ndarray
    probes: np.ndarray
    baseline: np.ndarray
    digital_gains: np.ndarray | None
    metadata: dict

    @property
    def mapping(self) -> RowMapping:
        """The AMP row assignment as a routing object."""
        return RowMapping(
            assignment=self.assignment, n_physical=self.n_physical
        )

    @property
    def n_logical(self) -> int:
        return int(self.assignment.size)

    # -- persistence ---------------------------------------------------
    def save(self, cache: ArtifactCache, key: str) -> str:
        """Persist the bundle under ``key`` (one ``.npz`` + one ``.json``)."""
        arrays = {
            "weights": self.weights,
            "assignment": self.assignment,
            "g_pos": self.g_pos,
            "g_neg": self.g_neg,
            "theta_pos": self.theta_pos,
            "theta_neg": self.theta_neg,
            "defects_pos": self.defects_pos,
            "defects_neg": self.defects_neg,
            "x_mean": self.x_mean,
            "probes": self.probes,
            "baseline": self.baseline,
        }
        if self.digital_gains is not None:
            arrays["digital_gains"] = self.digital_gains
        cache.put_arrays(key, **arrays)
        cache.put_json(
            key,
            {
                "scheme": self.scheme,
                "w_max": self.w_max,
                "ir_mode": self.ir_mode,
                "n_physical": self.n_physical,
                "metadata": self.metadata,
            },
        )
        return key

    @classmethod
    def load(cls, cache: ArtifactCache, key: str) -> "ProgrammedArray":
        """Load a bundle; raises ``KeyError`` when either half is missing."""
        doc = cache.get_json(key)
        arrays = cache.get_arrays(key)
        if doc is None or arrays is None:
            raise KeyError(f"no programmed-array artifact under key {key!r}")
        return cls(
            scheme=doc["scheme"],
            w_max=float(doc["w_max"]),
            ir_mode=doc["ir_mode"],
            weights=arrays["weights"],
            assignment=arrays["assignment"].astype(int),
            n_physical=int(doc["n_physical"]),
            g_pos=arrays["g_pos"],
            g_neg=arrays["g_neg"],
            theta_pos=arrays["theta_pos"],
            theta_neg=arrays["theta_neg"],
            defects_pos=arrays["defects_pos"],
            defects_neg=arrays["defects_neg"],
            x_mean=arrays["x_mean"],
            probes=arrays["probes"],
            baseline=arrays["baseline"],
            digital_gains=arrays.get("digital_gains"),
            metadata=doc["metadata"],
        )

    # -- reconstruction ------------------------------------------------
    def build_pair(self) -> DifferentialCrossbar:
        """Reconstruct the programmed hardware, bit-for-bit.

        A fresh pair is fabricated from the recorded hardware
        description (the fabrication draw is irrelevant -- it is
        immediately overwritten), then every array adopts the snapshot
        conductances, variation maps and defect maps noise-free via
        :meth:`~repro.xbar.pair.DifferentialCrossbar.restore_conductances`.
        """
        m = self.metadata
        device = DeviceConfig(**m["device"])
        config = CrossbarConfig(**m["crossbar"])
        scaler = WeightScaler(self.w_max, device)
        diff_sense = None
        if m.get("adc") is not None:
            adc = ADC(
                int(m["adc"]["bits"]),
                float(m["adc"]["full_scale"]),
                bipolar=bool(m["adc"]["bipolar"]),
            )
            diff_sense = CurrentSense(adc=adc)
        pair = DifferentialCrossbar(
            scaler=scaler,
            config=config,
            device=device,
            variation=VariationConfig(sigma=0.0, sigma_cycle=0.0),
            rng=np.random.default_rng(0),
            diff_sense=diff_sense,
        )
        pair.restore_conductances(
            self.g_pos, self.g_neg,
            theta_pos=self.theta_pos, theta_neg=self.theta_neg,
            defects_pos=self.defects_pos, defects_neg=self.defects_neg,
        )
        if self.digital_gains is not None:
            pair.digital_gains = np.asarray(self.digital_gains, dtype=float)
        if self.ir_mode == "reference":
            pair.set_reference_input(
                self.mapping.inputs_to_physical(self.x_mean)
            )
        return pair


def _snapshot_metadata(
    pair: DifferentialCrossbar, config: ProgramConfig, extra: dict
) -> dict:
    """Hardware description + provenance for a snapshot bundle."""
    adc = None
    if pair.diff_sense is not None and pair.diff_sense.adc is not None:
        a = pair.diff_sense.adc
        adc = {
            "bits": a.bits, "full_scale": a.full_scale,
            "bipolar": a.bipolar,
        }
    meta = {
        "crossbar": dataclasses.asdict(pair.config),
        "device": dataclasses.asdict(pair.positive.device),
        "adc": adc,
        "scheme": config.scheme,
        "sigma": config.sigma,
        "image_size": config.image_size,
        "seed": config.seed,
        "backend": config.backend,
    }
    meta.update(extra)
    return meta


def program_array(
    config: ProgramConfig,
    rng: np.random.Generator | None = None,
) -> ProgrammedArray:
    """Train, program and snapshot a crossbar per ``config``.

    Runs the configured scheme end to end on a freshly fabricated
    pair, replays the probe set through the deployment read path to
    record the programming-time baseline, and packages everything a
    serving process needs into a :class:`ProgrammedArray`.

    Args:
        config: What to program (scheme, scale, variation, seed).
        rng: Randomness override; derived from ``config.seed`` when
            omitted, so identical configs produce identical artifacts.
    """
    if config.scheme not in SCHEMES:
        raise ValueError(
            f"scheme must be one of {SCHEMES}, got {config.scheme!r}"
        )
    if rng is None:
        rng = np.random.default_rng(config.seed)
    rng = ensure_rng(rng, "repro.serve.artifact.program_array")

    dataset = make_dataset(
        n_train=config.n_train, n_test=64, seed=config.seed
    )
    if config.image_size != 28:
        dataset = dataset.undersampled(config.image_size)
    n_features = dataset.n_features
    x_train = dataset.x_train
    x_mean = x_train.mean(axis=0)

    spec = HardwareSpec(
        variation=VariationConfig(sigma=config.sigma),
        crossbar=CrossbarConfig(
            rows=n_features, cols=10, r_wire=config.r_wire
        ),
        ir_mode=config.ir_mode,
    )
    scaler = WeightScaler(1.0, spec.device)
    extra: dict = {}

    if config.scheme == "cld":
        # CLD trains the fabric itself; inputs already address physical
        # rows, so redundancy has nothing to choose from.
        pair = build_pair(spec, scaler, rng, rows=n_features)
        outcome = train_cld(
            pair, x_train, dataset.y_train, n_classes=10, rng=rng
        )
        weights = outcome.weights
        mapping = RowMapping(
            assignment=np.arange(n_features), n_physical=n_features
        )
        extra["training_rate"] = outcome.training_rate
    elif config.scheme == "old":
        pair = build_pair(
            spec, scaler, rng, rows=n_features + config.redundancy
        )
        outcome = train_old(x_train, dataset.y_train, n_classes=10)
        weights = outcome.weights
        mapping = RowMapping(
            assignment=np.arange(n_features),
            n_physical=n_features + config.redundancy,
        )
        program_pair_open_loop(
            pair,
            mapping.weights_to_physical(weights),
            x_reference=mapping.inputs_to_physical(x_mean),
        )
        extra["training_rate"] = outcome.training_rate
    else:  # vortex
        pair = build_pair(
            spec, scaler, rng, rows=n_features + config.redundancy
        )
        result = run_vortex(
            pair, x_train, dataset.y_train, n_classes=10, rng=rng
        )
        weights = result.weights
        mapping = result.mapping
        extra.update(
            training_rate=result.training_rate,
            gamma=result.gamma,
            sigma_effective=result.sigma_effective,
        )

    probes = x_train[: min(config.n_probes, x_train.shape[0])].copy()
    # Deployment-time calibration: range the sense chain to the probe
    # traffic before recording the baseline the monitor compares to.
    pair.calibrate_sense(mapping.inputs_to_physical(probes))
    baseline = pair.matvec(
        mapping.inputs_to_physical(probes), config.ir_mode
    )

    return ProgrammedArray(
        scheme=config.scheme,
        w_max=scaler.w_max,
        ir_mode=config.ir_mode,
        weights=np.asarray(weights, dtype=float),
        assignment=mapping.assignment.copy(),
        n_physical=mapping.n_physical,
        g_pos=pair.positive.array.conductance.copy(),
        g_neg=pair.negative.array.conductance.copy(),
        theta_pos=pair.positive.array.theta.copy(),
        theta_neg=pair.negative.array.theta.copy(),
        defects_pos=pair.positive.array.defects.copy(),
        defects_neg=pair.negative.array.defects.copy(),
        x_mean=x_mean,
        probes=probes,
        baseline=np.asarray(baseline, dtype=float),
        digital_gains=(
            None if pair.digital_gains is None
            else pair.digital_gains.copy()
        ),
        metadata=_snapshot_metadata(pair, config, extra),
    )
