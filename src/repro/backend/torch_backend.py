"""Torch array namespace (optional dependency).

Importing this module requires ``torch``; the registry factory in
:mod:`repro.backend.core` translates an ``ImportError`` into
:class:`~repro.backend.core.BackendUnavailableError`, so the rest of
the package never needs torch installed.

All tensors are ``float64`` on CPU by default (matching the numpy
kernels' dtype so parity tolerances stay tight); pass ``device="cuda"``
to :class:`TorchBackend` for GPU execution.  Random draws still come
from numpy generators — see :mod:`repro.backend.core` — so the torch
path consumes the *same* random stream as the reference path and
differs only by floating-point accumulation order.
"""

from __future__ import annotations

import numpy as np

from repro.backend.core import ArrayBackend, BackendUnavailableError

try:  # pragma: no cover - exercised only when torch is installed
    import torch
except ImportError as exc:  # pragma: no cover
    raise BackendUnavailableError(
        "the 'torch' backend requires PyTorch; install it with e.g. "
        "pip install torch --index-url "
        "https://download.pytorch.org/whl/cpu"
    ) from exc

_DTYPES = {
    float: torch.float64,
    bool: torch.bool,
    int: torch.int64,
}


class TorchBackend(ArrayBackend):
    """Parity namespace backed by ``torch`` tensors."""

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        self.device = torch.device(device)

    def _dtype(self, dtype):
        return _DTYPES.get(dtype, dtype if dtype is not None else None)

    # -- conversion boundary ------------------------------------------

    def asarray(self, x, dtype=float):
        if isinstance(x, torch.Tensor):
            tensor = x
        else:
            tensor = torch.as_tensor(np.asarray(x))
        return tensor.to(device=self.device, dtype=self._dtype(dtype))

    def to_numpy(self, x):
        if isinstance(x, torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    # -- op set --------------------------------------------------------

    def einsum(self, subscripts, *operands):
        return torch.einsum(subscripts, *(self.asarray(o) for o in operands))

    def stack(self, arrays, axis=0):
        return torch.stack([self.asarray(a) for a in arrays], dim=axis)

    def concatenate(self, arrays, axis=0):
        return torch.cat([self.asarray(a) for a in arrays], dim=axis)

    def where(self, condition, x, y):
        cond = torch.as_tensor(condition, device=self.device, dtype=torch.bool)
        if not isinstance(x, torch.Tensor):
            x = torch.as_tensor(x, device=self.device, dtype=torch.float64)
        if not isinstance(y, torch.Tensor):
            y = torch.as_tensor(y, device=self.device, dtype=torch.float64)
        return torch.where(cond, x, y)

    def clip(self, x, lo, hi):
        x = self.asarray(x, dtype=None)
        lo = None if lo is None else torch.as_tensor(
            lo, device=self.device, dtype=x.dtype
        )
        hi = None if hi is None else torch.as_tensor(
            hi, device=self.device, dtype=x.dtype
        )
        return torch.clamp(x, min=lo, max=hi)

    def exp(self, x):
        return torch.exp(self.asarray(x))

    def log(self, x):
        return torch.log(self.asarray(x))

    def sqrt(self, x):
        return torch.sqrt(self.asarray(x))

    def abs(self, x):
        return torch.abs(self.asarray(x, dtype=None))

    def sign(self, x):
        return torch.sign(self.asarray(x))

    def round(self, x):
        # torch.round rounds half to even, matching numpy.round.
        return torch.round(self.asarray(x))

    def maximum(self, x, y):
        x = self.asarray(x)
        return torch.maximum(x, torch.as_tensor(y, device=self.device,
                                                dtype=x.dtype))

    def minimum(self, x, y):
        x = self.asarray(x)
        return torch.minimum(x, torch.as_tensor(y, device=self.device,
                                                dtype=x.dtype))

    def quantile(self, x, q, axis=None):
        x = self.asarray(x)
        if axis is None:
            return torch.quantile(x.reshape(-1), q)
        if isinstance(axis, tuple):
            # torch.quantile takes a single dim; flatten the requested
            # axes (must be trailing-contiguous, which is all the
            # kernels use) into one.
            axes = sorted(a % x.ndim for a in axis)
            if axes != list(range(axes[0], axes[0] + len(axes))):
                raise ValueError(
                    f"torch quantile needs contiguous axes, got {axis}"
                )
            shape = list(x.shape)
            lead = shape[: axes[0]]
            tail = shape[axes[-1] + 1:]
            flat = int(np.prod([shape[a] for a in axes]))
            x = x.reshape(lead + [flat] + tail)
            return torch.quantile(x, q, dim=axes[0])
        return torch.quantile(x, q, dim=axis)

    def argmax(self, x, axis=None):
        x = self.asarray(x, dtype=None)
        if axis is None:
            return torch.argmax(x)
        return torch.argmax(x, dim=axis)

    def mean(self, x, axis=None):
        x = self.asarray(x, dtype=None)
        if x.dtype in (torch.bool, torch.int64):
            x = x.to(torch.float64)
        if axis is None:
            return torch.mean(x)
        return torch.mean(x, dim=axis)

    def sum(self, x, axis=None):
        x = self.asarray(x, dtype=None)
        if axis is None:
            return torch.sum(x)
        return torch.sum(x, dim=axis)

    def zeros(self, shape, dtype=float):
        return torch.zeros(self._shape(shape), dtype=self._dtype(dtype),
                           device=self.device)

    def ones(self, shape, dtype=float):
        return torch.ones(self._shape(shape), dtype=self._dtype(dtype),
                          device=self.device)

    def full(self, shape, fill_value, dtype=float):
        return torch.full(self._shape(shape), float(fill_value),
                          dtype=self._dtype(dtype), device=self.device)

    def atleast_2d(self, x):
        return torch.atleast_2d(self.asarray(x, dtype=None))

    @staticmethod
    def _shape(shape):
        return (shape,) if isinstance(shape, int) else tuple(shape)
