"""Multi-backend array core: one kernel source, many array libraries.

See :mod:`repro.backend.core` for the contracts (numpy = bit-identical
reference path, torch = documented-tolerance parity path) and
``docs/backends.md`` for the user-facing guide.
"""

from repro.backend.core import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    get_namespace,
    register_backend,
    resolve_backend,
    to_numpy,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "get_namespace",
    "register_backend",
    "resolve_backend",
    "to_numpy",
]
