"""Array-namespace abstraction for the hot kernels.

``repro`` keeps one source of truth for its crossbar math, written
against a small array namespace (:class:`ArrayBackend`) instead of
``numpy`` directly.  The namespace covers the ~25 operations the
kernels actually use (einsum, stacking, clip/where, elementwise math,
axis reductions, quantiles) plus the conversion boundary
(``asarray`` / ``to_numpy``) and an RNG bridge.

Two contracts, deliberately asymmetric:

* The **numpy backend is the reference path**: every method delegates
  to the exact ``numpy`` call the kernels used before the refactor, so
  running a ported kernel with the default backend is *bit-identical*
  to the pre-refactor code.  ``tests/backend/test_golden.py`` pins
  this against captured pre-refactor outputs.
* Alternate backends (torch) are **parity paths**: numerically close
  (atol/rtol-based, see ``docs/backends.md``) but not bit-identical,
  because accumulation order differs between BLAS implementations.

Randomness never moves off numpy.  All draws come from
``numpy.random.Generator`` objects derived from the experiment's
``SeedSequence`` tree and are then converted to the active backend
(:meth:`ArrayBackend.standard_normal` and friends).  This keeps the
random *stream* identical across backends, so parity differences can
only come from arithmetic, never from sampling.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "get_namespace",
    "register_backend",
    "resolve_backend",
    "to_numpy",
]

BackendSpec = Union[str, "ArrayBackend", None]


class BackendUnavailableError(RuntimeError):
    """Raised when a requested backend cannot be constructed."""


class ArrayBackend:
    """Base class for array namespaces.

    Subclasses implement the operation set on their library's arrays.
    Instances are lightweight, stateless and picklable: pickling
    round-trips through :func:`get_namespace` by name, so a backend
    object can ride along into process-pool workers.
    """

    #: Registry name ("numpy", "torch", ...).
    name: str = ""

    def __reduce__(self):
        return (get_namespace, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    @property
    def is_reference(self) -> bool:
        """True for the bit-identical numpy reference path."""
        return self.name == "numpy"

    # -- conversion boundary ------------------------------------------

    def asarray(self, x: Any, dtype: Any = float) -> Any:
        raise NotImplementedError

    def to_numpy(self, x: Any) -> np.ndarray:
        raise NotImplementedError

    # -- RNG bridge (draws always come from numpy Generators) ---------

    def standard_normal(self, rng: np.random.Generator, shape) -> Any:
        return self.asarray(rng.standard_normal(shape))

    def uniform(self, rng: np.random.Generator, low, high, shape) -> Any:
        return self.asarray(rng.uniform(low, high, size=shape))

    def lognormal(self, rng: np.random.Generator, sigma: float, shape) -> Any:
        """``exp(N(0, sigma))`` multipliers; draw on numpy, exp on backend."""
        return self.exp(self.asarray(rng.normal(0.0, sigma, size=shape)))

    # -- generic ops shared by all namespaces -------------------------

    def take_range(self, x, start: int, stop: int, axis: int):
        """Contiguous range along ``axis``; values match ``np.take``."""
        index = [slice(None)] * x.ndim
        index[axis] = slice(start, stop)
        return x[tuple(index)]


def _backend_op(np_func: Callable, *, method_name: str | None = None):
    """Build a NumpyBackend method that *is* the given numpy function.

    Delegating with ``*args, **kwargs`` (rather than re-spelling each
    signature) guarantees the reference path calls the identical numpy
    entry point the kernels called before the refactor.
    """

    def op(self, *args, **kwargs):
        return np_func(*args, **kwargs)

    op.__name__ = method_name or np_func.__name__
    op.__doc__ = f"Delegates to ``numpy.{np_func.__name__}``."
    return op


class NumpyBackend(ArrayBackend):
    """The reference namespace: every op is the plain numpy call."""

    name = "numpy"

    def asarray(self, x, dtype=float):
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x):
        return np.asarray(x)

    # Elementwise / shaping ops: direct numpy delegation so the
    # reference path stays function-identical to pre-refactor code.
    einsum = _backend_op(np.einsum)
    stack = _backend_op(np.stack)
    concatenate = _backend_op(np.concatenate)
    where = _backend_op(np.where)
    clip = _backend_op(np.clip)
    exp = _backend_op(np.exp)
    log = _backend_op(np.log)
    sqrt = _backend_op(np.sqrt)
    abs = _backend_op(np.abs, method_name="abs")
    sign = _backend_op(np.sign)
    round = _backend_op(np.round, method_name="round")
    maximum = _backend_op(np.maximum)
    minimum = _backend_op(np.minimum)
    quantile = _backend_op(np.quantile)
    argmax = _backend_op(np.argmax)
    mean = _backend_op(np.mean)
    sum = _backend_op(np.sum, method_name="sum")
    zeros = _backend_op(np.zeros)
    ones = _backend_op(np.ones)
    full = _backend_op(np.full)
    atleast_2d = _backend_op(np.atleast_2d)


_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory may raise :class:`BackendUnavailableError` (e.g. when
    an optional dependency is missing); the name still shows up to
    :func:`get_namespace` with a clear error, but not in
    :func:`available_backends`.
    """
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def get_namespace(name: str) -> ArrayBackend:
    """Return the :class:`ArrayBackend` registered under ``name``.

    Raises :class:`BackendUnavailableError` when the backend exists
    but cannot be constructed (missing optional dependency) and
    ``ValueError`` for names that were never registered.
    """
    if name in _INSTANCES:
        return _INSTANCES[name]
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown array backend {name!r} (known: {known})")
    backend = _REGISTRY[name]()
    _INSTANCES[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of backends that can actually be constructed, in
    registration order (numpy first)."""
    names = []
    for name in _REGISTRY:
        try:
            get_namespace(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def resolve_backend(backend: BackendSpec) -> ArrayBackend:
    """Normalise a backend argument.

    ``None`` resolves to the numpy reference path, strings go through
    :func:`get_namespace`, and :class:`ArrayBackend` instances pass
    through unchanged.
    """
    if backend is None:
        return get_namespace("numpy")
    if isinstance(backend, ArrayBackend):
        return backend
    if isinstance(backend, str):
        return get_namespace(backend)
    raise TypeError(
        f"backend must be None, a name, or an ArrayBackend, "
        f"got {type(backend).__name__}"
    )


def to_numpy(x: Any) -> np.ndarray:
    """Convert any backend's array (or a nested python structure of
    scalars) to a numpy array without importing optional libraries."""
    if isinstance(x, np.ndarray):
        return x
    detach = getattr(x, "detach", None)
    if detach is not None:  # torch tensors, including CUDA
        x = detach()
        cpu = getattr(x, "cpu", None)
        if cpu is not None:
            x = cpu()
        return x.numpy()
    return np.asarray(x)


register_backend("numpy", NumpyBackend)


def _torch_factory() -> ArrayBackend:
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend()


register_backend("torch", _torch_factory)
