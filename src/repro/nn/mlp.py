"""Two-crossbar multilayer perceptron deployment.

The paper's NCS is a single weight layer (784x10).  Scaling the same
hardware story to a hidden layer needs two crossbar pairs with a
neuron nonlinearity between them -- the canonical next step its
introduction motivates (deep networks as the workload pushing the
memory wall).  This module provides:

* a small software MLP (one hidden layer, ReLU) trained by plain
  backprop on the hinge-style one-vs-all targets, and
* a hardware deployment that runs both matrix-vector products through
  differential crossbar pairs, with the activation computed in the
  digital domain between them (the usual mixed-signal partitioning).

Because the hidden activations must re-enter a crossbar as word-line
drives in [0, 1], the deployment rescales each layer's activations by
a calibrated digital gain -- the same normalisation-invariance trick
the single-layer flow uses.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.linear import one_vs_all_targets

__all__ = ["MLPConfig", "MLPWeights", "train_mlp", "MLPOnCrossbars"]


@dataclasses.dataclass(frozen=True)
class MLPConfig:
    """Software MLP hyper-parameters.

    Attributes:
        hidden: Hidden-layer width.
        learning_rate: Backprop step size.
        epochs: Full-batch iterations.
        momentum: Heavy-ball coefficient.
        l2: Ridge regularisation.
        seed: Weight-initialisation seed.
    """

    hidden: int = 64
    learning_rate: float = 0.2
    epochs: int = 300
    momentum: float = 0.9
    l2: float = 1e-4
    seed: int = 0


@dataclasses.dataclass
class MLPWeights:
    """Trained parameters of the one-hidden-layer network.

    Attributes:
        w1: Input -> hidden weights ``(n, h)`` (bias folded in via an
            always-on input handled by the caller if desired).
        w2: Hidden -> output weights ``(h, m)``.
    """

    w1: np.ndarray
    w2: np.ndarray

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Software forward pass."""
        hidden = np.maximum(np.asarray(x, dtype=float) @ self.w1, 0.0)
        return hidden @ self.w2

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(
            np.argmax(self.scores(x), axis=1) == np.asarray(labels)
        ))


def train_mlp(
    x: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    config: MLPConfig | None = None,
) -> MLPWeights:
    """Train the one-hidden-layer network with full-batch backprop.

    Hinge-style objective on one-vs-all targets (consistent with the
    single-layer flow): ``sum max(0, 1 - y * score)`` back-propagated
    through the ReLU hidden layer.
    """
    cfg = config if config is not None else MLPConfig()
    x = np.asarray(x, dtype=float)
    y = one_vs_all_targets(np.asarray(labels), n_classes)
    s, n = x.shape
    rng = np.random.default_rng(cfg.seed)
    w1 = rng.normal(0.0, np.sqrt(2.0 / n), size=(n, cfg.hidden))
    w2 = rng.normal(0.0, np.sqrt(2.0 / cfg.hidden),
                    size=(cfg.hidden, n_classes))
    v1 = np.zeros_like(w1)
    v2 = np.zeros_like(w2)
    for _ in range(cfg.epochs):
        hidden_pre = x @ w1
        hidden = np.maximum(hidden_pre, 0.0)
        scores = hidden @ w2
        margin = y * scores
        active = (margin < 1.0).astype(float)
        d_scores = -(active * y) / s
        g2 = hidden.T @ d_scores + cfg.l2 * w2
        d_hidden = (d_scores @ w2.T) * (hidden_pre > 0)
        g1 = x.T @ d_hidden + cfg.l2 * w1
        v1 = cfg.momentum * v1 - cfg.learning_rate * g1
        v2 = cfg.momentum * v2 - cfg.learning_rate * g2
        w1 = w1 + v1
        w2 = w2 + v2
    return MLPWeights(w1=w1, w2=w2)


class MLPOnCrossbars:
    """Hardware inference of a trained MLP through two crossbar pairs.

    Args:
        weights: Trained software parameters.
        layer1: Differential pair (or tiled pair) with
            ``shape == w1.shape``; programmed by :meth:`program`.
        layer2: Differential pair with ``shape == w2.shape``.
        hidden_gain: Inter-layer digital gain.  Defaults to 1.0 and is
            normally calibrated by :meth:`program`; pass the recorded
            gain when the layers are *restored* snapshots of hardware
            that was already programmed and calibrated (no
            :meth:`program` call), e.g. when rebuilding the offline
            reference of a served pipeline.

    Both pairs carry their own fabrication variation; the deployment
    programs them with the usual global normalisation per layer and
    restores the scales digitally around the ReLU.
    """

    def __init__(self, weights: MLPWeights, layer1, layer2,
                 hidden_gain: float = 1.0):
        self.weights = weights
        if tuple(layer1.shape) != weights.w1.shape:
            raise ValueError(
                f"layer1 shape {layer1.shape} != w1 {weights.w1.shape}"
            )
        if tuple(layer2.shape) != weights.w2.shape:
            raise ValueError(
                f"layer2 shape {layer2.shape} != w2 {weights.w2.shape}"
            )
        self.layer1 = layer1
        self.layer2 = layer2
        self._scale1 = float(np.max(np.abs(weights.w1))) or 1.0
        self._scale2 = float(np.max(np.abs(weights.w2))) or 1.0
        self._hidden_gain = float(hidden_gain)

    @property
    def scale1(self) -> float:
        """Digital restore gain of layer 1 (``max |w1|``)."""
        return self._scale1

    @property
    def scale2(self) -> float:
        """Digital restore gain of layer 2 (``max |w2|``)."""
        return self._scale2

    @property
    def hidden_gain(self) -> float:
        """Calibrated inter-layer digital gain."""
        return self._hidden_gain

    def program(self, x_calibration: np.ndarray | None = None) -> None:
        """Program both layers and calibrate the inter-layer gain.

        The hidden activations must fit the second crossbar's [0, 1]
        input range; a digital gain (folded into the final scores)
        normalises them using a calibration batch.
        """
        # Normalise each layer to the representable range; the scales
        # are restored digitally in the forward pass (argmax-invariant).
        self.layer1.program_weights(self.weights.w1 / self._scale1)
        self.layer2.program_weights(self.weights.w2 / self._scale2)
        if x_calibration is not None:
            hidden = self._hidden(np.atleast_2d(x_calibration))
            peak = float(np.quantile(hidden, 0.999))
            self._hidden_gain = 1.0 / peak if peak > 0 else 1.0

    def _hidden(self, x: np.ndarray) -> np.ndarray:
        out = self.layer1.matvec(x) * self._scale1
        return np.maximum(out, 0.0)

    def scores(self, x: np.ndarray, ir_mode: str = "ideal") -> np.ndarray:
        """Hardware forward pass (scores up to a positive factor)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out1 = self.layer1.matvec(x, ir_mode) * self._scale1
        hidden = np.clip(np.maximum(out1, 0.0) * self._hidden_gain,
                         0.0, 1.0)
        out2 = self.layer2.matvec(hidden, ir_mode) * self._scale2
        return out2

    def accuracy(
        self, x: np.ndarray, labels: np.ndarray, ir_mode: str = "ideal"
    ) -> float:
        """Hardware classification rate."""
        preds = np.argmax(self.scores(x, ir_mode), axis=1)
        return float(np.mean(preds == np.asarray(labels)))
