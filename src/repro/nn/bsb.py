"""Brain-State-in-a-Box (BSB) associative recall.

The paper's close-loop baseline descends from BSB training on memristor
crossbars (its ref. [9], Hu et al., and ref. [6], the BSB recall
function realised with crossbars).  BSB is an auto-associative
attractor network: stored prototypes are corners of the hypercube
``[-1, 1]^n``, and recall iterates

    x(t+1) = clip(alpha * W @ x(t) + lambda * x(t), -1, 1)

until the state saturates at a corner.  This module provides the
software model -- training rule, recall dynamics, and quality metrics
-- and a hardware recall loop that runs the matrix-vector product
through a differential crossbar pair, making BSB a second workload for
every training scheme in :mod:`repro.core`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.xbar.crossbar import batch_invariant_matmul

__all__ = [
    "BSBConfig",
    "BSBResult",
    "train_bsb_weights",
    "bsb_recall",
    "bsb_recall_batch",
    "recall_success_rate",
    "noisy_probe",
]


@dataclasses.dataclass(frozen=True)
class BSBConfig:
    """BSB dynamics and training parameters.

    Attributes:
        alpha: Feedback gain on the weight product.
        lam: Leakage gain on the current state (``lambda`` in the BSB
            literature).
        max_iterations: Recall iteration budget.
        train_lr: Learning rate of the prototype-storage rule.
        train_epochs: Passes of the storage rule over the prototypes.
    """

    alpha: float = 0.35
    lam: float = 1.0
    max_iterations: int = 60
    train_lr: float = 0.2
    train_epochs: int = 200


@dataclasses.dataclass
class BSBResult:
    """Outcome of one recall run.

    Attributes:
        state: Final state vector in ``[-1, 1]^n``.
        iterations: Iterations executed before saturation (or the
            budget).
        converged: Whether every component saturated to +-1.
    """

    state: np.ndarray
    iterations: int
    converged: bool


def train_bsb_weights(
    prototypes: np.ndarray, config: BSBConfig | None = None
) -> np.ndarray:
    """Store prototype patterns as BSB attractors.

    Uses the iterative error-correction rule of the BSB literature
    (and of the paper's ref. [9]): for each prototype ``p``,

        W <- W + lr * (p - W p) p^T / n

    which drives ``W p -> p`` (prototypes become eigenvectors with
    eigenvalue ~1, hence stable corners of the saturating dynamics).

    Args:
        prototypes: Patterns in {-1, +1}, shape ``(k, n)``.
        config: Training parameters.

    Returns:
        Weight matrix ``(n, n)``.
    """
    cfg = config if config is not None else BSBConfig()
    protos = np.asarray(prototypes, dtype=float)
    if protos.ndim != 2:
        raise ValueError("prototypes must be (k, n)")
    if not np.all(np.isin(protos, (-1.0, 1.0))):
        raise ValueError("prototypes must be bipolar (+-1)")
    k, n = protos.shape
    w = np.zeros((n, n))
    for _ in range(cfg.train_epochs):
        error_norm = 0.0
        for p in protos:
            err = p - w @ p
            w += cfg.train_lr * np.outer(err, p) / n
            error_norm += float(np.linalg.norm(err))
        if error_norm / k < 1e-6:
            break
    return w


def _resolve_matvec(
    matvec: Callable[[np.ndarray], np.ndarray] | None,
    weights: np.ndarray | None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Exactly-one-of validation shared by the recall entry points.

    The software fallback routes through
    :func:`~repro.xbar.crossbar.batch_invariant_matmul` (einsum with a
    fixed accumulation order), so a state recalled alone and the same
    state recalled inside a batch produce bit-identical trajectories —
    the same contract the hardware read path already honours.
    """
    if (matvec is None) == (weights is None):
        raise ValueError("pass exactly one of matvec / weights")
    if matvec is None:
        wt = np.ascontiguousarray(np.asarray(weights, dtype=float).T)
        matvec = lambda v: batch_invariant_matmul(v, wt)  # noqa: E731
    return matvec


def bsb_recall(
    probe: np.ndarray,
    config: BSBConfig | None = None,
    matvec: Callable[[np.ndarray], np.ndarray] | None = None,
    weights: np.ndarray | None = None,
) -> BSBResult:
    """Run the saturating BSB recall dynamics from a probe state.

    Args:
        probe: Initial state, shape ``(n,)``, values in [-1, 1].
        config: Dynamics parameters.
        matvec: The ``W @ x`` implementation -- pass a crossbar's
            read path for hardware recall.  Exactly one of ``matvec``
            and ``weights`` must be given.
        weights: Software weight matrix alternative to ``matvec``.

    Returns:
        A :class:`BSBResult`.
    """
    cfg = config if config is not None else BSBConfig()
    matvec = _resolve_matvec(matvec, weights)
    state = np.clip(np.asarray(probe, dtype=float), -1.0, 1.0)
    for iteration in range(1, cfg.max_iterations + 1):
        state = np.clip(
            cfg.alpha * np.asarray(matvec(state)) + cfg.lam * state,
            -1.0,
            1.0,
        )
        if np.all(np.abs(state) >= 1.0 - 1e-12):
            return BSBResult(state=state, iterations=iteration,
                             converged=True)
    return BSBResult(state=state, iterations=cfg.max_iterations,
                     converged=False)


def bsb_recall_batch(
    probes: np.ndarray,
    config: BSBConfig | None = None,
    matvec: Callable[[np.ndarray], np.ndarray] | None = None,
    weights: np.ndarray | None = None,
) -> list[BSBResult]:
    """Recall many probes through one batched read per iteration.

    Semantically a loop of :func:`bsb_recall` over the rows of
    ``probes`` — and bit-identical to that loop, because every read
    path involved is batch-invariant — but each iteration drives all
    still-active states through ``matvec`` as a single batch, so a
    crossbar (or a served fleet) sees one batched read instead of one
    read per probe.  A state that saturates is frozen at its
    convergence iteration and leaves the active batch, exactly as the
    looped dynamics would have stopped it.

    Args:
        probes: Initial states, shape ``(k, n)``.
        config: Dynamics parameters.
        matvec: Batched ``W @ x`` implementation mapping ``(b, n)`` to
            ``(b, n)`` (hardware read paths already are).  Exactly one
            of ``matvec`` and ``weights`` must be given.
        weights: Software weight matrix alternative to ``matvec``.

    Returns:
        One :class:`BSBResult` per probe row, in probe order.
    """
    cfg = config if config is not None else BSBConfig()
    matvec = _resolve_matvec(matvec, weights)
    states = np.clip(
        np.atleast_2d(np.asarray(probes, dtype=float)), -1.0, 1.0
    )
    k = states.shape[0]
    results: list[BSBResult | None] = [None] * k
    active = np.arange(k)
    for iteration in range(1, cfg.max_iterations + 1):
        if active.size == 0:
            break
        sub = states[active]
        updated = np.clip(
            cfg.alpha * np.asarray(matvec(sub)) + cfg.lam * sub,
            -1.0,
            1.0,
        )
        states[active] = updated
        saturated = np.all(np.abs(updated) >= 1.0 - 1e-12, axis=1)
        for row in active[saturated]:
            results[row] = BSBResult(
                state=states[row].copy(),
                iterations=iteration,
                converged=True,
            )
        active = active[~saturated]
    for row in active:
        results[row] = BSBResult(
            state=states[row].copy(),
            iterations=cfg.max_iterations,
            converged=False,
        )
    return results  # type: ignore[return-value]


def noisy_probe(
    prototype: np.ndarray,
    flip_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A prototype with a fraction of its components sign-flipped."""
    p = np.asarray(prototype, dtype=float).copy()
    if not 0.0 <= flip_fraction <= 1.0:
        raise ValueError("flip_fraction must be in [0, 1]")
    n_flip = int(round(flip_fraction * p.size))
    idx = rng.choice(p.size, size=n_flip, replace=False)
    p[idx] = -p[idx]
    return p


def recall_success_rate(
    prototypes: np.ndarray,
    flip_fraction: float,
    rng: np.random.Generator,
    config: BSBConfig | None = None,
    matvec: Callable[[np.ndarray], np.ndarray] | None = None,
    weights: np.ndarray | None = None,
    probes_per_prototype: int = 8,
) -> float:
    """Fraction of noisy probes recalled to their own prototype.

    A probe counts as recalled when the final state matches its source
    prototype on more components than any other stored prototype and
    on at least 95 % of all components.

    The probes are drawn in a fixed order (prototype-major, exactly the
    stream the historical per-probe loop consumed from ``rng``), then
    recalled in one :func:`bsb_recall_batch` call — so the rate is
    bit-identical to the looped computation while costing one batched
    read per recall iteration.  ``matvec``, when given, must therefore
    accept ``(b, n)`` batches; crossbar read paths already do.
    """
    protos = np.asarray(prototypes, dtype=float)
    probes = np.stack([
        noisy_probe(p, flip_fraction, rng)
        for p in protos
        for _ in range(probes_per_prototype)
    ], axis=0)
    sources = np.repeat(
        np.arange(protos.shape[0]), probes_per_prototype
    )
    results = bsb_recall_batch(
        probes, config, matvec=matvec, weights=weights
    )
    signs = np.stack([np.sign(r.state) for r in results], axis=0)
    agreements = (signs[:, None, :] == protos[None, :, :]).mean(axis=2)
    own = agreements[np.arange(len(results)), sources]
    hits = (own >= 0.95) & (own >= agreements.max(axis=1) - 1e-12)
    return float(np.sum(hits)) / len(results)
