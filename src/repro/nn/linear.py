"""One-vs-all linear classifier (the paper's network model).

The NCS implements a two-layer network: the input layer drives the
crossbar rows and the ten output currents directly score the ten digit
classes ("1 vs. all", Section 4.1.1).  Functionally this is a linear
classifier ``scores = x @ W`` with prediction ``argmax``; the bias is
realised as an always-on input row appended to the feature vector, the
standard crossbar idiom.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearClassifier", "one_vs_all_targets", "add_bias_feature"]


def add_bias_feature(x: np.ndarray, value: float = 1.0) -> np.ndarray:
    """Append a constant (always-on) feature column.

    In crossbar hardware the bias weight occupies one extra row whose
    word line is tied to the read voltage.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        return np.concatenate([x, [value]])
    return np.concatenate(
        [x, np.full((x.shape[0], 1), value, dtype=float)], axis=1
    )


def one_vs_all_targets(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels as a {-1, +1} one-vs-all target matrix.

    ``Y[i, r] = +1`` iff sample ``i`` belongs to class ``r`` (Eq. 3's
    ``y_r`` convention).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if np.any(labels < 0) or np.any(labels >= n_classes):
        raise ValueError(f"labels must lie in [0, {n_classes})")
    y = -np.ones((labels.size, n_classes))
    y[np.arange(labels.size), labels] = 1.0
    return y


class LinearClassifier:
    """A weight matrix with argmax decision rule.

    Args:
        weights: Weight matrix ``(n_features, n_classes)``; copied.
    """

    def __init__(self, weights: np.ndarray):
        w = np.array(weights, dtype=float, copy=True)
        if w.ndim != 2:
            raise ValueError("weights must be 2-D")
        self.weights = w

    @property
    def n_features(self) -> int:
        return self.weights.shape[0]

    @property
    def n_classes(self) -> int:
        return self.weights.shape[1]

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Class scores ``x @ W`` for a sample or batch."""
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.n_features:
            raise ValueError(
                f"input width {x.shape[-1]} != n_features {self.n_features}"
            )
        return x @ self.weights

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices (argmax of scores)."""
        s = self.scores(x)
        return np.argmax(s, axis=-1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy against integer labels."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(x) == labels))
