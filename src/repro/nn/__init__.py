"""Neural-network substrate: linear one-vs-all model, GDT, metrics."""

from repro.nn.bsb import (
    BSBConfig,
    BSBResult,
    bsb_recall,
    noisy_probe,
    recall_success_rate,
    train_bsb_weights,
)
from repro.nn.gdt import GDTConfig, GDTResult, train_gdt
from repro.nn.mlp import MLPConfig, MLPOnCrossbars, MLPWeights, train_mlp
from repro.nn.linear import (
    LinearClassifier,
    add_bias_feature,
    one_vs_all_targets,
)
from repro.nn.metrics import (
    classification_rate,
    confusion_matrix,
    per_class_rates,
    rate_from_scores,
)
from repro.nn.objectives import (
    hinge_gradient,
    hinge_loss,
    robust_hinge_gradient,
    robust_hinge_loss,
    variation_penalty,
)
from repro.nn.split import Split, stratified_split

__all__ = [
    "BSBConfig",
    "BSBResult",
    "GDTConfig",
    "GDTResult",
    "LinearClassifier",
    "MLPConfig",
    "MLPOnCrossbars",
    "MLPWeights",
    "Split",
    "add_bias_feature",
    "bsb_recall",
    "classification_rate",
    "confusion_matrix",
    "hinge_gradient",
    "hinge_loss",
    "noisy_probe",
    "one_vs_all_targets",
    "per_class_rates",
    "rate_from_scores",
    "recall_success_rate",
    "robust_hinge_gradient",
    "robust_hinge_loss",
    "stratified_split",
    "train_bsb_weights",
    "train_gdt",
    "train_mlp",
    "variation_penalty",
]
