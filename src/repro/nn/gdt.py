"""Software gradient-descent training (GDT) of the linear network.

The reference trainer behind both OLD (which trains in software and
programs once) and the idealised upper bounds in the experiments.  It
minimises the (optionally robust) hinge objective of
:mod:`repro.nn.objectives` by full-batch subgradient descent with
momentum and step decay -- deterministic given the initial weights, so
experiments reproduce bit-for-bit from a seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.objectives import robust_hinge_gradient, robust_hinge_loss

__all__ = ["GDTConfig", "GDTResult", "train_gdt"]


@dataclasses.dataclass(frozen=True)
class GDTConfig:
    """Hyper-parameters of the software subgradient trainer.

    Attributes:
        learning_rate: Initial step size ``alpha`` (Eq. 1).
        momentum: Heavy-ball momentum coefficient.
        epochs: Number of full-batch iterations.
        decay: Multiplicative step decay applied each epoch.
        l2: Optional ridge regularisation on the weights.
        tolerance: Early-stop when the loss improvement over an epoch
            falls below this value.
    """

    learning_rate: float = 0.5
    momentum: float = 0.9
    epochs: int = 300
    decay: float = 0.999
    l2: float = 3e-4
    tolerance: float = 1e-7


@dataclasses.dataclass
class GDTResult:
    """Outcome of a software training run.

    Attributes:
        weights: Trained weight matrix ``(n, m)``.
        loss_history: Objective value after each epoch.
        converged: Whether the tolerance criterion fired before the
            epoch budget ran out.
    """

    weights: np.ndarray
    loss_history: list[float]
    converged: bool


def train_gdt(
    x: np.ndarray,
    y: np.ndarray,
    penalty_scale: float = 0.0,
    config: GDTConfig | None = None,
    w_init: np.ndarray | None = None,
) -> GDTResult:
    """Train a weight matrix on {-1,+1} one-vs-all targets.

    Args:
        x: Inputs ``(s, n)`` (bias feature already appended if wanted).
        y: Targets ``(s, m)`` in {-1, +1}.
        penalty_scale: ``gamma * rho`` of the VAT robust hinge; 0 gives
            the conventional GDT objective of Eq. 3.
        config: Trainer hyper-parameters.
        w_init: Starting weights; zeros when omitted.

    Returns:
        A :class:`GDTResult`.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    cfg = config if config is not None else GDTConfig()
    if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
        raise ValueError("X must be (s, n) and Y (s, m) with matching s")
    n, m = x.shape[1], y.shape[1]

    if w_init is None:
        w = np.zeros((n, m))
    else:
        w = np.array(w_init, dtype=float, copy=True)
        if w.shape != (n, m):
            raise ValueError(f"w_init shape {w.shape} != ({n}, {m})")

    velocity = np.zeros_like(w)
    lr = cfg.learning_rate
    history: list[float] = []
    converged = False
    prev_loss = np.inf
    for _ in range(cfg.epochs):
        grad = robust_hinge_gradient(x, w, y, penalty_scale)
        if cfg.l2 > 0:
            grad = grad + cfg.l2 * w
        velocity = cfg.momentum * velocity - lr * grad
        w = w + velocity
        lr *= cfg.decay
        loss = robust_hinge_loss(x, w, y, penalty_scale)
        if cfg.l2 > 0:
            loss += 0.5 * cfg.l2 * float(np.sum(w * w))
        history.append(loss)
        if abs(prev_loss - loss) < cfg.tolerance:
            converged = True
            break
        prev_loss = loss
    return GDTResult(weights=w, loss_history=history, converged=converged)
