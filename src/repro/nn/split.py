"""Train / validation splitting for the self-tuning loop.

The Vortex self-tuning process (Fig. 5) separates the training samples
into "one large and one small" group: the large group trains, the
small group validates each candidate ``gamma`` under injected
variations.  The split is stratified by class so small validation sets
still cover all ten digits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Split", "stratified_split"]


@dataclasses.dataclass
class Split:
    """Index sets of a train/validation split."""

    train_idx: np.ndarray
    val_idx: np.ndarray

    def apply(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Materialise ``(x_train, y_train, x_val, y_val)``."""
        return (
            x[self.train_idx],
            labels[self.train_idx],
            x[self.val_idx],
            labels[self.val_idx],
        )


def stratified_split(
    labels: np.ndarray,
    val_fraction: float,
    rng: np.random.Generator,
) -> Split:
    """Class-stratified split of sample indices.

    Args:
        labels: Integer class labels, shape ``(s,)``.
        val_fraction: Fraction of each class routed to validation
            (0 < f < 1); at least one sample per present class goes to
            validation.
        rng: Random generator controlling the shuffle.

    Returns:
        A :class:`Split` with disjoint, exhaustive index arrays.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.size == 0:
        raise ValueError("labels must be a non-empty 1-D array")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    train_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        idx = rng.permutation(idx)
        n_val = max(1, int(round(val_fraction * idx.size)))
        if n_val >= idx.size:
            n_val = idx.size - 1 if idx.size > 1 else 0
        val_parts.append(idx[:n_val])
        train_parts.append(idx[n_val:])
    train_idx = np.sort(np.concatenate(train_parts))
    val_idx = np.sort(np.concatenate(val_parts)) if val_parts else np.array([], int)
    return Split(train_idx=train_idx, val_idx=val_idx)
