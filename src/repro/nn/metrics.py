"""Training-rate / test-rate metrics.

The paper quantifies robustness as the *test rate*: "The probability of
successfully classifying the test samples" by the trained NCS
(Section 2.2.3).  The *training rate* is the same quantity on the
training samples.  Both are plain classification accuracies of the
argmax decision; the hardware enters through whichever score function
is evaluated (software weights, variation-injected weights, or a full
hardware read path).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "classification_rate",
    "rate_from_scores",
    "confusion_matrix",
    "per_class_rates",
]


def rate_from_scores(scores: np.ndarray, labels: np.ndarray) -> float:
    """Accuracy of argmax decisions over a score matrix ``(s, m)``."""
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    if scores.ndim != 2 or scores.shape[0] != labels.size:
        raise ValueError("scores must be (s, m) with one row per label")
    return float(np.mean(np.argmax(scores, axis=1) == labels))


def classification_rate(
    score_fn: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Accuracy of an arbitrary scoring function on a dataset.

    Args:
        score_fn: Maps an input batch ``(s, n)`` to scores ``(s, m)``
            -- e.g. ``classifier.scores`` or a hardware read path.
        x: Inputs.
        labels: Integer class labels.
    """
    return rate_from_scores(score_fn(np.asarray(x, dtype=float)), labels)


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """Confusion counts ``C[true, predicted]``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    c = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(c, (labels, predictions), 1)
    return c


def per_class_rates(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """Recall per class; NaN for classes absent from ``labels``."""
    c = confusion_matrix(predictions, labels, n_classes)
    totals = c.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(c) / totals, np.nan)
