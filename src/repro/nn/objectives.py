"""Training objectives: the conventional and robust hinge losses.

The paper trains each output column as a "1 vs. all" hinge problem
(Eq. 3):

    min sum_i eps_i   s.t.  y_i * (x_i . w) >= 1 - eps_i,  eps_i >= 0

i.e. the standard hinge loss ``max(0, 1 - y * (x . w))``.  VAT adds the
variation penalty (Eqs. 6-10): under the linearised lognormal model the
worst-case output deviation is bounded by ``rho * ||x (.) w||_2``
(Cauchy-Schwarz on Eq. 7), giving the robust hinge

    max(0, 1 - y * (x . w) + gamma * rho * ||x (.) w||_2).

Both losses and their (sub)gradients are vectorised over all output
columns simultaneously: ``X (s, n)``, ``W (n, m)``, ``Y (s, m)`` in
{-1, +1}.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hinge_loss",
    "hinge_gradient",
    "robust_hinge_loss",
    "robust_hinge_gradient",
    "variation_penalty",
]

_EPS = 1e-12


def _validate(x: np.ndarray, w: np.ndarray, y: np.ndarray) -> None:
    if x.ndim != 2 or w.ndim != 2 or y.ndim != 2:
        raise ValueError("X, W, Y must all be 2-D")
    if x.shape[1] != w.shape[0]:
        raise ValueError(f"X width {x.shape[1]} != W rows {w.shape[0]}")
    if y.shape != (x.shape[0], w.shape[1]):
        raise ValueError(
            f"Y shape {y.shape} != (samples, columns) "
            f"{(x.shape[0], w.shape[1])}"
        )


def hinge_loss(x: np.ndarray, w: np.ndarray, y: np.ndarray) -> float:
    """Hinge loss: mean over samples of the per-column sums (Eq. 3).

    Eq. 3 minimises ``sum_i eps_i`` independently per column; the
    column problems are summed here (they share no weights) and the
    sample mean keeps the value comparable across dataset sizes.
    """
    _validate(x, w, y)
    margin = y * (x @ w)
    return float(np.mean(np.sum(np.maximum(0.0, 1.0 - margin), axis=1)))


def hinge_gradient(x: np.ndarray, w: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Subgradient of the mean hinge loss w.r.t. ``W``."""
    _validate(x, w, y)
    margin = y * (x @ w)
    active = (margin < 1.0).astype(float)
    s = x.shape[0]
    return -(x.T @ (active * y)) / s


def variation_penalty(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Per-sample, per-column penalty term ``||x (.) w||_2`` (Eq. 7).

    ``V^(i)`` in the paper is the element-wise product of the input
    vector with the column weights; its 2-norm bounds the variation-
    induced output deviation via Cauchy-Schwarz.

    Returns:
        Array of shape ``(samples, columns)``.
    """
    return np.sqrt((x * x) @ (w * w) + _EPS)


def robust_hinge_loss(
    x: np.ndarray, w: np.ndarray, y: np.ndarray, penalty_scale: float
) -> float:
    """Robust hinge loss (Eq. 10 objective), column-summed sample mean.

    Args:
        x: Inputs ``(s, n)``.
        w: Weights ``(n, m)``.
        y: Targets in {-1, +1}, ``(s, m)``.
        penalty_scale: The combined coefficient ``gamma * rho`` (with
            ``alpha_0 = alpha_1 = 1`` from the first-order expansion of
            ``exp(theta)``).
    """
    _validate(x, w, y)
    if penalty_scale < 0:
        raise ValueError(f"penalty_scale must be >= 0, got {penalty_scale}")
    margin = y * (x @ w)
    pen = penalty_scale * variation_penalty(x, w)
    return float(
        np.mean(np.sum(np.maximum(0.0, 1.0 - margin + pen), axis=1))
    )


def robust_hinge_gradient(
    x: np.ndarray, w: np.ndarray, y: np.ndarray, penalty_scale: float
) -> np.ndarray:
    """Subgradient of the mean robust hinge loss w.r.t. ``W``.

    For an active sample/column the penalty contributes
    ``penalty_scale * (x^2 (.) w) / ||x (.) w||_2``.
    """
    _validate(x, w, y)
    if penalty_scale < 0:
        raise ValueError(f"penalty_scale must be >= 0, got {penalty_scale}")
    s = x.shape[0]
    margin = y * (x @ w)
    pen_norm = variation_penalty(x, w)
    active = (margin < 1.0 + penalty_scale * pen_norm).astype(float)
    grad = -(x.T @ (active * y)) / s
    if penalty_scale > 0:
        # d/dW of ||x (.) w||_2 summed over active samples.
        weights = active / pen_norm  # (s, m)
        grad = grad + penalty_scale * ((x * x).T @ weights) * w / s
    return grad
