"""Lint driver: file discovery, the two-pass run, suppression filtering.

Pass 1 analyses every file independently (REP001/2/4/5 plus the raw
material for REP003); pass 2 joins dataclass definitions against
cache-key uses across the whole file set.  Suppression directives are
applied last so the engine can report how many findings a tree is
explicitly living with.

Everything here is stdlib-only and deterministic: files are discovered
and reported in sorted order, so two runs over the same tree emit
byte-identical output.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.cachekeys import check_cache_keys
from repro.lint.rules import analyze_file
from repro.lint.suppress import parse_suppressions
from repro.lint.violation import ALL_CODES, Violation

__all__ = ["LintResult", "discover_files", "lint_sources", "lint_paths"]

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".ruff_cache",
    "build", "dist", ".eggs",
}


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        violations: Unsuppressed findings, sorted by (path, line, col).
        suppressed: Findings covered by an inline directive.
        files_checked: Number of files analysed.
    """

    violations: tuple[Violation, ...]
    suppressed: tuple[Violation, ...]
    files_checked: int

    @property
    def counts(self) -> dict[str, int]:
        """Unsuppressed findings per rule code (only non-zero codes)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: If an argument names nothing on disk.
    """
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.add(sub)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _sort_key(violation: Violation) -> tuple[str, int, int, str]:
    return (violation.path, violation.line, violation.col, violation.code)


def lint_sources(
    sources: Sequence[tuple[str, str]],
    select: Iterable[str] | None = None,
    allow_unseeded: Iterable[str] = (),
) -> LintResult:
    """Lint in-memory ``(path, source)`` pairs (the testable core).

    Args:
        sources: Files as ``(display path, source text)``.
        select: Rule codes to enforce (default: all).
        allow_unseeded: Path suffixes of sanctioned entry points where
            REP001 does not apply (e.g. a demo script that genuinely
            wants OS entropy).
    """
    selected = frozenset(select) if select is not None else ALL_CODES
    allow = tuple(allow_unseeded)

    analyses = []
    suppressions = []
    for path, source in sources:
        analyses.append(analyze_file(path, source))
        suppressions.append((path, parse_suppressions(source)))
    suppression_by_path = dict(suppressions)

    all_violations: list[Violation] = []
    for analysis in analyses:
        all_violations.extend(analysis.violations)
    all_violations.extend(
        check_cache_keys(
            [d for a in analyses for d in a.dataclasses],
            [u for a in analyses for u in a.cache_key_uses],
        )
    )

    kept: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in sorted(all_violations, key=_sort_key):
        if violation.code not in selected and violation.code != "REP000":
            continue
        if violation.code == "REP001" and any(
            violation.path.endswith(suffix) for suffix in allow
        ):
            continue
        smap = suppression_by_path.get(violation.path)
        if smap is not None and smap.is_suppressed(violation):
            suppressed.append(violation)
        else:
            kept.append(violation)
    return LintResult(
        violations=tuple(kept),
        suppressed=tuple(suppressed),
        files_checked=len(sources),
    )


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    allow_unseeded: Iterable[str] = (),
) -> LintResult:
    """Discover, read and lint files under ``paths``.

    Unreadable or undecodable files surface as REP000 findings rather
    than crashing the run.
    """
    sources: list[tuple[str, str]] = []
    unreadable: list[Violation] = []
    for path in discover_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Violation(
                    path=str(path),
                    line=1,
                    col=1,
                    code="REP000",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        sources.append((str(path), text))
    result = lint_sources(
        sources, select=select, allow_unseeded=allow_unseeded
    )
    if unreadable:
        merged = sorted(
            list(result.violations) + unreadable, key=_sort_key
        )
        result = dataclasses.replace(
            result,
            violations=tuple(merged),
            files_checked=result.files_checked + len(unreadable),
        )
    return result
