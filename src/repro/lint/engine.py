"""Lint driver: file discovery, the two-phase run, suppression filtering.

Phase 1 analyses every file independently (REP001/2/4/5/6/9 plus the
raw material for the cross-file passes) — optionally in parallel over
worker processes (``jobs``), which is sound because per-file analysis
is a pure function of ``(path, source)``.  Phase 2 joins the per-file
tables across the whole file set: dataclass definitions against
cache-key uses (REP003) and the project symbol table for the
concurrency/lifecycle/backend-purity rules (REP007/REP008/REP010).
Suppression directives and the optional baseline are applied last so
the engine can report how many findings a tree is explicitly living
with.

Everything here is stdlib-only and deterministic: files are discovered
and reported in sorted order, so two runs over the same tree emit
byte-identical output (at any ``jobs``).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.cachekeys import check_cache_keys
from repro.lint.project import check_project
from repro.lint.rules import FileAnalysis, analyze_file
from repro.lint.suppress import SuppressionMap, parse_suppressions
from repro.lint.violation import ALL_CODES, Violation

__all__ = ["LintResult", "discover_files", "lint_sources", "lint_paths"]

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".ruff_cache",
    "build", "dist", ".eggs",
}


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        violations: Unsuppressed findings, sorted by (path, line, col).
        suppressed: Findings covered by an inline directive.
        baselined: Findings covered by the baseline file (accepted
            pre-existing debt, excluded from the failure exit code).
        files_checked: Number of files analysed.
    """

    violations: tuple[Violation, ...]
    suppressed: tuple[Violation, ...]
    files_checked: int
    baselined: tuple[Violation, ...] = ()

    @property
    def counts(self) -> dict[str, int]:
        """Unsuppressed findings per rule code (only non-zero codes)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: If an argument names nothing on disk.
    """
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.add(sub)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _sort_key(violation: Violation) -> tuple[str, int, int, str]:
    return (violation.path, violation.line, violation.col, violation.code)


def _analyze_source(
    pair: tuple[str, str],
) -> tuple[FileAnalysis, SuppressionMap]:
    """Phase-1 analysis of one ``(path, source)`` pair.

    Module-level (not a closure) so ``jobs > 1`` can ship it to worker
    processes; both halves of the return value are plain frozen
    dataclasses and pickle cleanly.
    """
    path, source = pair
    return analyze_file(path, source), parse_suppressions(source)


def lint_sources(
    sources: Sequence[tuple[str, str]],
    select: Iterable[str] | None = None,
    allow_unseeded: Iterable[str] = (),
    jobs: int = 1,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint in-memory ``(path, source)`` pairs (the testable core).

    Args:
        sources: Files as ``(display path, source text)``.
        select: Rule codes to enforce (default: all).
        allow_unseeded: Path suffixes of sanctioned entry points where
            REP001 does not apply (e.g. a demo script that genuinely
            wants OS entropy).
        jobs: Worker processes for phase-1 analysis (1 = in-process;
            results are identical at any value).
        baseline: Accepted pre-existing findings; matches are reported
            as ``baselined`` instead of ``violations``.
    """
    selected = frozenset(select) if select is not None else ALL_CODES
    allow = tuple(allow_unseeded)

    if jobs > 1 and len(sources) > 1:
        # Lazy import: the default lint path stays stdlib-only.
        from repro.runtime.executor import parallel_map

        analyzed = parallel_map(
            _analyze_source, list(sources), jobs=jobs, label="lint"
        )
    else:
        analyzed = [_analyze_source(pair) for pair in sources]
    analyses = [analysis for analysis, _ in analyzed]
    suppression_by_path = {
        path: smap for (path, _), (_, smap) in zip(sources, analyzed)
    }

    all_violations: list[Violation] = []
    for analysis in analyses:
        all_violations.extend(analysis.violations)
    all_violations.extend(
        check_cache_keys(
            [d for a in analyses for d in a.dataclasses],
            [u for a in analyses for u in a.cache_key_uses],
        )
    )
    all_violations.extend(
        check_project([a.symbols for a in analyses if a.symbols is not None])
    )
    for path, smap in suppression_by_path.items():
        for line, code in smap.unknown:
            all_violations.append(
                Violation(
                    path=path,
                    line=line,
                    col=1,
                    code="REP000",
                    message=(
                        f"unknown rule code '{code}' in suppression "
                        "directive; check --list-rules (a typo here "
                        "suppresses nothing)"
                    ),
                )
            )

    kept: list[Violation] = []
    suppressed: list[Violation] = []
    baselined: list[Violation] = []
    for violation in sorted(all_violations, key=_sort_key):
        if violation.code not in selected and violation.code != "REP000":
            continue
        if violation.code == "REP001" and any(
            violation.path.endswith(suffix) for suffix in allow
        ):
            continue
        smap = suppression_by_path.get(violation.path)
        # REP000 (broken file / broken directive) is never suppressible:
        # a directive that cannot be trusted must not silence the
        # warning about itself.
        if (
            violation.code != "REP000"
            and smap is not None
            and smap.is_suppressed(violation)
        ):
            suppressed.append(violation)
        elif baseline is not None and baseline.absorb(violation):
            baselined.append(violation)
        else:
            kept.append(violation)
    return LintResult(
        violations=tuple(kept),
        suppressed=tuple(suppressed),
        baselined=tuple(baselined),
        files_checked=len(sources),
    )


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    allow_unseeded: Iterable[str] = (),
    jobs: int = 1,
    baseline: Baseline | None = None,
) -> LintResult:
    """Discover, read and lint files under ``paths``.

    Unreadable or undecodable files surface as REP000 findings rather
    than crashing the run.
    """
    sources: list[tuple[str, str]] = []
    unreadable: list[Violation] = []
    for path in discover_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Violation(
                    path=str(path),
                    line=1,
                    col=1,
                    code="REP000",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        sources.append((str(path), text))
    result = lint_sources(
        sources,
        select=select,
        allow_unseeded=allow_unseeded,
        jobs=jobs,
        baseline=baseline,
    )
    if unreadable:
        merged = sorted(
            list(result.violations) + unreadable, key=_sort_key
        )
        result = dataclasses.replace(
            result,
            violations=tuple(merged),
            files_checked=result.files_checked + len(unreadable),
        )
    return result
