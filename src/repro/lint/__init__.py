"""Project-specific static analysis guarding the determinism contracts.

The runtime engine (PR 1) made three implicit contracts load-bearing;
this package enforces them statically (stdlib ``ast`` only, no new
dependencies):

==========  ==========================================================
``REP001``  every stochastic path flows from an explicit seeded
            ``np.random.Generator`` — no unseeded ``default_rng()``,
            no legacy ``RandomState``, no global-state draws
``REP002``  callables handed to the executor APIs must survive
            process-pool pickling (module-level functions or
            ``functools.partial`` over them)
``REP003``  dataclasses used as cache keys must be ``frozen=True``
            with deterministically-hashable fields
``REP004``  no mutable default arguments
``REP005``  no bare ``except:`` / silently swallowed exceptions
==========  ==========================================================

Run it as ``python -m repro.lint src`` or ``repro lint``; suppress a
reviewed finding inline with ``# repro-lint: disable=REPxxx``.  See
``docs/determinism.md`` for the full contract description.
"""

from repro.lint.engine import LintResult, discover_files, lint_paths, lint_sources
from repro.lint.suppress import SuppressionMap, parse_suppressions
from repro.lint.violation import ALL_CODES, RULES, Violation

__all__ = [
    "ALL_CODES",
    "LintResult",
    "RULES",
    "SuppressionMap",
    "Violation",
    "discover_files",
    "lint_paths",
    "lint_sources",
    "parse_suppressions",
]
