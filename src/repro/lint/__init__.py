"""Project-specific static analysis guarding the determinism contracts.

The runtime engine (PR 1) made three implicit contracts load-bearing;
this package enforces them statically (stdlib ``ast`` only, no new
dependencies), in two phases: per-file AST checks, then cross-module
rules over a repo-wide symbol table:

==========  ==========================================================
``REP001``  every stochastic path flows from an explicit seeded
            ``np.random.Generator`` — no unseeded ``default_rng()``,
            no legacy ``RandomState``, no global-state draws
``REP002``  callables handed to the executor APIs must survive
            process-pool pickling (module-level functions or
            ``functools.partial`` over them)
``REP003``  dataclasses used as cache keys must be ``frozen=True``
            with deterministically-hashable fields
``REP004``  no mutable default arguments
``REP005``  no bare ``except:`` / silently swallowed exceptions
``REP006``  backend-aware kernels route array ops through the
            ``xp``/``backend`` namespace object
``REP007``  instance state shared across threads is lock-guarded or
            declared ``# guarded-by: <lock>`` / atomic
``REP008``  started threads are joined on the drain/close path;
            ``ServiceLifecycle`` implementations expose the full
            ``Service`` surface
``REP009``  backend-aware kernels reduce through fixed-accumulation
            helpers (einsum), never bare ``@``/``sum``/``+=`` loops
``REP010``  backend-aware functions do not call numpy-touching
            helpers, and forward ``xp``/``backend`` to backend-aware
            callees
==========  ==========================================================

Run it as ``python -m repro.lint src`` or ``repro lint``; suppress a
reviewed finding inline with ``# repro-lint: disable=REPxxx``.  The
sibling runtime check — the lock-order sanitizer in
:mod:`repro.lint.sanitize` — is enabled with ``REPRO_SANITIZE=1``.
See ``docs/linting.md`` for the full rule catalogue with examples and
``docs/determinism.md`` for the underlying contracts.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.engine import LintResult, discover_files, lint_paths, lint_sources
from repro.lint.suppress import SuppressionMap, parse_suppressions
from repro.lint.violation import ALL_CODES, RULES, Violation

__all__ = [
    "ALL_CODES",
    "Baseline",
    "LintResult",
    "RULES",
    "SuppressionMap",
    "Violation",
    "discover_files",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "parse_suppressions",
    "write_baseline",
]
