"""Baseline files: land new rules without a flag-day.

A baseline is a JSON list of violation *fingerprints* — ``(path, code,
message)``, deliberately without line numbers so unrelated edits moving
code around do not churn the file.  Violations matching a fingerprint
are reported separately as "baselined" (visible, counted, excluded from
the exit code), so a new rule can gate CI immediately while its
pre-existing findings are burned down deliberately — and a finding that
is *fixed* simply stops matching, so the baseline only ever shrinks.

Write one with ``repro lint --write-baseline lint-baseline.json`` and
enforce it with ``repro lint --baseline lint-baseline.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.violation import Violation

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_SCHEMA_VERSION = 1


def _fingerprint(violation: Violation) -> tuple[str, str, str]:
    return (violation.path, violation.code, violation.message)


class Baseline:
    """A multiset of accepted violation fingerprints.

    Matching is stateful: each fingerprint absorbs at most as many
    violations as the baseline recorded, so *new* duplicates of an old
    finding still fail the run.
    """

    def __init__(self, fingerprints: Iterable[tuple[str, str, str]] = ()):
        self._budget: dict[tuple[str, str, str], int] = {}
        for fp in fingerprints:
            self._budget[fp] = self._budget.get(fp, 0) + 1

    def __len__(self) -> int:
        return sum(self._budget.values())

    def absorb(self, violation: Violation) -> bool:
        """Whether ``violation`` is covered (consumes one budget slot)."""
        fp = _fingerprint(violation)
        remaining = self._budget.get(fp, 0)
        if remaining <= 0:
            return False
        self._budget[fp] = remaining - 1
        return True


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file written by :func:`write_baseline`.

    Raises:
        ValueError: If the document is not a recognised baseline.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(document, dict)
        or document.get("schema_version") != _SCHEMA_VERSION
        or not isinstance(document.get("fingerprints"), list)
    ):
        raise ValueError(f"not a repro-lint baseline file: {path}")
    fingerprints = []
    for entry in document["fingerprints"]:
        fingerprints.append(
            (
                str(entry["path"]),
                str(entry["code"]),
                str(entry["message"]),
            )
        )
    return Baseline(fingerprints)


def write_baseline(path: str | Path, violations: Sequence[Violation]) -> int:
    """Record ``violations`` as the accepted baseline; returns the count."""
    entries = sorted(_fingerprint(v) for v in violations)
    document = {
        "schema_version": _SCHEMA_VERSION,
        "fingerprints": [
            {"path": p, "code": c, "message": m} for p, c, m in entries
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
