"""Inline suppression comments for the REP linter.

Two forms are recognised, both parsed from real tokenizer output (so a
``# repro-lint: ...`` inside a string literal is never mistaken for a
directive):

* ``# repro-lint: disable=REP001`` on a line suppresses the listed
  rules (comma-separated, or ``all``) for that line only.
* ``# repro-lint: disable-file=REP001`` anywhere in a file suppresses
  the listed rules for the whole file.

Suppressions are deliberately explicit and greppable: a clean tree
means "zero *unsuppressed* violations", and every suppression is an
auditable statement that a human looked at the finding.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize

from repro.lint.violation import ALL_CODES, Violation

__all__ = ["SuppressionMap", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint\s*:\s*(?P<scope>disable|disable-file)\s*="
    r"\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


def _parse_codes(raw: str) -> tuple[frozenset[str], frozenset[str]]:
    """Split a comma-separated code list into (known, unknown) codes.

    ``all`` means every rule; anything not in the catalogue comes back
    in the unknown set so the engine can surface the typo instead of
    silently ignoring the directive.
    """
    codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
    if "ALL" in codes:
        return ALL_CODES, frozenset(codes - {"ALL"} - ALL_CODES)
    return frozenset(codes & ALL_CODES), frozenset(codes - ALL_CODES)


@dataclasses.dataclass(frozen=True)
class SuppressionMap:
    """Which rule codes are suppressed where.

    Attributes:
        by_line: 1-based line -> codes suppressed on that line.
        file_wide: Codes suppressed for the entire file.
        unknown: ``(line, code)`` pairs naming rule codes a directive
            listed that are not in the catalogue — surfaced as REP000
            findings so a typo never silently disables nothing.
    """

    by_line: dict[int, frozenset[str]]
    file_wide: frozenset[str]
    unknown: tuple[tuple[int, str], ...] = ()

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether ``violation`` is covered by a directive."""
        if violation.code in self.file_wide:
            return True
        return violation.code in self.by_line.get(violation.line, frozenset())


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract every suppression directive from ``source``.

    Tolerates files that do not tokenize (the engine reports those as
    syntax errors separately); in that case nothing is suppressed.
    """
    by_line: dict[int, frozenset[str]] = {}
    file_wide: frozenset[str] = frozenset()
    unknown: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionMap(by_line={}, file_wide=frozenset())
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        codes, bad = _parse_codes(match.group("codes"))
        for code in sorted(bad):
            unknown.append((tok.start[0], code))
        if not codes:
            continue
        if match.group("scope") == "disable-file":
            file_wide = file_wide | codes
        else:
            line = tok.start[0]
            by_line[line] = by_line.get(line, frozenset()) | codes
    return SuppressionMap(
        by_line=by_line, file_wide=file_wide, unknown=tuple(unknown)
    )
