"""Phase 1/2 of the project-wide analysis: symbol table + cross-module rules.

Phase 1 (:func:`collect_file`) walks each file once and records the raw
material the cross-module rules need:

* every class, with its methods' attribute reads/writes (and which
  ``with self.<lock>:`` blocks each access sits inside), its lock
  attributes, the threads it creates/starts/joins, and which of its
  methods run on a worker thread -- inferred from
  ``threading.Thread(target=self.<m>)`` roots plus the
  ``# repro-lint: thread=worker`` annotation escape hatch, closed over
  ``self.<m>()`` calls;
* every function and method, with its ordered parameters, whether it is
  backend-aware (takes ``xp``/``backend``), which numpy array ops it
  calls directly, and every call site it makes that the linter can
  resolve (module-level names through imports, ``self.<m>()`` within a
  class).

Phase 2 (:func:`check_project`) joins those tables across the whole
file set and enforces:

* **REP007** -- shared-mutable-state discipline: an instance attribute
  shared between a worker-thread method and a public API method must be
  accessed under one consistent class lock at every site, or be
  explicitly declared ``# guarded-by: <lock>`` / ``# repro-lint:
  atomic`` where it is initialised.
* **REP008** -- thread & service lifecycle: every started
  ``threading.Thread`` must be joined on the ``drain``/``close`` path,
  and every :class:`~repro.serve.protocol.ServiceLifecycle`
  implementation must define the full Service surface.
* **REP010** -- interprocedural backend purity: a backend-aware
  function must not call project helpers that touch numpy directly
  (REP006 across call boundaries), and must forward its ``xp``/
  ``backend`` when calling another backend-aware helper.  Converting at
  the host boundary -- wrapping the call in ``asarray``/``to_numpy`` or
  passing ``to_numpy(...)`` data -- is the porting contract, not a
  violation, exactly as for REP006.

Everything stays stdlib-only, picklable (for ``--jobs``) and
deterministic: tables are tuples of frozen dataclasses, and phase 2
iterates them in sorted order.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Iterable, Iterator, Sequence

from repro.lint.violation import Violation

__all__ = [
    "Annotations",
    "AttrAccess",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "MethodInfo",
    "ThreadInfo",
    "check_project",
    "collect_file",
    "parse_annotations",
]

# -- inline annotations ----------------------------------------------------

_THREAD_ANNOTATION = re.compile(
    r"#\s*repro-lint\s*:\s*thread\s*=\s*worker\b"
)
_ATOMIC_ANNOTATION = re.compile(r"#\s*repro-lint\s*:\s*atomic\b")
_GUARDED_BY = re.compile(r"#\s*guarded-by\s*:\s*(?P<lock>[A-Za-z_]\w*)")

# Methods that count as the teardown surface of a class: a thread join
# reachable from any of these satisfies the REP008 lifecycle contract.
_LIFECYCLE_ROOTS = frozenset(
    {"drain", "close", "shutdown", "stop", "join", "__exit__", "__del__"}
)

# The Service protocol surface a ServiceLifecycle implementation must
# provide itself (close/shutdown/context management come from the mixin).
_SERVICE_SURFACE = ("submit", "predict", "status", "stats", "drain")

_BACKEND_PARAM_NAMES = frozenset({"xp", "backend"})

# Call wrappers that mark an explicit host/backend conversion boundary.
_BOUNDARY_WRAPPERS = frozenset({"asarray", "to_numpy"})

# Lock factories recognised as creating a lock attribute.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "make_lock"})

# Container methods that mutate their receiver: ``self.x.append(...)``
# is a *write* to ``self.x`` for sharing purposes, not just a read.
# Queue put/get are deliberately absent -- queue.Queue is itself a
# synchronisation primitive.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "add", "discard", "update", "setdefault", "sort",
        "appendleft", "popleft",
    }
)

# numpy ops a helper "touches directly" for REP010 purposes -- the same
# namespace-routed set REP006 enforces inside backend-aware functions.
_BACKEND_PORTED_OPS = frozenset(
    {
        "einsum", "stack", "concatenate", "clip", "where", "exp",
        "log", "sqrt", "abs", "sign", "round", "maximum", "minimum",
        "quantile", "argmax", "argsort", "mean", "sum", "prod",
        "cumsum", "zeros", "ones", "full", "empty", "take",
        "atleast_2d", "reshape", "transpose", "matmul", "dot",
        "tensordot",
    }
)

_BACKEND_PKG_FRAGMENT = "repro/backend/"


@dataclasses.dataclass(frozen=True)
class Annotations:
    """Per-file inline annotations, keyed by 1-based source line.

    Attributes:
        worker_lines: Lines carrying ``# repro-lint: thread=worker``.
        atomic_lines: Lines carrying ``# repro-lint: atomic``.
        guarded_lines: Line -> lock attribute name from
            ``# guarded-by: <lock>``.
    """

    worker_lines: frozenset[int]
    atomic_lines: frozenset[int]
    guarded_lines: tuple[tuple[int, str], ...]

    def guard_for(self, line: int) -> str | None:
        for guarded_line, lock in self.guarded_lines:
            if guarded_line == line:
                return lock
        return None


def parse_annotations(source: str) -> Annotations:
    """Extract thread/atomic/guarded-by annotations from comments.

    Parsed from tokenizer output like the suppression directives, so an
    annotation inside a string literal is never mistaken for one.
    Files that do not tokenize contribute no annotations (the engine
    reports them as REP000 separately).
    """
    worker: set[int] = set()
    atomic: set[int] = set()
    guarded: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.start[0]
        if _THREAD_ANNOTATION.search(tok.string):
            worker.add(line)
        if _ATOMIC_ANNOTATION.search(tok.string):
            atomic.add(line)
        match = _GUARDED_BY.search(tok.string)
        if match is not None:
            guarded.append((line, match.group("lock")))
    return Annotations(
        worker_lines=frozenset(worker),
        atomic_lines=frozenset(atomic),
        guarded_lines=tuple(guarded),
    )


# -- phase-1 records -------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read or write inside a method."""

    attr: str
    line: int
    #: Names of ``with self.<name>:`` blocks enclosing the access.
    locks_held: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ThreadInfo:
    """One ``threading.Thread(...)`` construction inside a class."""

    #: ``self.<attr>`` the thread was stored on (None = fire-and-forget).
    attr: str | None
    #: Method name passed as ``target=self.<m>`` (None if unresolvable).
    target_method: str | None
    line: int


@dataclasses.dataclass(frozen=True)
class MethodInfo:
    """One method of a class, as the concurrency rules see it."""

    name: str
    line: int
    reads: tuple[AttrAccess, ...]
    writes: tuple[AttrAccess, ...]
    #: ``self.<m>()`` call targets (for worker/lifecycle closures).
    self_calls: tuple[str, ...]
    #: ``self.<attr>.join(...)`` targets.
    joins: tuple[str, ...]
    #: ``self.<attr>.start(...)`` targets.
    starts: tuple[str, ...]
    #: Carries ``# repro-lint: thread=worker`` on its ``def`` line.
    worker_annotated: bool

    @property
    def public(self) -> bool:
        return not self.name.startswith("_")


@dataclasses.dataclass(frozen=True)
class ClassInfo:
    """One class definition, as the cross-module rules see it."""

    name: str
    path: str
    line: int
    bases: tuple[str, ...]
    methods: tuple[MethodInfo, ...]
    lock_attrs: tuple[str, ...]
    threads: tuple[ThreadInfo, ...]
    #: Attributes declared ``# repro-lint: atomic`` at a write site.
    atomic_attrs: tuple[str, ...]
    #: ``(attr, lock)`` pairs declared ``# guarded-by: <lock>``.
    guarded_attrs: tuple[tuple[str, str], ...]

    def method(self, name: str) -> MethodInfo | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None

    def worker_methods(self) -> frozenset[str]:
        """Methods that run on a worker thread (roots + self-call closure)."""
        roots = {m.name for m in self.methods if m.worker_annotated}
        roots.update(
            t.target_method for t in self.threads
            if t.target_method is not None
        )
        seen: set[str] = set()
        frontier = [name for name in roots if self.method(name) is not None]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            info = self.method(name)
            if info is None:
                continue
            for callee in info.self_calls:
                if callee not in seen and self.method(callee) is not None:
                    frontier.append(callee)
        return frozenset(seen)


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call a function makes that phase 2 may resolve.

    Attributes:
        kind: ``"name"`` (module-level name) or ``"self"`` (method).
        callee: The called name.
        line: Call line.
        n_args: Positional argument count.
        keywords: Keyword argument names present at the call.
        at_boundary: The call is wrapped in an ``asarray``/``to_numpy``
            conversion, or passes ``to_numpy(...)`` data -- the
            explicit host-boundary idiom, exempt from REP010.
    """

    kind: str
    callee: str
    line: int
    n_args: int
    keywords: tuple[str, ...]
    at_boundary: bool


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """One function or method, as the backend-purity rules see it."""

    name: str
    qualname: str
    path: str
    line: int
    #: Enclosing class name ("" for module-level functions).
    cls: str
    params: tuple[str, ...]
    backend_aware: bool
    #: Direct ``np.<op>()`` uses of the REP006 op set: ``(op, line)``.
    numpy_ops: tuple[tuple[str, int], ...]
    calls: tuple[CallSite, ...]

    @property
    def backend_param_index(self) -> int | None:
        for i, param in enumerate(self.params):
            if param in _BACKEND_PARAM_NAMES:
                return i
        return None


@dataclasses.dataclass(frozen=True)
class FileSymbols:
    """Everything one file contributes to the project-wide pass."""

    path: str
    classes: tuple[ClassInfo, ...]
    functions: tuple[FunctionInfo, ...]
    #: Imported name -> dotted ``module.original`` it resolves to.
    imports: tuple[tuple[str, str], ...]


# -- phase-1 collection ----------------------------------------------------


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodCollector(ast.NodeVisitor):
    """Record one method's attribute accesses, calls, joins and starts."""

    def __init__(self) -> None:
        self.reads: list[AttrAccess] = []
        self.writes: list[AttrAccess] = []
        self.self_calls: list[str] = []
        self.joins: list[str] = []
        self.starts: list[str] = []
        self._lock_stack: list[str] = []

    def _held(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self._lock_stack))

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` -- the only statically provable
            # lock-guard idiom (an .acquire()/.release() pair is not).
            attr = _self_attr(expr)
            if attr is not None:
                self._lock_stack.append(attr)
                pushed += 1
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self._lock_stack.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None:
            access = AttrAccess(
                attr=attr, line=node.lineno, locks_held=self._held()
            )
            if isinstance(node.ctx, ast.Store):
                self.writes.append(access)
            elif isinstance(node.ctx, ast.Load):
                self.reads.append(access)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            access = AttrAccess(
                attr=attr, line=node.lineno, locks_held=self._held()
            )
            # ``self.x += 1`` is a read-modify-write.
            self.reads.append(access)
            self.writes.append(access)
            self.visit(node.value)
            return
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self.x[i] = v`` / ``del self.x[i]`` mutate self.x.
        attr = _self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.writes.append(
                AttrAccess(
                    attr=attr, line=node.lineno, locks_held=self._held()
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            inner_attr = _self_attr(func.value)
            if inner_attr is not None and func.attr in _MUTATOR_METHODS:
                self.writes.append(
                    AttrAccess(
                        attr=inner_attr,
                        line=node.lineno,
                        locks_held=self._held(),
                    )
                )
            target = _self_attr(func)
            if target is not None:
                # self.<m>(...) -- a candidate method call.
                self.self_calls.append(func.attr)
            else:
                inner = _self_attr(func.value)
                if inner is not None and func.attr == "join":
                    self.joins.append(inner)
                elif inner is not None and func.attr == "start":
                    self.starts.append(inner)
        self.generic_visit(node)


def _thread_constructions(
    body: Iterable[ast.stmt], threading_names: set[str]
) -> Iterator[ThreadInfo]:
    """``self.<attr> = threading.Thread(target=self.<m>)`` patterns."""
    for node in _walk_stmts(body):
        value: ast.AST | None = None
        attr: str | None = None
        if isinstance(node, ast.Assign):
            value = node.value
            if len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
        elif isinstance(node, ast.Expr):
            value = node.value
        if value is None:
            continue
        call = value
        # ``threading.Thread(...).start()`` -- unwrap the .start() call.
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "start"
        ):
            call = call.func.value
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        is_thread = (
            isinstance(func, ast.Attribute)
            and func.attr == "Thread"
            and isinstance(func.value, ast.Name)
            and func.value.id in threading_names
        ) or (isinstance(func, ast.Name) and func.id == "Thread")
        if not is_thread:
            continue
        target_method = None
        for kw in call.keywords:
            if kw.arg == "target":
                target_method = _self_attr(kw.value)
        yield ThreadInfo(attr=attr, target_method=target_method,
                         line=node.lineno)


def _walk_stmts(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in body:
        yield from ast.walk(stmt)


class _FunctionCollector(ast.NodeVisitor):
    """Record one function's numpy ops and resolvable call sites."""

    def __init__(self, numpy_names: set[str]):
        self.numpy_names = numpy_names
        self.numpy_ops: list[tuple[str, int]] = []
        self.calls: list[CallSite] = []
        self._boundary_depth = 0

    def _is_boundary_wrapper(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Attribute):
            return func.attr in _BOUNDARY_WRAPPERS
        if isinstance(func, ast.Name):
            return func.id in _BOUNDARY_WRAPPERS
        return False

    def _has_to_numpy_arg(self, node: ast.Call) -> bool:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Call) and self._is_boundary_wrapper(
                arg.func
            ):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BACKEND_PORTED_OPS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_names
        ):
            self.numpy_ops.append((func.attr, node.lineno))
        kind = callee = None
        if isinstance(func, ast.Name):
            kind, callee = "name", func.id
        else:
            attr = _self_attr(func)
            if attr is not None:
                kind, callee = "self", attr
        if kind is not None and callee is not None:
            at_boundary = (
                self._boundary_depth > 0 or self._has_to_numpy_arg(node)
            )
            self.calls.append(
                CallSite(
                    kind=kind,
                    callee=callee,
                    line=node.lineno,
                    n_args=len(node.args),
                    keywords=tuple(
                        kw.arg for kw in node.keywords
                        if kw.arg is not None
                    ),
                    at_boundary=at_boundary,
                )
            )
        if self._is_boundary_wrapper(func):
            self._boundary_depth += 1
            self.generic_visit(node)
            self._boundary_depth -= 1
        else:
            self.generic_visit(node)


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    return tuple(
        a.arg
        for a in list(args.posonlyargs) + list(args.args)
        + list(args.kwonlyargs)
    )


def collect_file(
    path: str, tree: ast.Module, annotations: Annotations
) -> FileSymbols:
    """Phase-1 symbol collection for one parsed file."""
    threading_names = {"threading"}
    imports: list[tuple[str, str]] = []
    numpy_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_names.add(bound)
                if alias.name == "threading" and alias.asname:
                    threading_names.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                imports.append((bound, f"{module}.{alias.name}"))

    classes: list[ClassInfo] = []
    functions: list[FunctionInfo] = []

    def collect_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str
    ) -> FunctionInfo:
        collector = _FunctionCollector(numpy_names)
        for stmt in node.body:
            collector.visit(stmt)
        params = _function_params(node)
        return FunctionInfo(
            name=node.name,
            qualname=f"{cls}.{node.name}" if cls else node.name,
            path=path,
            line=node.lineno,
            cls=cls,
            params=params,
            backend_aware=bool(
                set(params) & _BACKEND_PARAM_NAMES
            ),
            numpy_ops=tuple(collector.numpy_ops),
            calls=tuple(collector.calls),
        )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(collect_function(node, ""))
        elif isinstance(node, ast.ClassDef):
            methods: list[MethodInfo] = []
            threads: list[ThreadInfo] = []
            atomic: list[str] = []
            guarded: list[tuple[str, str]] = []
            for stmt in node.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                functions.append(collect_function(stmt, node.name))
                collector = _MethodCollector()
                for sub in stmt.body:
                    collector.visit(sub)
                methods.append(
                    MethodInfo(
                        name=stmt.name,
                        line=stmt.lineno,
                        reads=tuple(collector.reads),
                        writes=tuple(collector.writes),
                        self_calls=tuple(
                            dict.fromkeys(collector.self_calls)
                        ),
                        joins=tuple(dict.fromkeys(collector.joins)),
                        starts=tuple(dict.fromkeys(collector.starts)),
                        worker_annotated=(
                            stmt.lineno in annotations.worker_lines
                        ),
                    )
                )
                threads.extend(
                    _thread_constructions([stmt], threading_names)
                )
                # Attribute declarations: a write whose line carries an
                # atomic/guarded-by annotation declares the attribute.
                for access in methods[-1].writes:
                    if access.line in annotations.atomic_lines:
                        atomic.append(access.attr)
                    lock = annotations.guard_for(access.line)
                    if lock is not None:
                        guarded.append((access.attr, lock))
            lock_attrs = sorted(
                {
                    access.attr
                    for m in methods
                    for access, value in _lock_assignments(node, m)
                }
            )
            classes.append(
                ClassInfo(
                    name=node.name,
                    path=path,
                    line=node.lineno,
                    bases=tuple(_base_names(node)),
                    methods=tuple(methods),
                    lock_attrs=tuple(lock_attrs),
                    threads=tuple(threads),
                    atomic_attrs=tuple(sorted(set(atomic))),
                    guarded_attrs=tuple(sorted(set(guarded))),
                )
            )
    return FileSymbols(
        path=path,
        classes=tuple(classes),
        functions=tuple(functions),
        imports=tuple(imports),
    )


def _base_names(node: ast.ClassDef) -> Iterator[str]:
    for base in node.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def _lock_assignments(
    cls: ast.ClassDef, method: MethodInfo
) -> Iterator[tuple[AttrAccess, None]]:
    """Writes of ``self.<attr> = <lock factory>(...)`` in ``method``."""
    stmt = next(
        (
            s for s in cls.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            and s.name == method.name
        ),
        None,
    )
    if stmt is None:
        return
    for node in _walk_stmts(stmt.body):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _self_attr(node.targets[0])
        if attr is None or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _LOCK_FACTORIES:
            yield (
                AttrAccess(attr=attr, line=node.lineno, locks_held=()),
                None,
            )


# -- phase-2 rules ---------------------------------------------------------


def _module_keys(path: str) -> list[str]:
    """Dotted-suffix candidates a file can be imported as.

    ``src/repro/xbar/crossbar.py`` -> ``crossbar``,
    ``xbar.crossbar``, ``repro.xbar.crossbar``, ... so both absolute
    project imports and flat fixture imports resolve.
    """
    normalized = path.replace("\\", "/")
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [p for p in normalized.split("/") if p not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    keys = []
    for i in range(len(parts)):
        keys.append(".".join(parts[i:]))
    return keys


class ProjectTable:
    """The joined phase-1 tables of a whole lint run."""

    def __init__(self, symbols: Sequence[FileSymbols]):
        self.symbols = list(symbols)
        # (module key, function name) -> FunctionInfo, dropped if the
        # key is claimed by more than one file (ambiguous -> unresolved).
        self._module_functions: dict[tuple[str, str], FunctionInfo] = {}
        ambiguous: set[tuple[str, str]] = set()
        # (path, class, method) -> FunctionInfo for self-call lookup.
        self._methods: dict[tuple[str, str, str], FunctionInfo] = {}
        self._imports: dict[str, dict[str, str]] = {}
        for sym in symbols:
            self._imports[sym.path] = dict(sym.imports)
            for fn in sym.functions:
                if fn.cls:
                    self._methods[(sym.path, fn.cls, fn.name)] = fn
                    continue
                for key in _module_keys(sym.path):
                    entry = (key, fn.name)
                    if entry in self._module_functions:
                        ambiguous.add(entry)
                    else:
                        self._module_functions[entry] = fn
        for entry in ambiguous:
            self._module_functions.pop(entry, None)

    def resolve(
        self, caller: FunctionInfo, site: CallSite
    ) -> FunctionInfo | None:
        """The project function a call site provably targets, if any."""
        if site.kind == "self" and caller.cls:
            return self._methods.get(
                (caller.path, caller.cls, site.callee)
            )
        if site.kind != "name":
            return None
        # Same module first, then through this file's imports.
        for key in _module_keys(caller.path):
            fn = self._module_functions.get((key, site.callee))
            if fn is not None and fn.path == caller.path:
                return fn
        dotted = self._imports.get(caller.path, {}).get(site.callee)
        if dotted is None:
            return None
        module, _, name = dotted.rpartition(".")
        return self._module_functions.get((module, name))

    def touches_numpy(
        self, fn: FunctionInfo, _seen: frozenset[str] = frozenset()
    ) -> tuple[str, str, int] | None:
        """Evidence ``(qualname, op, line)`` that ``fn`` (or a helper it
        provably calls, transitively) uses numpy array ops directly.

        The walk stops at backend-aware functions (their own REP006
        holds them to the namespace) and at the backend package (the
        reference delegation layer).
        """
        key = f"{fn.path}::{fn.qualname}"
        if key in _seen or len(_seen) > 12:
            return None
        if fn.backend_aware:
            return None
        if _BACKEND_PKG_FRAGMENT in fn.path.replace("\\", "/"):
            return None
        if fn.numpy_ops:
            op, line = fn.numpy_ops[0]
            return (fn.qualname, op, line)
        seen = _seen | {key}
        for site in fn.calls:
            if site.at_boundary:
                continue
            callee = self.resolve(fn, site)
            if callee is None:
                continue
            evidence = self.touches_numpy(callee, seen)
            if evidence is not None:
                return evidence
        return None


def _check_rep007(cls: ClassInfo) -> Iterator[Violation]:
    workers = cls.worker_methods()
    if not workers:
        return
    guarded_by = dict(cls.guarded_attrs)
    lock_attrs = set(cls.lock_attrs)
    # Gather per-attribute access sets, split by thread role.
    worker_accesses: dict[str, list[tuple[str, AttrAccess, bool]]] = {}
    api_accesses: dict[str, list[tuple[str, AttrAccess, bool]]] = {}
    for method in cls.methods:
        if method.name == "__init__":
            continue
        is_worker = method.name in workers
        bucket = worker_accesses if is_worker else api_accesses
        if not is_worker and not method.public:
            # Private non-worker helpers only run under a public entry
            # point; holding the rule to the public surface keeps it
            # conservative.
            continue
        for access in method.reads:
            bucket.setdefault(access.attr, []).append(
                (method.name, access, False)
            )
        for access in method.writes:
            bucket.setdefault(access.attr, []).append(
                (method.name, access, True)
            )
    for attr in sorted(set(worker_accesses) | set(api_accesses)):
        if attr in lock_attrs:
            continue
        w = worker_accesses.get(attr, [])
        a = api_accesses.get(attr, [])
        w_writes = [x for x in w if x[2]]
        a_writes = [x for x in a if x[2]]
        # Shared mutable state: a write on one side of the thread
        # boundary with any access on the other.  A worker-side write
        # to a public attribute counts even without an in-class reader:
        # the attribute *is* the class's API surface.
        shared = (
            (w_writes and a)
            or (a_writes and w)
            or (w_writes and not attr.startswith("_"))
        )
        if not shared:
            continue
        if attr in guarded_by or attr in set(cls.atomic_attrs):
            continue
        flagged = w + a
        common = None
        for _, access, _w in flagged:
            held = set(access.locks_held) & lock_attrs
            common = held if common is None else (common & held)
        if common:
            continue
        unguarded = sorted(
            (x for x in flagged
             if not (set(x[1].locks_held) & lock_attrs)),
            key=lambda x: x[1].line,
        )
        site = unguarded[0] if unguarded else flagged[0]
        writer = w_writes[0][0] if w_writes else (
            a_writes[0][0] if a_writes else site[0]
        )
        readers = sorted(
            {name for name, _, is_write in flagged if name != writer}
        )
        where = f"'{writer}'" + (
            f" and accessed in {', '.join(repr(r) for r in readers)}"
            if readers else ""
        )
        yield Violation(
            path=cls.path,
            line=site[1].line,
            col=1,
            code="REP007",
            message=(
                f"attribute 'self.{attr}' of '{cls.name}' is shared "
                f"across threads (written in {where}) without a "
                "consistent lock; hold one class lock at every access, "
                "or declare it '# guarded-by: <lock>' / "
                "'# repro-lint: atomic' where it is initialised"
            ),
        )


def _check_rep008(cls: ClassInfo) -> Iterator[Violation]:
    # (a) every started thread is joined on the teardown path.
    started_attrs = {
        attr for m in cls.methods for attr in m.starts
    }
    thread_attrs = {t.attr for t in cls.threads if t.attr is not None}
    lifecycle = _reachable_from(cls, _LIFECYCLE_ROOTS)
    for thread in cls.threads:
        if thread.attr is None:
            yield Violation(
                path=cls.path,
                line=thread.line,
                col=1,
                code="REP008",
                message=(
                    f"'{cls.name}' starts a thread it does not keep a "
                    "reference to; store it on self so the drain/close "
                    "path can join it"
                ),
            )
            continue
        if thread.attr not in started_attrs:
            continue  # constructed but never started here
        joining = [
            m.name for m in cls.methods if thread.attr in m.joins
        ]
        if not joining:
            yield Violation(
                path=cls.path,
                line=thread.line,
                col=1,
                code="REP008",
                message=(
                    f"thread 'self.{thread.attr}' of '{cls.name}' is "
                    "started but never joined; join it on the "
                    "drain/close path so shutdown is graceful"
                ),
            )
        elif not any(name in lifecycle for name in joining):
            yield Violation(
                path=cls.path,
                line=thread.line,
                col=1,
                code="REP008",
                message=(
                    f"thread 'self.{thread.attr}' of '{cls.name}' is "
                    f"joined only in {joining!r}, which is not "
                    "reachable from drain/close/shutdown; move the "
                    "join onto the lifecycle path"
                ),
            )
    del thread_attrs
    # (b) ServiceLifecycle implementations provide the Service surface.
    if "ServiceLifecycle" in cls.bases:
        defined = {m.name for m in cls.methods}
        missing = [m for m in _SERVICE_SURFACE if m not in defined]
        if missing:
            yield Violation(
                path=cls.path,
                line=cls.line,
                col=1,
                code="REP008",
                message=(
                    f"'{cls.name}' implements ServiceLifecycle but is "
                    f"missing {', '.join(missing)}; every service must "
                    "expose the full Service protocol surface "
                    "(see repro.serve.protocol)"
                ),
            )


def _reachable_from(cls: ClassInfo, roots: frozenset[str]) -> frozenset[str]:
    seen: set[str] = set()
    frontier = [name for name in roots if cls.method(name) is not None]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        info = cls.method(name)
        if info is None:
            continue
        for callee in info.self_calls:
            if callee not in seen and cls.method(callee) is not None:
                frontier.append(callee)
    return frozenset(seen)


def _check_rep010(
    table: ProjectTable, fn: FunctionInfo
) -> Iterator[Violation]:
    if not fn.backend_aware:
        return
    if _BACKEND_PKG_FRAGMENT in fn.path.replace("\\", "/"):
        return
    for site in fn.calls:
        if site.at_boundary:
            continue
        callee = table.resolve(fn, site)
        if callee is None or callee is fn:
            continue
        if _BACKEND_PKG_FRAGMENT in callee.path.replace("\\", "/"):
            continue
        if callee.backend_aware:
            index = callee.backend_param_index
            passed_kw = bool(
                set(site.keywords) & _BACKEND_PARAM_NAMES
            )
            # For methods the caller does not supply ``self``
            # positionally, so the parameter lands one slot earlier.
            effective = site.n_args + (
                1 if callee.cls and site.kind == "self" else 0
            )
            passed_pos = index is not None and effective > index
            if not passed_kw and not passed_pos:
                yield Violation(
                    path=fn.path,
                    line=site.line,
                    col=1,
                    code="REP010",
                    message=(
                        f"'{fn.qualname}' calls backend-aware "
                        f"'{callee.qualname}' without forwarding "
                        "xp/backend; the callee silently falls back to "
                        "numpy, so pass the namespace through "
                        "(e.g. xp=bk)"
                    ),
                )
            continue
        evidence = table.touches_numpy(callee)
        if evidence is not None:
            qualname, op, line = evidence
            via = (
                "" if qualname == callee.qualname
                else f" (via '{qualname}')"
            )
            yield Violation(
                path=fn.path,
                line=site.line,
                col=1,
                code="REP010",
                message=(
                    f"backend-aware '{fn.qualname}' calls "
                    f"'{callee.qualname}'{via}, which touches numpy "
                    f"directly (np.{op} at {callee.path}:{line}); port "
                    "the helper (give it an xp parameter and forward "
                    "it) or convert at the host boundary "
                    "(bk.asarray(helper(to_numpy(x))))"
                ),
            )


def check_project(symbols: Sequence[FileSymbols]) -> list[Violation]:
    """Phase 2: run REP007/REP008/REP010 over the joined symbol table."""
    table = ProjectTable(symbols)
    violations: list[Violation] = []
    for sym in symbols:
        for cls in sym.classes:
            violations.extend(_check_rep007(cls))
            violations.extend(_check_rep008(cls))
        for fn in sym.functions:
            violations.extend(_check_rep010(table, fn))
    return violations
