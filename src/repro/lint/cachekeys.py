"""Cross-file REP003 pass: cache-key dataclasses must hash stably.

The per-file checkers record (a) every dataclass definition and (b)
every class name observed flowing into a cache-key position —
``ArtifactCache.make_key``, ``stable_key`` or
``run_monte_carlo(cache_config=...)``.  This module joins the two: a
class that reaches a cache key must be ``frozen=True`` (so the key
cannot drift between computing and storing) and must not carry
``dict``/``set`` fields (whose iteration/ordering semantics make the
canonical hash fragile).

Violations are attributed to the *class definition* line — that is
where the fix (or the suppression, with justification) belongs — and
the message cites the first use site that pulled the class into
cache-key duty.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lint.rules import CacheKeyUse, DataclassInfo
from repro.lint.violation import Violation

__all__ = ["check_cache_keys"]


def check_cache_keys(
    dataclasses: Iterable[DataclassInfo],
    uses: Sequence[CacheKeyUse],
) -> list[Violation]:
    """REP003 violations across the whole linted file set."""
    registry: dict[str, list[DataclassInfo]] = {}
    for info in dataclasses:
        registry.setdefault(info.name, []).append(info)

    first_use: dict[str, CacheKeyUse] = {}
    for use in uses:
        first_use.setdefault(use.class_name, use)

    violations: list[Violation] = []
    for class_name, use in sorted(first_use.items()):
        for info in registry.get(class_name, ()):
            if not info.frozen:
                violations.append(
                    Violation(
                        path=info.path,
                        line=info.line,
                        col=1,
                        code="REP003",
                        message=(
                            f"dataclass '{info.name}' is used as a cache "
                            f"key ({use.path}:{use.line}) but is not "
                            "frozen=True; a mutable key can change "
                            "between hashing and storing"
                        ),
                    )
                )
            for field_name, type_name in info.unstable_fields:
                violations.append(
                    Violation(
                        path=info.path,
                        line=info.line,
                        col=1,
                        code="REP003",
                        message=(
                            f"dataclass '{info.name}' is used as a cache "
                            f"key ({use.path}:{use.line}) but field "
                            f"'{field_name}' has unstable type "
                            f"'{type_name}'; use tuples or frozen "
                            "sub-dataclasses"
                        ),
                    )
                )
    return violations
