"""Per-file AST analysis implementing the REP rule set.

One :class:`FileChecker` walk produces (a) direct violations of
REP001/REP002/REP004/REP005/REP006/REP009 and (b) the raw material of
the cross-file passes: every dataclass definition and cache-key use
(REP003, resolved in :mod:`repro.lint.cachekeys`) and the per-file
symbol table the project-wide rules join (REP007/REP008/REP010,
resolved in :mod:`repro.lint.project`).

The checker is deliberately conservative: it only reports what it can
*prove* from the AST (a literal lambda, a name assigned from a lambda
in the same scope, a constructor call it can see), so a clean run never
depends on suppressing false positives from dynamic code.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from repro.lint.project import FileSymbols, collect_file, parse_annotations
from repro.lint.violation import Violation

__all__ = [
    "DataclassInfo",
    "CacheKeyUse",
    "FileAnalysis",
    "analyze_file",
]

# numpy.random attributes that touch the *global* legacy RNG state.
_GLOBAL_STATE_FNS = frozenset(
    {
        "seed",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "normal",
        "uniform",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "lognormal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
    }
)

# Executor entry points whose callable argument must survive pickling
# into a worker process.
_EXECUTOR_APIS = {
    "run_monte_carlo": ("trial", "batch_trial"),
    "map_trials": ("trial",),
    "map_trials_batched": ("batch_trial",),
    "parallel_map": ("fn",),
    "RollingReprogrammer": ("reprogram_fn",),
}

# Positional index of the callable when it is passed without a keyword
# (fleet health management takes its repair callable fourth).
_CALLABLE_ARG_INDEX = {
    "run_monte_carlo": 0,
    "map_trials": 0,
    "map_trials_batched": 0,
    "parallel_map": 0,
    "RollingReprogrammer": 3,
}

# Type names that make a cache-key dataclass field order- or
# identity-dependent and therefore non-deterministically hashable.
_UNSTABLE_FIELD_TYPES = frozenset(
    {"dict", "set", "Dict", "Set", "defaultdict", "OrderedDict",
     "MutableMapping", "MutableSet", "Counter", "bytearray"}
)

_MUTABLE_BUILTIN_CALLS = frozenset({"list", "dict", "set", "bytearray"})

# Array ops a backend-aware kernel must route through its namespace
# object (REP006).  ``asarray``/``nonzero`` are deliberately absent:
# converting at the host boundary (and host-side index extraction) is
# the porting contract, not a violation.
_BACKEND_PORTED_OPS = frozenset(
    {
        "einsum", "stack", "concatenate", "clip", "where", "exp",
        "log", "sqrt", "abs", "sign", "round", "maximum", "minimum",
        "quantile", "argmax", "argsort", "mean", "sum", "prod",
        "cumsum", "zeros", "ones", "full", "empty", "take",
        "atleast_2d", "reshape", "transpose", "matmul", "dot",
        "tensordot",
    }
)

# Parameter names that mark a function as backend-aware.
_BACKEND_PARAM_NAMES = frozenset({"xp", "backend"})

# The backend package is the reference implementation: it *is* the
# numpy delegation layer, so REP006 does not apply inside it.
_REP006_EXEMPT_FRAGMENT = "repro/backend/"

# The blessed fixed-accumulation helpers: reductions routed through
# these are bit-stable under batching, so REP009 never fires on them —
# and the functions *defining* them are exempt (they are the
# implementation of the contract).
_BLESSED_ACCUMULATORS = frozenset(
    {"batch_invariant_matmul", "trial_stacked_matmul"}
)

# Allocation calls whose result is an accumulator candidate: a name
# assigned from one of these and then ``+=``-ed inside a loop is an
# incremental accumulation whose order depends on iteration.
_ACCUMULATOR_FACTORIES = frozenset(
    {"zeros", "zeros_like", "empty", "empty_like"}
)


@dataclasses.dataclass(frozen=True)
class DataclassInfo:
    """A dataclass definition, as far as the linter is concerned.

    Attributes:
        name: Class name.
        frozen: Whether the decorator passed ``frozen=True``.
        path: Defining file.
        line: 1-based line of the ``class`` statement.
        unstable_fields: ``(field_name, type_name)`` pairs whose
            annotation mentions a non-deterministically-hashable type.
    """

    name: str
    frozen: bool
    path: str
    line: int
    unstable_fields: tuple[tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class CacheKeyUse:
    """One expression observed flowing into a cache-key position."""

    class_name: str
    path: str
    line: int


@dataclasses.dataclass(frozen=True)
class FileAnalysis:
    """Everything one file contributes to the lint run."""

    violations: tuple[Violation, ...]
    dataclasses: tuple[DataclassInfo, ...]
    cache_key_uses: tuple[CacheKeyUse, ...]
    #: Phase-1 symbol table for the project-wide rules (REP007/8/10).
    symbols: FileSymbols | None = None


def _annotation_names(node: ast.AST) -> Iterator[str]:
    """Every identifier mentioned anywhere in an annotation tree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _annotation_roots(node: ast.AST) -> Iterator[str]:
    """Top-level type names of an annotation (unions unwrapped).

    ``ExperimentScale | None`` yields ``ExperimentScale``;
    ``Optional[Foo]`` yields ``Optional`` and ``Foo`` (harmless: only
    names that resolve to known dataclasses are ever used).
    """
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_roots(node.left)
        yield from _annotation_roots(node.right)
    elif isinstance(node, ast.Subscript):
        yield from _annotation_roots(node.value)
        yield from _annotation_roots(node.slice)
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: treat the whole string as one name.
        yield node.value.strip()


class _Scope:
    """One function (or module/class) namespace during the walk."""

    def __init__(self, kind: str):
        self.kind = kind  # "module" | "class" | "function"
        # name -> tag: "lambda", "nested_func", "bad_partial",
        #              or a dataclass-ish class name (from `x = Cls(...)`)
        self.bindings: dict[str, str] = {}
        # Function scopes only: declares an xp/backend parameter, so
        # REP006 holds its array ops to the namespace object.
        self.backend_aware = False
        # Function scopes only: this *is* a blessed accumulation
        # helper, so REP009 does not police its internals.
        self.rep009_exempt = False
        # Names assigned from zeros()/empty()-style factories in this
        # scope: ``+=`` on one of these inside a loop is incremental
        # accumulation (REP009).
        self.accumulators: set[str] = set()


class FileChecker(ast.NodeVisitor):
    """Single-pass rule checker over one module's AST."""

    def __init__(self, path: str):
        self.path = path
        self.violations: list[Violation] = []
        self.dataclasses: list[DataclassInfo] = []
        self.cache_key_uses: list[CacheKeyUse] = []
        self.scopes: list[_Scope] = [_Scope("module")]
        # Names bound to the numpy package / numpy.random module /
        # specific numpy.random attributes, tracked through aliases.
        self._numpy_names: set[str] = set()
        self._nprandom_names: set[str] = set()
        self._default_rng_names: set[str] = set()
        self._randomstate_names: set[str] = set()
        self._partial_names: set[str] = set()
        self._functools_names: set[str] = set()
        self._rep006_exempt = (
            _REP006_EXEMPT_FRAGMENT in path.replace("\\", "/")
        )
        self._loop_depth = 0

    # -- helpers -------------------------------------------------------
    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def _lookup(self, name: str) -> str | None:
        """Innermost binding tag for ``name`` (function scopes only)."""
        for scope in reversed(self.scopes):
            if name in scope.bindings:
                return scope.bindings[name]
        return None

    def _in_function(self) -> bool:
        return any(s.kind == "function" for s in self.scopes)

    # -- import tracking -----------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.asname is None:
                    self._numpy_names.add(bound)
                elif alias.name == "numpy":
                    self._numpy_names.add(bound)
                elif alias.name == "numpy.random":
                    self._nprandom_names.add(bound)
            if alias.name == "functools":
                self._functools_names.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "numpy" and alias.name == "random":
                self._nprandom_names.add(bound)
            elif module == "numpy.random":
                if alias.name == "default_rng":
                    self._default_rng_names.add(bound)
                elif alias.name == "RandomState":
                    self._randomstate_names.add(bound)
            elif module == "functools" and alias.name == "partial":
                self._partial_names.add(bound)
        self.generic_visit(node)

    # -- numpy.random resolution ---------------------------------------
    def _is_numpy_random(self, node: ast.AST) -> bool:
        """Whether ``node`` denotes the ``numpy.random`` module."""
        if isinstance(node, ast.Name):
            return node.id in self._nprandom_names
        if isinstance(node, ast.Attribute) and node.attr == "random":
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in self._numpy_names
            )
        return False

    def _is_partial(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id in self._partial_names
        if isinstance(func, ast.Attribute) and func.attr == "partial":
            return (
                isinstance(func.value, ast.Name)
                and func.value.id in self._functools_names
            )
        return False

    # -- REP001 --------------------------------------------------------
    def _check_rep001(self, node: ast.Call) -> None:
        func = node.func
        is_default_rng = (
            isinstance(func, ast.Name) and func.id in self._default_rng_names
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and self._is_numpy_random(func.value)
        )
        if is_default_rng and not node.args and not node.keywords:
            self._report(
                node,
                "REP001",
                "np.random.default_rng() without a seed: results change "
                "run to run; thread an explicit rng/seed from the caller "
                "(see repro.seeding.ensure_rng)",
            )
            return
        is_randomstate = (
            isinstance(func, ast.Name) and func.id in self._randomstate_names
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "RandomState"
            and self._is_numpy_random(func.value)
        )
        if is_randomstate:
            self._report(
                node,
                "REP001",
                "legacy np.random.RandomState: use a seeded "
                "np.random.Generator (np.random.default_rng(seed))",
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _GLOBAL_STATE_FNS
            and self._is_numpy_random(func.value)
        ):
            self._report(
                node,
                "REP001",
                f"np.random.{func.attr}() draws from the process-global "
                "legacy RNG; use an explicit np.random.Generator",
            )

    # -- REP002 --------------------------------------------------------
    def _callable_problem(self, node: ast.AST) -> str | None:
        """Why ``node`` cannot cross a process-pool boundary (or None)."""
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name):
            tag = self._lookup(node.id)
            if tag == "lambda":
                return f"'{node.id}' (assigned from a lambda)"
            if tag == "nested_func":
                return f"'{node.id}' (a function defined inside a function)"
            if tag == "bad_partial":
                return f"'{node.id}' (a partial over an unpicklable callable)"
            return None
        if isinstance(node, ast.Call) and self._is_partial(node.func):
            if node.args:
                inner = self._callable_problem(node.args[0])
                if inner is not None:
                    return f"functools.partial over {inner}"
            return None
        return None

    def _check_rep002(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in _EXECUTOR_APIS:
            return
        target: ast.AST | None = None
        kw_names = _EXECUTOR_APIS[name]
        for kw in node.keywords:
            if kw.arg in kw_names:
                target = kw.value
                break
        if target is None:
            index = _CALLABLE_ARG_INDEX[name]
            if index < len(node.args):
                target = node.args[index]
        if target is None:
            return
        problem = self._callable_problem(target)
        if problem is not None:
            self._report(
                target,
                "REP002",
                f"{name}() received {problem}; worker processes need a "
                "module-level function or functools.partial over one",
            )

    # -- REP003 raw material -------------------------------------------
    def _resolve_class_names(self, node: ast.AST) -> list[str]:
        """Class names an expression provably evaluates to instances of."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "replace":
                # dataclasses.replace(cfg, ...) keeps cfg's type.
                if node.args:
                    return self._resolve_class_names(node.args[0])
                return []
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name and name[:1].isupper():
                return [name]
            return []
        if isinstance(node, ast.Name):
            tag = self._lookup(node.id)
            if tag and tag[:1].isupper():
                return [tag]
            return []
        if isinstance(node, ast.Dict):
            names: list[str] = []
            for value in node.values:
                if value is not None:
                    names.extend(self._resolve_class_names(value))
            return names
        return []

    def _record_cache_use(self, config_arg: ast.AST, node: ast.Call) -> None:
        for class_name in self._resolve_class_names(config_arg):
            self.cache_key_uses.append(
                CacheKeyUse(
                    class_name=class_name,
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                )
            )

    def _check_cache_key_flow(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in {"make_key", "stable_key"}:
            config_arg: ast.AST | None = None
            for kw in node.keywords:
                if kw.arg == "config":
                    config_arg = kw.value
            if config_arg is None and len(node.args) >= 2:
                config_arg = node.args[1]
            if config_arg is not None:
                self._record_cache_use(config_arg, node)
        elif name == "run_monte_carlo":
            for kw in node.keywords:
                if kw.arg == "cache_config":
                    self._record_cache_use(kw.value, node)

    # -- REP004 --------------------------------------------------------
    def _is_mutable_default(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _MUTABLE_BUILTIN_CALLS
            ):
                return True
            if isinstance(func, ast.Attribute) and func.attr == "defaultdict":
                return True
        return False

    def _check_rep004(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_default(default):
                self._report(
                    default,
                    "REP004",
                    "mutable default argument is shared across calls; "
                    "default to None and create inside the function",
                )

    # -- REP006 --------------------------------------------------------
    def _check_rep006(self, node: ast.Call) -> None:
        if self._rep006_exempt:
            return
        scope = next(
            (s for s in reversed(self.scopes) if s.kind == "function"),
            None,
        )
        if scope is None or not scope.backend_aware:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BACKEND_PORTED_OPS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._numpy_names
        ):
            self._report(
                node,
                "REP006",
                f"np.{func.attr}() inside a backend-aware kernel; this "
                "function takes an xp/backend parameter, so its array "
                "ops must go through the namespace object (bk."
                f"{func.attr}) to run identically under every backend",
            )

    # -- REP009 --------------------------------------------------------
    def _rep009_scope(self) -> _Scope | None:
        """The enclosing function scope REP009 applies to, if any."""
        if self._rep006_exempt:
            return None
        scope = next(
            (s for s in reversed(self.scopes) if s.kind == "function"),
            None,
        )
        if scope is None or not scope.backend_aware or scope.rep009_exempt:
            return None
        return scope

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult) and self._rep009_scope():
            self._report(
                node,
                "REP009",
                "'@' in a backend-aware kernel picks a shape-dependent "
                "BLAS accumulation strategy and is not bit-stable under "
                "batching; route the product through "
                "batch_invariant_matmul / trial_stacked_matmul or "
                "xp.einsum",
            )
        self.generic_visit(node)

    def _check_rep009_sum(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "sum"
            and self._lookup("sum") is None
            and self._rep009_scope()
        ):
            self._report(
                node,
                "REP009",
                "builtin sum() in a backend-aware kernel reduces by "
                "repeated '+' outside the namespace object; use "
                "xp.sum(..., axis=...) or xp.einsum so every backend "
                "reduces each trial slice in the same fixed order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        scope = self._rep009_scope()
        if scope is not None:
            if isinstance(node.op, ast.MatMult):
                self._report(
                    node,
                    "REP009",
                    "'@=' in a backend-aware kernel is a BLAS product "
                    "with shape-dependent accumulation; use "
                    "batch_invariant_matmul / xp.einsum",
                )
            elif (
                isinstance(node.op, ast.Add)
                and self._loop_depth > 0
                and isinstance(node.target, ast.Name)
                and node.target.id in scope.accumulators
            ):
                self._report(
                    node,
                    "REP009",
                    f"'{node.target.id} +=' inside a loop accumulates "
                    "in iteration order, which chunking reorders; "
                    "stack the terms and reduce once with xp.einsum or "
                    "a trailing-axis xp.sum",
                )
        self.generic_visit(node)

    def _record_accumulator(self, name: str, value: ast.AST) -> None:
        if not isinstance(value, ast.Call):
            return
        func = value.func
        factory = None
        if isinstance(func, ast.Attribute):
            factory = func.attr
        elif isinstance(func, ast.Name):
            factory = func.id
        if factory in _ACCUMULATOR_FACTORIES:
            self.scopes[-1].accumulators.add(name)
        else:
            self.scopes[-1].accumulators.discard(name)

    # -- REP005 --------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node,
                "REP005",
                "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exceptions you mean",
            )
        else:
            broad = (
                isinstance(node.type, ast.Name)
                and node.type.id in {"Exception", "BaseException"}
            )
            swallowed = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            )
            if broad and swallowed:
                self._report(
                    node,
                    "REP005",
                    f"'except {node.type.id}: pass' hides every failure; "
                    "handle, log, or narrow the exception",
                )
        self.generic_visit(node)

    # -- dataclass collection ------------------------------------------
    def _dataclass_frozen(self, node: ast.ClassDef) -> bool | None:
        """``frozen`` flag if ``node`` is a dataclass, else ``None``."""
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            is_dc = (
                isinstance(target, ast.Name) and target.id == "dataclass"
            ) or (
                isinstance(target, ast.Attribute) and target.attr == "dataclass"
            )
            if not is_dc:
                continue
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "frozen":
                        return (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        )
            return False
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        frozen = self._dataclass_frozen(node)
        if frozen is not None:
            unstable: list[tuple[str, str]] = []
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                names = set(_annotation_names(stmt.annotation))
                if "ClassVar" in names:
                    continue
                bad = sorted(names & _UNSTABLE_FIELD_TYPES)
                if bad:
                    unstable.append((stmt.target.id, bad[0]))
            self.dataclasses.append(
                DataclassInfo(
                    name=node.name,
                    frozen=frozen,
                    path=self.path,
                    line=node.lineno,
                    unstable_fields=tuple(unstable),
                )
            )
        self.scopes.append(_Scope("class"))
        self.generic_visit(node)
        self.scopes.pop()

    # -- scope & binding tracking --------------------------------------
    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._in_function():
            # A def nested inside a function: unpicklable by construction.
            self.scopes[-1].bindings[node.name] = "nested_func"
        self._check_rep004(node)
        scope = _Scope("function")
        # Parameter annotations let cache-key flow resolve `scale` in
        # `make_key(..., {"scale": scale})` to its dataclass.
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        scope.backend_aware = any(
            arg.arg in _BACKEND_PARAM_NAMES for arg in all_args
        )
        scope.rep009_exempt = node.name in _BLESSED_ACCUMULATORS
        for arg in all_args:
            if arg.annotation is not None:
                for root in _annotation_roots(arg.annotation):
                    if root[:1].isupper():
                        scope.bindings.setdefault(arg.arg, root)
        for arg in all_args + [args.vararg, args.kwarg]:
            if arg is not None:
                # Mark every parameter as locally bound so builtin-name
                # checks (e.g. REP009's sum()) see the shadowing.
                scope.bindings.setdefault(arg.arg, "param")
        self.scopes.append(scope)
        self.generic_visit(node)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_rep004(node)
        self.scopes.append(_Scope("function"))
        self.generic_visit(node)
        self.scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value = node.value
            if isinstance(value, ast.Lambda):
                self.scopes[-1].bindings[name] = "lambda"
            elif isinstance(value, ast.Call) and self._is_partial(value.func):
                if value.args and self._callable_problem(value.args[0]):
                    self.scopes[-1].bindings[name] = "bad_partial"
            else:
                resolved = self._resolve_class_names(value)
                if len(resolved) == 1:
                    self.scopes[-1].bindings[name] = resolved[0]
            self._record_accumulator(name, value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if isinstance(node.value, ast.Lambda):
                self.scopes[-1].bindings[node.target.id] = "lambda"
            else:
                resolved = self._resolve_class_names(node.value)
                if len(resolved) == 1:
                    self.scopes[-1].bindings[node.target.id] = resolved[0]
        self.generic_visit(node)

    # -- call dispatch -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_rep001(node)
        self._check_rep002(node)
        self._check_rep006(node)
        self._check_rep009_sum(node)
        self._check_cache_key_flow(node)
        self.generic_visit(node)


def analyze_file(path: str, source: str) -> FileAnalysis:
    """Parse and check one file; syntax errors surface as violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileAnalysis(
            violations=(
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    code="REP000",
                    message=f"syntax error: {exc.msg}",
                ),
            ),
            dataclasses=(),
            cache_key_uses=(),
        )
    checker = FileChecker(path)
    checker.visit(tree)
    return FileAnalysis(
        violations=tuple(checker.violations),
        dataclasses=tuple(checker.dataclasses),
        cache_key_uses=tuple(checker.cache_key_uses),
        symbols=collect_file(path, tree, parse_annotations(source)),
    )
