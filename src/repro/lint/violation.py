"""Violation record and the REP rule catalogue.

Each rule guards one of the contracts the runtime engine made
load-bearing (see ``docs/determinism.md``): seed discipline (REP001),
process-pool picklability (REP002), cache-key stability (REP003), two
general determinism/robustness hygiene rules (REP004, REP005),
backend-namespace discipline in ported kernels (REP006, see
``docs/backends.md``), cross-thread state and lifecycle discipline in
the serving stack (REP007, REP008), fixed-order accumulation in
batched kernels (REP009), and interprocedural backend purity (REP010).
The full catalogue with examples lives in ``docs/linting.md``.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Violation", "RULES", "ALL_CODES"]

#: Rule catalogue: code -> one-line contract statement.
RULES: dict[str, str] = {
    "REP000": "file could not be parsed (reported, never suppressible)",
    "REP001": (
        "unseeded randomness: np.random.default_rng() without a seed, "
        "legacy RandomState, or the numpy global RNG"
    ),
    "REP002": (
        "unpicklable trial callable: executor APIs need module-level "
        "functions (or functools.partial over them), not lambdas or "
        "nested functions"
    ),
    "REP003": (
        "unstable cache key: dataclasses used as cache keys must be "
        "frozen=True with deterministically-hashable fields (no "
        "dict/set fields)"
    ),
    "REP004": "mutable default argument",
    "REP005": "bare except or silently swallowed exception",
    "REP006": (
        "direct numpy call in a backend-aware kernel: functions taking "
        "an xp/backend parameter must route array ops through the "
        "namespace object (asarray/nonzero conversion boundaries "
        "excepted)"
    ),
    "REP007": (
        "unguarded shared mutable state: an instance attribute shared "
        "between a worker-thread method and the public API must be "
        "accessed under one consistent lock, or declared "
        "'# guarded-by: <lock>' / '# repro-lint: atomic'"
    ),
    "REP008": (
        "lifecycle violation: every started Thread must be joined on "
        "the drain/close path, and every ServiceLifecycle "
        "implementation must expose the full Service protocol surface"
    ),
    "REP009": (
        "order-unstable accumulation in a backend-aware kernel: use "
        "the blessed einsum/stacked-reduction helpers "
        "(batch_invariant_matmul, xp.einsum), not bare '@', builtin "
        "sum(), or '+=' accumulation loops"
    ),
    "REP010": (
        "interprocedural backend purity: a backend-aware function must "
        "not call helpers that touch numpy directly, and must forward "
        "xp/backend to backend-aware callees (host-boundary "
        "asarray/to_numpy conversions excepted)"
    ),
}

ALL_CODES = frozenset(RULES)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding of the linter.

    Attributes:
        path: File the violation was found in (as given to the engine).
        line: 1-based source line.
        col: 1-based source column.
        code: Rule code (``REP001`` .. ``REP010``).
        message: Human-readable description of this specific finding.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-stable representation for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
