"""Command-line front-end: ``python -m repro.lint`` / ``repro lint``.

Exit codes follow convention: 0 clean, 1 violations found, 2 usage
error.  ``--format json`` emits a machine-readable document (stable
schema, see ``docs/determinism.md``) for CI and tooling; the default
text mode prints one ``path:line:col: CODE message`` per finding plus
a summary line.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.engine import LintResult, lint_paths
from repro.lint.violation import ALL_CODES, RULES

__all__ = ["main", "build_parser", "add_lint_arguments", "run_lint"]

#: Schema version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the CI interface)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to enforce (default: all)",
    )
    parser.add_argument(
        "--allow-unseeded",
        action="append",
        default=[],
        metavar="PATH_SUFFIX",
        help=(
            "path suffix of a sanctioned entry point where REP001 "
            "(unseeded randomness) is permitted; repeatable"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule counts after the findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-specific determinism/picklability/cache-contract "
            "checker (rules REP001-REP005)."
        ),
    )
    add_lint_arguments(parser)
    return parser


def _parse_select(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    unknown = codes - ALL_CODES
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def _render_json(result: LintResult) -> str:
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "violations": [v.to_dict() for v in result.violations],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "counts": result.counts,
        "clean": not result.violations,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _render_text(result: LintResult, statistics: bool) -> str:
    lines = [v.render() for v in result.violations]
    if statistics and result.counts:
        lines.append("")
        for code, count in result.counts.items():
            lines.append(f"{code}: {count}")
    n = len(result.violations)
    summary = (
        f"{n} violation{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed) "
        f"in {result.files_checked} files"
    )
    lines.append(summary if lines else f"clean: {summary}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    try:
        result = lint_paths(
            args.paths,
            select=_parse_select(args.select),
            allow_unseeded=args.allow_unseeded,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_render_json(result))
    else:
        print(_render_text(result, args.statistics))
    return 1 if result.violations else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.lint``."""
    try:
        return run_lint(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Output was piped into e.g. `head`; exiting quietly is the
        # conventional CLI behaviour.
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
